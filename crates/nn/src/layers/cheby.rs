//! Cheby-Net graph convolution (Defferrard et al.), the spatial operator of
//! the paper's advanced framework (§V-A, Eq. 5).
//!
//! Given node features `X ∈ R^{B×N×F}` and a scaled graph Laplacian
//! `L̃ = 2L/λ_max − I`, the layer computes the Chebyshev basis
//! `T₀ = X`, `T₁ = L̃·X`, `T_s = 2·L̃·T_{s−1} − T_{s−2}` and mixes it with a
//! learned filter bank: `Y = Σ_s T_s·W_s + b`.

use crate::params::{ParamId, ParamStore};
use crate::tape::{Tape, Var};
use std::sync::Arc;
use stod_tensor::rng::Rng64;
use stod_tensor::{CsrMatrix, Tensor};

/// The fixed graph operator a [`ChebyConv`] propagates over — a scaled
/// Laplacian held either dense or in CSR form.
///
/// Dense is the historical representation and stays the default (every
/// `Tensor` call site converts implicitly via `From`). CSR is the
/// city-scale path: propagation runs as a sparse-matrix × dense-panel
/// product touching only stored entries, with the backward pass
/// multiplying by the same matrix again — sound because scaled
/// Laplacians are symmetric, which the CSR constructor asserts.
#[derive(Clone)]
pub enum ChebyFilter {
    /// Dense scaled Laplacian `L̃ ∈ R^{N×N}`; propagation is a batched
    /// GEMM through the tape.
    Dense(Tensor),
    /// CSR scaled Laplacian; propagation is `CsrMatrix::spmm_panel`
    /// wrapped in a custom tape op.
    Csr(Arc<CsrMatrix>),
}

impl ChebyFilter {
    /// Number of graph nodes.
    pub fn num_nodes(&self) -> usize {
        match self {
            ChebyFilter::Dense(l) => l.dim(0),
            ChebyFilter::Csr(m) => m.rows(),
        }
    }

    /// Whether this filter propagates over CSR.
    pub fn is_sparse(&self) -> bool {
        matches!(self, ChebyFilter::Csr(_))
    }

    fn validate(&self) {
        match self {
            ChebyFilter::Dense(l) => {
                assert_eq!(l.ndim(), 2, "Laplacian must be 2-D");
                assert_eq!(l.dim(0), l.dim(1), "Laplacian must be square");
            }
            ChebyFilter::Csr(m) => {
                assert_eq!(m.rows(), m.cols(), "Laplacian must be square");
                assert!(
                    m.is_symmetric(),
                    "CSR Cheby filter must be symmetric: the backward pass \
                     multiplies by the same matrix instead of its transpose"
                );
            }
        }
    }
}

impl From<Tensor> for ChebyFilter {
    fn from(l: Tensor) -> ChebyFilter {
        ChebyFilter::Dense(l)
    }
}

impl From<CsrMatrix> for ChebyFilter {
    fn from(m: CsrMatrix) -> ChebyFilter {
        ChebyFilter::Csr(Arc::new(m))
    }
}

impl From<Arc<CsrMatrix>> for ChebyFilter {
    fn from(m: Arc<CsrMatrix>) -> ChebyFilter {
        ChebyFilter::Csr(m)
    }
}

/// `y = L̃·x` for a CSR `L̃` and `x ∈ R^{B×N×F}`, differentiable in `x`.
/// The gradient is `L̃ᵀ·g = L̃·g` (the filter is symmetric by
/// construction), so forward and backward share the same deterministic
/// spmm kernel.
pub fn csr_propagate(tape: &mut Tape, m: Arc<CsrMatrix>, x: Var) -> Var {
    let y = m.spmm_panel(tape.value(x));
    tape.custom_op(
        y,
        &[x],
        Box::new(move |g, _, _, needs| vec![needs[0].then(|| m.spmm_panel(g))]),
    )
}

/// Per-`apply` propagation context: the dense path pins its Laplacian
/// to the tape once (one constant node reused by every recurrence
/// step), the CSR path carries the shared matrix.
enum PropCtx {
    Dense(Var),
    Csr(Arc<CsrMatrix>),
}

impl PropCtx {
    fn propagate(&self, tape: &mut Tape, x: Var) -> Var {
        match self {
            PropCtx::Dense(l) => tape.batched_matmul(*l, x),
            PropCtx::Csr(m) => csr_propagate(tape, m.clone(), x),
        }
    }
}

/// A Chebyshev graph-convolution layer over a fixed graph.
///
/// The scaled Laplacian is a fixed (non-learned) operator owned by the
/// layer; gradient propagation through it is skipped automatically
/// because it enters the tape as a constant (dense) or a custom op that
/// only differentiates the signal (CSR).
pub struct ChebyConv {
    /// Scaled Laplacian `L̃`, dense or CSR.
    filter: ChebyFilter,
    ws: ParamId,
    b: ParamId,
    order: usize,
    in_feat: usize,
    out_feat: usize,
}

impl ChebyConv {
    /// Registers a new layer. `order` is the Chebyshev order `S` (filter
    /// support size), i.e. the number of basis terms.
    ///
    /// # Panics
    /// Panics if `laplacian` is not square or `order == 0`.
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        laplacian: impl Into<ChebyFilter>,
        order: usize,
        in_feat: usize,
        out_feat: usize,
        rng: &mut Rng64,
    ) -> Self {
        assert!(order >= 1, "Chebyshev order must be ≥ 1");
        let filter = laplacian.into();
        filter.validate();
        let ws = store.register(
            format!("{prefix}.ws"),
            Tensor::glorot(&[order * in_feat, out_feat], rng),
        );
        let b = store.register(format!("{prefix}.b"), Tensor::zeros(&[out_feat]));
        ChebyConv {
            filter,
            ws,
            b,
            order,
            in_feat,
            out_feat,
        }
    }

    /// Number of graph nodes the layer operates on.
    pub fn num_nodes(&self) -> usize {
        self.filter.num_nodes()
    }

    /// Whether propagation runs over the CSR (sparse) path.
    pub fn is_sparse(&self) -> bool {
        self.filter.is_sparse()
    }

    /// Chebyshev order `S`.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Input feature dimension.
    pub fn in_feat(&self) -> usize {
        self.in_feat
    }

    /// Output feature dimension.
    pub fn out_feat(&self) -> usize {
        self.out_feat
    }

    /// Applies the convolution to `x ∈ R^{B×N×F_in}` → `R^{B×N×F_out}`.
    ///
    /// # Panics
    /// Panics on rank/extent mismatches.
    pub fn apply(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let dims = tape.value(x).dims().to_vec();
        assert_eq!(
            dims.len(),
            3,
            "ChebyConv input must be [B, N, F], got {dims:?}"
        );
        let (batch, n, f) = (dims[0], dims[1], dims[2]);
        assert_eq!(n, self.num_nodes(), "node count mismatch");
        assert_eq!(f, self.in_feat, "feature dim mismatch");

        let ctx = match &self.filter {
            ChebyFilter::Dense(l) => PropCtx::Dense(tape.constant(l.clone())),
            ChebyFilter::Csr(m) => PropCtx::Csr(m.clone()),
        };

        // Chebyshev recurrence on the node dimension.
        let mut basis: Vec<Var> = Vec::with_capacity(self.order);
        basis.push(x);
        if self.order >= 2 {
            let t1 = ctx.propagate(tape, x);
            basis.push(t1);
        }
        for s in 2..self.order {
            let lt = ctx.propagate(tape, basis[s - 1]);
            let two_lt = tape.scale(lt, 2.0);
            let t = tape.sub(two_lt, basis[s - 2]);
            basis.push(t);
        }

        // Mix: concat basis features then one dense projection.
        let stacked = tape.concat(&basis, 2); // [B, N, S·F]
        let flat = tape.reshape(stacked, &[batch * n, self.order * f]);
        let ws = tape.param(store, self.ws);
        let y = tape.matmul(flat, ws);
        let b = tape.param(store, self.b);
        let y = tape.add(y, b);
        tape.reshape(y, &[batch, n, self.out_feat])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scaled Laplacian of a 3-node path graph (precomputed by hand).
    fn path3_scaled_laplacian() -> Tensor {
        // W = path graph adjacency, L = D − W, λ_max = 3 → L̃ = 2L/3 − I.
        let l = Tensor::from_vec(
            &[3, 3],
            vec![1.0, -1.0, 0.0, -1.0, 2.0, -1.0, 0.0, -1.0, 1.0],
        );
        let mut lt = l.map(|x| 2.0 * x / 3.0);
        for i in 0..3 {
            let v = lt.at(&[i, i]) - 1.0;
            lt.set(&[i, i], v);
        }
        lt
    }

    #[test]
    fn output_shape() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::new(0);
        let conv = ChebyConv::new(
            &mut store,
            "gc",
            path3_scaled_laplacian(),
            3,
            2,
            5,
            &mut rng,
        );
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::ones(&[4, 3, 2]));
        let y = conv.apply(&mut tape, &store, x);
        assert_eq!(tape.value(y).dims(), &[4, 3, 5]);
    }

    #[test]
    fn order_one_is_pointwise_linear() {
        // With S = 1 only T₀ = X is used: the layer reduces to a per-node FC
        // and must be insensitive to the graph.
        let mut store = ParamStore::new();
        let mut rng = Rng64::new(1);
        let conv = ChebyConv::new(
            &mut store,
            "gc",
            path3_scaled_laplacian(),
            1,
            2,
            2,
            &mut rng,
        );
        let mut tape = Tape::new();
        // Two nodes with identical features must give identical outputs.
        let x = tape.leaf(Tensor::from_vec(
            &[1, 3, 2],
            vec![1.0, 2.0, 1.0, 2.0, -3.0, 0.5],
        ));
        let y = conv.apply(&mut tape, &store, x);
        let v = tape.value(y);
        assert!((v.at(&[0, 0, 0]) - v.at(&[0, 1, 0])).abs() < 1e-6);
        assert!((v.at(&[0, 0, 1]) - v.at(&[0, 1, 1])).abs() < 1e-6);
    }

    #[test]
    fn higher_order_mixes_neighbors() {
        // With S ≥ 2 a node's output depends on its neighbors: nodes 0 and 1
        // have identical features but different neighborhoods.
        let mut store = ParamStore::new();
        let mut rng = Rng64::new(2);
        let conv = ChebyConv::new(
            &mut store,
            "gc",
            path3_scaled_laplacian(),
            2,
            2,
            2,
            &mut rng,
        );
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(
            &[1, 3, 2],
            vec![1.0, 2.0, 1.0, 2.0, -3.0, 0.5],
        ));
        let y = conv.apply(&mut tape, &store, x);
        let v = tape.value(y);
        let diff = (v.at(&[0, 0, 0]) - v.at(&[0, 1, 0])).abs();
        assert!(
            diff > 1e-4,
            "neighborhood information should differentiate nodes"
        );
    }

    #[test]
    fn gradients_reach_filters() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::new(3);
        let conv = ChebyConv::new(
            &mut store,
            "gc",
            path3_scaled_laplacian(),
            3,
            2,
            2,
            &mut rng,
        );
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[2, 3, 2]));
        let y = conv.apply(&mut tape, &store, x);
        let sq = tape.mul(y, y);
        let loss = tape.sum_all(sq);
        let grads = tape.backward(loss);
        let gw = grads.get(store.id_of("gc.ws").unwrap()).unwrap();
        assert!(gw.frob_sq() > 0.0);
        assert!(grads.get(store.id_of("gc.b").unwrap()).is_some());
    }

    #[test]
    fn csr_filter_forward_matches_dense_within_ulp() {
        // Same weights (same RNG stream), dense vs CSR filter: the CSR
        // path accumulates only stored entries while the dense GEMM sums
        // all N terms, so equality is tight-tolerance, not bitwise.
        let lap = path3_scaled_laplacian();
        let csr = CsrMatrix::from_dense(&lap);
        let mut sd = ParamStore::new();
        let mut ss = ParamStore::new();
        let dense = ChebyConv::new(&mut sd, "gc", lap, 3, 2, 4, &mut Rng64::new(9));
        let sparse = ChebyConv::new(&mut ss, "gc", csr, 3, 2, 4, &mut Rng64::new(9));
        assert!(sparse.is_sparse() && !dense.is_sparse());
        let x0 = Tensor::randn(&[2, 3, 2], 1.0, &mut Rng64::new(10));
        let mut tape = Tape::new();
        let x = tape.leaf(x0.clone());
        let yd = dense.apply(&mut tape, &sd, x);
        let ys = sparse.apply(&mut tape, &ss, x);
        let (vd, vs) = (tape.value(yd), tape.value(ys));
        assert!(
            vd.max_abs_diff(vs) <= 1e-5,
            "CSR/dense diverged: {}",
            vd.max_abs_diff(vs)
        );
    }

    #[test]
    fn csr_filter_gradients_match_dense() {
        let lap = path3_scaled_laplacian();
        let csr = CsrMatrix::from_dense(&lap);
        let x0 = Tensor::randn(&[2, 3, 2], 0.7, &mut Rng64::new(11));
        let grads = |filter: ChebyFilter| {
            let mut store = ParamStore::new();
            let conv = ChebyConv::new(&mut store, "gc", filter, 3, 2, 2, &mut Rng64::new(12));
            let mut tape = Tape::new();
            let x = tape.leaf(x0.clone());
            let y = conv.apply(&mut tape, &store, x);
            let sq = tape.mul(y, y);
            let loss = tape.sum_all(sq);
            let g = tape.backward(loss);
            let gx = tape.backward_wrt(loss, &[x])[0]
                .clone()
                .expect("input grad");
            (g.get(store.id_of("gc.ws").unwrap()).unwrap().clone(), gx)
        };
        let (gw_d, gx_d) = grads(ChebyFilter::from(lap));
        let (gw_s, gx_s) = grads(ChebyFilter::from(csr));
        assert!(gw_d.max_abs_diff(&gw_s) <= 1e-4, "ws grads diverged");
        assert!(gx_d.max_abs_diff(&gx_s) <= 1e-4, "input grads diverged");
    }

    #[test]
    fn csr_propagate_gradcheck() {
        let lap = path3_scaled_laplacian();
        let csr = std::sync::Arc::new(CsrMatrix::from_dense(&lap));
        let x0 = Tensor::randn(&[2, 3, 2], 0.5, &mut Rng64::new(13));
        crate::gradcheck::assert_grad_ok(&[x0], move |t, v| {
            let t1 = csr_propagate(t, csr.clone(), v[0]);
            let t2 = csr_propagate(t, csr.clone(), t1);
            let sq = t.mul(t2, t2);
            t.sum_all(sq)
        });
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn asymmetric_csr_filter_rejected() {
        let mut w = Tensor::zeros(&[3, 3]);
        w.set(&[0, 1], 1.0);
        let mut store = ParamStore::new();
        ChebyConv::new(
            &mut store,
            "gc",
            CsrMatrix::from_dense(&w),
            2,
            1,
            1,
            &mut Rng64::new(0),
        );
    }

    #[test]
    fn gradcheck_through_cheby_recurrence() {
        // Rebuild the recurrence manually with leaf weights to finite-diff it.
        let lap = path3_scaled_laplacian();
        let mut rng = Rng64::new(4);
        let x0 = Tensor::randn(&[2, 3, 2], 0.5, &mut rng);
        let w0 = Tensor::randn(&[3 * 2, 2], 0.5, &mut rng);
        crate::gradcheck::assert_grad_ok(&[x0, w0], move |t, v| {
            let l = t.constant(lap.clone());
            let t0 = v[0];
            let t1 = t.batched_matmul(l, t0);
            let lt1 = t.batched_matmul(l, t1);
            let two_lt1 = t.scale(lt1, 2.0);
            let t2 = t.sub(two_lt1, t0);
            let stacked = t.concat(&[t0, t1, t2], 2);
            let flat = t.reshape(stacked, &[2 * 3, 6]);
            let y = t.matmul(flat, v[1]);
            let sq = t.mul(y, y);
            t.sum_all(sq)
        });
    }
}
