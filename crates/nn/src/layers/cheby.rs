//! Cheby-Net graph convolution (Defferrard et al.), the spatial operator of
//! the paper's advanced framework (§V-A, Eq. 5).
//!
//! Given node features `X ∈ R^{B×N×F}` and a scaled graph Laplacian
//! `L̃ = 2L/λ_max − I`, the layer computes the Chebyshev basis
//! `T₀ = X`, `T₁ = L̃·X`, `T_s = 2·L̃·T_{s−1} − T_{s−2}` and mixes it with a
//! learned filter bank: `Y = Σ_s T_s·W_s + b`.

use crate::params::{ParamId, ParamStore};
use crate::tape::{Tape, Var};
use stod_tensor::rng::Rng64;
use stod_tensor::Tensor;

/// A Chebyshev graph-convolution layer over a fixed graph.
///
/// The scaled Laplacian is a fixed (non-learned) tensor owned by the layer;
/// gradient propagation through it is skipped automatically because it
/// enters the tape as a constant.
pub struct ChebyConv {
    /// Scaled Laplacian `L̃ ∈ R^{N×N}`.
    laplacian: Tensor,
    ws: ParamId,
    b: ParamId,
    order: usize,
    in_feat: usize,
    out_feat: usize,
}

impl ChebyConv {
    /// Registers a new layer. `order` is the Chebyshev order `S` (filter
    /// support size), i.e. the number of basis terms.
    ///
    /// # Panics
    /// Panics if `laplacian` is not square or `order == 0`.
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        laplacian: Tensor,
        order: usize,
        in_feat: usize,
        out_feat: usize,
        rng: &mut Rng64,
    ) -> Self {
        assert!(order >= 1, "Chebyshev order must be ≥ 1");
        assert_eq!(laplacian.ndim(), 2, "Laplacian must be 2-D");
        assert_eq!(
            laplacian.dim(0),
            laplacian.dim(1),
            "Laplacian must be square"
        );
        let ws = store.register(
            format!("{prefix}.ws"),
            Tensor::glorot(&[order * in_feat, out_feat], rng),
        );
        let b = store.register(format!("{prefix}.b"), Tensor::zeros(&[out_feat]));
        ChebyConv {
            laplacian,
            ws,
            b,
            order,
            in_feat,
            out_feat,
        }
    }

    /// Number of graph nodes the layer operates on.
    pub fn num_nodes(&self) -> usize {
        self.laplacian.dim(0)
    }

    /// Chebyshev order `S`.
    pub fn order(&self) -> usize {
        self.order
    }

    /// Input feature dimension.
    pub fn in_feat(&self) -> usize {
        self.in_feat
    }

    /// Output feature dimension.
    pub fn out_feat(&self) -> usize {
        self.out_feat
    }

    /// Applies the convolution to `x ∈ R^{B×N×F_in}` → `R^{B×N×F_out}`.
    ///
    /// # Panics
    /// Panics on rank/extent mismatches.
    pub fn apply(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let dims = tape.value(x).dims().to_vec();
        assert_eq!(
            dims.len(),
            3,
            "ChebyConv input must be [B, N, F], got {dims:?}"
        );
        let (batch, n, f) = (dims[0], dims[1], dims[2]);
        assert_eq!(n, self.num_nodes(), "node count mismatch");
        assert_eq!(f, self.in_feat, "feature dim mismatch");

        let l = tape.constant(self.laplacian.clone());

        // Chebyshev recurrence on the node dimension.
        let mut basis: Vec<Var> = Vec::with_capacity(self.order);
        basis.push(x);
        if self.order >= 2 {
            let t1 = tape.batched_matmul(l, x);
            basis.push(t1);
        }
        for s in 2..self.order {
            let lt = tape.batched_matmul(l, basis[s - 1]);
            let two_lt = tape.scale(lt, 2.0);
            let t = tape.sub(two_lt, basis[s - 2]);
            basis.push(t);
        }

        // Mix: concat basis features then one dense projection.
        let stacked = tape.concat(&basis, 2); // [B, N, S·F]
        let flat = tape.reshape(stacked, &[batch * n, self.order * f]);
        let ws = tape.param(store, self.ws);
        let y = tape.matmul(flat, ws);
        let b = tape.param(store, self.b);
        let y = tape.add(y, b);
        tape.reshape(y, &[batch, n, self.out_feat])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scaled Laplacian of a 3-node path graph (precomputed by hand).
    fn path3_scaled_laplacian() -> Tensor {
        // W = path graph adjacency, L = D − W, λ_max = 3 → L̃ = 2L/3 − I.
        let l = Tensor::from_vec(
            &[3, 3],
            vec![1.0, -1.0, 0.0, -1.0, 2.0, -1.0, 0.0, -1.0, 1.0],
        );
        let mut lt = l.map(|x| 2.0 * x / 3.0);
        for i in 0..3 {
            let v = lt.at(&[i, i]) - 1.0;
            lt.set(&[i, i], v);
        }
        lt
    }

    #[test]
    fn output_shape() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::new(0);
        let conv = ChebyConv::new(
            &mut store,
            "gc",
            path3_scaled_laplacian(),
            3,
            2,
            5,
            &mut rng,
        );
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::ones(&[4, 3, 2]));
        let y = conv.apply(&mut tape, &store, x);
        assert_eq!(tape.value(y).dims(), &[4, 3, 5]);
    }

    #[test]
    fn order_one_is_pointwise_linear() {
        // With S = 1 only T₀ = X is used: the layer reduces to a per-node FC
        // and must be insensitive to the graph.
        let mut store = ParamStore::new();
        let mut rng = Rng64::new(1);
        let conv = ChebyConv::new(
            &mut store,
            "gc",
            path3_scaled_laplacian(),
            1,
            2,
            2,
            &mut rng,
        );
        let mut tape = Tape::new();
        // Two nodes with identical features must give identical outputs.
        let x = tape.leaf(Tensor::from_vec(
            &[1, 3, 2],
            vec![1.0, 2.0, 1.0, 2.0, -3.0, 0.5],
        ));
        let y = conv.apply(&mut tape, &store, x);
        let v = tape.value(y);
        assert!((v.at(&[0, 0, 0]) - v.at(&[0, 1, 0])).abs() < 1e-6);
        assert!((v.at(&[0, 0, 1]) - v.at(&[0, 1, 1])).abs() < 1e-6);
    }

    #[test]
    fn higher_order_mixes_neighbors() {
        // With S ≥ 2 a node's output depends on its neighbors: nodes 0 and 1
        // have identical features but different neighborhoods.
        let mut store = ParamStore::new();
        let mut rng = Rng64::new(2);
        let conv = ChebyConv::new(
            &mut store,
            "gc",
            path3_scaled_laplacian(),
            2,
            2,
            2,
            &mut rng,
        );
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(
            &[1, 3, 2],
            vec![1.0, 2.0, 1.0, 2.0, -3.0, 0.5],
        ));
        let y = conv.apply(&mut tape, &store, x);
        let v = tape.value(y);
        let diff = (v.at(&[0, 0, 0]) - v.at(&[0, 1, 0])).abs();
        assert!(
            diff > 1e-4,
            "neighborhood information should differentiate nodes"
        );
    }

    #[test]
    fn gradients_reach_filters() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::new(3);
        let conv = ChebyConv::new(
            &mut store,
            "gc",
            path3_scaled_laplacian(),
            3,
            2,
            2,
            &mut rng,
        );
        let mut tape = Tape::new();
        let x = tape.constant(Tensor::ones(&[2, 3, 2]));
        let y = conv.apply(&mut tape, &store, x);
        let sq = tape.mul(y, y);
        let loss = tape.sum_all(sq);
        let grads = tape.backward(loss);
        let gw = grads.get(store.id_of("gc.ws").unwrap()).unwrap();
        assert!(gw.frob_sq() > 0.0);
        assert!(grads.get(store.id_of("gc.b").unwrap()).is_some());
    }

    #[test]
    fn gradcheck_through_cheby_recurrence() {
        // Rebuild the recurrence manually with leaf weights to finite-diff it.
        let lap = path3_scaled_laplacian();
        let mut rng = Rng64::new(4);
        let x0 = Tensor::randn(&[2, 3, 2], 0.5, &mut rng);
        let w0 = Tensor::randn(&[3 * 2, 2], 0.5, &mut rng);
        crate::gradcheck::assert_grad_ok(&[x0, w0], move |t, v| {
            let l = t.constant(lap.clone());
            let t0 = v[0];
            let t1 = t.batched_matmul(l, t0);
            let lt1 = t.batched_matmul(l, t1);
            let two_lt1 = t.scale(lt1, 2.0);
            let t2 = t.sub(two_lt1, t0);
            let stacked = t.concat(&[t0, t1, t2], 2);
            let flat = t.reshape(stacked, &[2 * 3, 6]);
            let y = t.matmul(flat, v[1]);
            let sq = t.mul(y, y);
            t.sum_all(sq)
        });
    }
}
