//! Dot-product attention over encoder states — the paper's §VII outlook
//! ("consider the information at different timestamps differently, e.g.,
//! using attention networks") implemented as an optional seq2seq decoder.
//!
//! At each decode step the decoder hidden state attends over all encoder
//! hidden states with a bilinear score; the context vector is concatenated
//! with the decoder state before the output head.

use crate::layers::{GruCell, Linear};
use crate::params::{ParamId, ParamStore};
use crate::tape::{Tape, Var};
use stod_tensor::rng::Rng64;
use stod_tensor::Tensor;

/// GRU encoder–decoder with bilinear attention over the encoder states.
///
/// Same interface as [`crate::layers::GruSeq2Seq`], with one extra weight
/// (`H×H` bilinear score) and a `2H → dim` output head.
pub struct AttnGruSeq2Seq {
    encoder: GruCell,
    decoder: GruCell,
    /// Bilinear attention score weight `W_a ∈ R^{H×H}`.
    w_att: ParamId,
    head: Linear,
}

impl AttnGruSeq2Seq {
    /// Registers the encoder, decoder, attention weight and output head.
    pub fn new(
        store: &mut ParamStore,
        prefix: &str,
        dim: usize,
        hidden: usize,
        rng: &mut Rng64,
    ) -> Self {
        AttnGruSeq2Seq {
            encoder: GruCell::new(store, &format!("{prefix}.enc"), dim, hidden, rng),
            decoder: GruCell::new(store, &format!("{prefix}.dec"), dim, hidden, rng),
            w_att: store.register(
                format!("{prefix}.w_att"),
                Tensor::glorot(&[hidden, hidden], rng),
            ),
            head: Linear::new(store, &format!("{prefix}.head"), 2 * hidden, dim, rng),
        }
    }

    /// Feature dimension shared by inputs and outputs.
    pub fn dim(&self) -> usize {
        self.encoder.in_dim()
    }

    /// Encodes `inputs` (each `[B, D]`) and decodes `horizon` steps with
    /// attention over the encoder states.
    pub fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        inputs: &[Var],
        horizon: usize,
    ) -> Vec<Var> {
        assert!(!inputs.is_empty(), "seq2seq needs at least one input step");
        assert!(horizon >= 1, "seq2seq horizon must be ≥ 1");
        let batch = tape.value(inputs[0]).dim(0);
        let hidden = self.encoder.hidden();

        // Encode, keeping every hidden state for attention.
        let mut h = self.encoder.zero_state(tape, batch);
        let mut enc_states = Vec::with_capacity(inputs.len());
        for &x in inputs {
            h = self.encoder.step(tape, store, x, h);
            enc_states.push(h);
        }
        // Stack encoder states as [B, S, H].
        let stacked: Vec<Var> = enc_states
            .iter()
            .map(|&s| tape.reshape(s, &[batch, 1, hidden]))
            .collect();
        let enc = tape.concat(&stacked, 1); // [B, S, H]

        let w_att = tape.param(store, self.w_att);
        let mut outputs = Vec::with_capacity(horizon);
        let mut dec_in = *inputs.last().expect("nonempty");
        for _ in 0..horizon {
            h = self.decoder.step(tape, store, dec_in, h);
            // scores = enc · (W_a · hᵀ): [B, S, H] × [B, H, 1] → [B, S, 1].
            let hw = tape.matmul(h, w_att); // [B, H]
            let hw3 = tape.reshape(hw, &[batch, hidden, 1]);
            let scores = tape.batched_matmul(enc, hw3); // [B, S, 1]
            let attn = tape.softmax(scores, 1);
            // context = attnᵀ · enc : [B, 1, S] × [B, S, H] → [B, H].
            let attn_t = tape.transpose(attn, 1, 2);
            let ctx = tape.batched_matmul(attn_t, enc); // [B, 1, H]
            let ctx = tape.reshape(ctx, &[batch, hidden]);
            let joint = tape.concat(&[h, ctx], 1); // [B, 2H]
            let y = self.head.apply(tape, store, joint);
            outputs.push(y);
            dec_in = y;
        }
        outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;

    #[test]
    fn shapes_and_finiteness() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::new(0);
        let model = AttnGruSeq2Seq::new(&mut store, "a", 3, 6, &mut rng);
        let mut tape = Tape::new();
        let xs: Vec<Var> = (0..4)
            .map(|i| tape.leaf(Tensor::full(&[2, 3], i as f32 * 0.3)))
            .collect();
        let ys = model.forward(&mut tape, &store, &xs, 2);
        assert_eq!(ys.len(), 2);
        for y in &ys {
            assert_eq!(tape.value(*y).dims(), &[2, 3]);
            assert!(tape.value(*y).all_finite());
        }
    }

    #[test]
    fn gradients_reach_attention_weight() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::new(1);
        let model = AttnGruSeq2Seq::new(&mut store, "a", 2, 4, &mut rng);
        let mut tape = Tape::new();
        let xs: Vec<Var> = (0..3)
            .map(|_| tape.constant(Tensor::ones(&[1, 2])))
            .collect();
        let ys = model.forward(&mut tape, &store, &xs, 1);
        let sq = tape.mul(ys[0], ys[0]);
        let loss = tape.sum_all(sq);
        let grads = tape.backward(loss);
        let g = grads.get(store.id_of("a.w_att").unwrap());
        assert!(g.is_some(), "attention weight got no gradient");
        assert!(g.unwrap().frob_sq() > 0.0);
    }

    #[test]
    fn learns_to_echo_first_input() {
        // Task that *needs* attention to early states: predict the first
        // element of the sequence after several distractor steps.
        let mut store = ParamStore::new();
        let mut rng = Rng64::new(2);
        let model = AttnGruSeq2Seq::new(&mut store, "a", 1, 8, &mut rng);
        let mut adam = Adam::new(0.02);
        let mut last = f32::MAX;
        for step in 0..400 {
            let sign = if step % 2 == 0 { 1.0 } else { -1.0 };
            let mut tape = Tape::new();
            let first = tape.constant(Tensor::full(&[1, 1], sign));
            let distract: Vec<Var> = (0..4)
                .map(|_| tape.constant(Tensor::zeros(&[1, 1])))
                .collect();
            let mut xs = vec![first];
            xs.extend(distract);
            let ys = model.forward(&mut tape, &store, &xs, 1);
            let target = Tensor::full(&[1, 1], sign);
            let loss = tape.masked_sq_err(ys[0], &target, &Tensor::ones(&[1, 1]));
            last = tape.value(loss).item();
            let grads = tape.backward(loss);
            adam.step(&mut store, &grads);
        }
        assert!(last < 0.05, "attention seq2seq failed to echo, loss {last}");
    }
}
