//! Neural layers: fully-connected, GRU, Chebyshev graph convolution and the
//! graph-convolutional GRU (the paper's CNRNN cell), plus the
//! sequence-to-sequence drivers used by the forecasting stage.

mod attention;
mod cheby;
mod gcgru;
mod gru;
mod linear;
mod seq2seq;

pub use attention::AttnGruSeq2Seq;
pub use cheby::{csr_propagate, ChebyConv, ChebyFilter};
pub use gcgru::GcGruCell;
pub use gru::GruCell;
pub use linear::Linear;
pub use seq2seq::{GcGruSeq2Seq, GruSeq2Seq};
