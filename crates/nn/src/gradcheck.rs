//! Central finite-difference gradient checking.
//!
//! Every differentiable op and layer in this workspace is validated against
//! `(f(x+ε) − f(x−ε)) / 2ε`. `f32` arithmetic limits the achievable
//! agreement; the default tolerances (relative 2e-2 against an ε of 1e-2
//! on O(1) values) are tight enough to catch any structural mistake while
//! staying robust to rounding.

use crate::tape::{Tape, Var};
use stod_tensor::Tensor;

/// Report of a gradient check: the largest deviation found.
#[derive(Debug)]
pub struct GradCheckReport {
    /// Largest absolute difference between analytic and numeric gradients.
    pub max_abs_err: f32,
    /// Largest relative difference (normalized by gradient magnitude).
    pub max_rel_err: f32,
    /// Whether the check passed the supplied tolerance.
    pub ok: bool,
}

/// Checks the analytic gradients of `f` at `inputs` against central finite
/// differences.
///
/// `f` must rebuild the computation on the supplied tape from the leaf
/// variables it is given (one per input tensor) and return a scalar loss
/// variable. The function is re-invoked `2 · Σ numel` times for the
/// numeric side, so keep the inputs small.
pub fn gradient_check<F>(inputs: &[Tensor], f: F, eps: f32, tol: f32) -> GradCheckReport
where
    F: Fn(&mut Tape, &[Var]) -> Var,
{
    // Analytic gradients.
    let mut tape = Tape::new();
    let leaves: Vec<Var> = inputs.iter().map(|t| tape.leaf(t.clone())).collect();
    let loss = f(&mut tape, &leaves);
    assert_eq!(
        tape.value(loss).numel(),
        1,
        "gradient_check needs a scalar loss"
    );
    let analytic = tape.backward_wrt(loss, &leaves);

    let eval = |perturbed: &[Tensor]| -> f64 {
        let mut tape = Tape::new();
        let leaves: Vec<Var> = perturbed.iter().map(|t| tape.leaf(t.clone())).collect();
        let loss = f(&mut tape, &leaves);
        tape.value(loss).item() as f64
    };

    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    let mut work: Vec<Tensor> = inputs.to_vec();
    for (which, input) in inputs.iter().enumerate() {
        let a = analytic[which]
            .clone()
            .unwrap_or_else(|| Tensor::zeros(input.dims()));
        for j in 0..input.numel() {
            let orig = input.data()[j];
            work[which].data_mut()[j] = orig + eps;
            let up = eval(&work);
            work[which].data_mut()[j] = orig - eps;
            let down = eval(&work);
            work[which].data_mut()[j] = orig;
            let numeric = ((up - down) / (2.0 * eps as f64)) as f32;
            let ana = a.data()[j];
            let abs = (numeric - ana).abs();
            let rel = abs / numeric.abs().max(ana.abs()).max(1.0);
            max_abs = max_abs.max(abs);
            max_rel = max_rel.max(rel);
        }
    }
    GradCheckReport {
        max_abs_err: max_abs,
        max_rel_err: max_rel,
        ok: max_rel <= tol,
    }
}

/// Asserts that a gradient check passes, with a readable failure message.
pub fn assert_grad_ok<F>(inputs: &[Tensor], f: F)
where
    F: Fn(&mut Tape, &[Var]) -> Var,
{
    let report = gradient_check(inputs, f, 1e-2, 2e-2);
    assert!(
        report.ok,
        "gradient check failed: max_abs_err={}, max_rel_err={}",
        report.max_abs_err, report.max_rel_err
    );
}

/// Analytic gradients of `f`'s scalar output w.r.t. each input leaf
/// (`None` when an input does not reach the loss).
///
/// Exposed so tests can compare the backward pass across pool
/// configurations: run it under [`stod_tensor::par::with_forced_threads`]
/// at different thread counts and the results must match bitwise.
pub fn analytic_gradients<F>(inputs: &[Tensor], f: F) -> Vec<Option<Tensor>>
where
    F: Fn(&mut Tape, &[Var]) -> Var,
{
    let mut tape = Tape::new();
    let leaves: Vec<Var> = inputs.iter().map(|t| tape.leaf(t.clone())).collect();
    let loss = f(&mut tape, &leaves);
    assert_eq!(
        tape.value(loss).numel(),
        1,
        "analytic_gradients needs a scalar loss"
    );
    tape.backward_wrt(loss, &leaves)
}

/// The full layer contract under the parallel kernel pool:
///
/// 1. finite differences validate the analytic gradients (serial), and
/// 2. the analytic gradients are **bitwise identical** at every thread
///    count in `thread_counts` — the pool may move work, never values.
///
/// The thread sweep uses forced parallelism so tiny test operands really
/// exercise the parallel code paths instead of the small-op fallback.
pub fn assert_grad_ok_at_threads<F>(inputs: &[Tensor], f: F, thread_counts: &[usize])
where
    F: Fn(&mut Tape, &[Var]) -> Var,
{
    let reference = stod_tensor::par::with_forced_threads(1, || analytic_gradients(inputs, &f));
    assert_grad_ok(inputs, &f);
    for &threads in thread_counts {
        let got = stod_tensor::par::with_forced_threads(threads, || analytic_gradients(inputs, &f));
        assert_eq!(got.len(), reference.len());
        for (which, (g, r)) in got.iter().zip(reference.iter()).enumerate() {
            match (g, r) {
                (None, None) => {}
                (Some(g), Some(r)) => {
                    assert_eq!(g.dims(), r.dims(), "input {which}, threads={threads}");
                    let same = g
                        .data()
                        .iter()
                        .zip(r.data())
                        .all(|(a, b)| a.to_bits() == b.to_bits());
                    assert!(
                        same,
                        "gradient of input {which} differs at {threads} threads \
                         (max |Δ| = {})",
                        g.max_abs_diff(r)
                    );
                }
                _ => panic!("gradient presence differs for input {which} at {threads} threads"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stod_tensor::rng::Rng64;

    fn rt(dims: &[usize], seed: u64) -> Tensor {
        Tensor::randn(dims, 0.5, &mut Rng64::new(seed))
    }

    #[test]
    fn add_and_mul() {
        assert_grad_ok(&[rt(&[2, 3], 1), rt(&[2, 3], 2)], |t, v| {
            let s = t.add(v[0], v[1]);
            let m = t.mul(s, v[0]);
            t.sum_all(m)
        });
    }

    #[test]
    fn sub_and_neg() {
        assert_grad_ok(&[rt(&[3, 2], 3), rt(&[3, 2], 4)], |t, v| {
            let d = t.sub(v[0], v[1]);
            let n = t.neg(d);
            let m = t.mul(n, n);
            t.sum_all(m)
        });
    }

    #[test]
    fn broadcast_bias_add() {
        assert_grad_ok(&[rt(&[4, 3], 5), rt(&[3], 6)], |t, v| {
            let y = t.add(v[0], v[1]);
            let sq = t.mul(y, y);
            t.sum_all(sq)
        });
    }

    #[test]
    fn matmul_both_sides() {
        assert_grad_ok(&[rt(&[3, 4], 7), rt(&[4, 2], 8)], |t, v| {
            let y = t.matmul(v[0], v[1]);
            let sq = t.mul(y, y);
            t.sum_all(sq)
        });
    }

    #[test]
    fn batched_matmul_full_batch() {
        assert_grad_ok(&[rt(&[2, 3, 2], 9), rt(&[2, 2, 3], 10)], |t, v| {
            let y = t.batched_matmul(v[0], v[1]);
            let sq = t.mul(y, y);
            t.sum_all(sq)
        });
    }

    #[test]
    fn batched_matmul_broadcast_lhs() {
        assert_grad_ok(&[rt(&[3, 3], 11), rt(&[4, 3, 2], 12)], |t, v| {
            let y = t.batched_matmul(v[0], v[1]);
            let sq = t.mul(y, y);
            t.sum_all(sq)
        });
    }

    #[test]
    fn batched_matmul_broadcast_rhs() {
        assert_grad_ok(&[rt(&[4, 2, 3], 13), rt(&[3, 2], 14)], |t, v| {
            let y = t.batched_matmul(v[0], v[1]);
            let sq = t.mul(y, y);
            t.sum_all(sq)
        });
    }

    #[test]
    fn sigmoid_tanh_relu_exp() {
        assert_grad_ok(&[rt(&[2, 4], 15)], |t, v| {
            let s = t.sigmoid(v[0]);
            let h = t.tanh(s);
            let e = t.exp(h);
            // ReLU is checked at inputs away from the kink by construction
            // (randn rarely lands within ±1e-2 of zero for 8 values).
            let r = t.relu(e);
            t.sum_all(r)
        });
    }

    #[test]
    fn softmax_axis1() {
        assert_grad_ok(&[rt(&[3, 4], 16), rt(&[3, 4], 17)], |t, v| {
            let s = t.softmax(v[0], 1);
            let m = t.mul(s, v[1]);
            t.sum_all(m)
        });
    }

    #[test]
    fn reshape_permute_concat_slice() {
        assert_grad_ok(&[rt(&[2, 6], 18), rt(&[2, 6], 19)], |t, v| {
            let a = t.reshape(v[0], &[2, 3, 2]);
            let p = t.permute(a, &[1, 0, 2]);
            let b = t.reshape(v[1], &[3, 2, 2]);
            let c = t.concat(&[p, b], 2);
            let s = t.slice_axis(c, 2, 1, 3);
            let sq = t.mul(s, s);
            t.sum_all(sq)
        });
    }

    #[test]
    fn index_select_with_duplicates() {
        assert_grad_ok(&[rt(&[4, 3], 20)], |t, v| {
            let g = t.index_select(v[0], 0, &[0, 2, 2, 1]);
            let sq = t.mul(g, g);
            t.sum_all(sq)
        });
    }

    #[test]
    fn pooling_ops() {
        assert_grad_ok(&[rt(&[2, 4, 3], 21)], |t, v| {
            let a = t.avg_pool_axis(v[0], 1, 2);
            let m = t.max_pool_axis(a, 1, 2);
            let sq = t.mul(m, m);
            t.sum_all(sq)
        });
    }

    #[test]
    fn frobenius_and_masked_error() {
        let target = rt(&[3, 3], 22);
        let mask = Tensor::from_vec(&[3, 3], vec![1.0, 0.0, 1.0, 1.0, 1.0, 0.0, 0.0, 1.0, 1.0]);
        assert_grad_ok(&[rt(&[3, 3], 23)], move |t, v| {
            let mse = t.masked_sq_err(v[0], &target, &mask);
            let reg = t.frob_sq(v[0]);
            let reg_scaled = t.scale(reg, 0.1);
            t.add(mse, reg_scaled)
        });
    }

    #[test]
    fn sum_and_mean_reductions() {
        assert_grad_ok(&[rt(&[3, 4], 24)], |t, v| {
            let s = t.sum_axis(v[0], 1, false);
            let sq = t.mul(s, s);
            let total = t.sum_all(sq);
            let m = t.mean_all(v[0]);
            let m2 = t.mul(m, m);
            t.add(total, m2)
        });
    }

    #[test]
    fn one_minus_gate_idiom() {
        assert_grad_ok(&[rt(&[2, 3], 25), rt(&[2, 3], 26)], |t, v| {
            let u = t.sigmoid(v[0]);
            let one_minus_u = t.one_minus(u);
            let a = t.mul(u, v[1]);
            let b = t.mul(one_minus_u, v[0]);
            let y = t.add(a, b);
            let sq = t.mul(y, y);
            t.sum_all(sq)
        });
    }

    #[test]
    fn deep_composition() {
        // A little MLP: x·W1 → tanh → ·W2 → softmax → masked error.
        let target = Tensor::from_vec(&[2, 3], vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0]);
        let mask = Tensor::ones(&[2, 3]);
        assert_grad_ok(
            &[rt(&[2, 4], 27), rt(&[4, 5], 28), rt(&[5, 3], 29)],
            move |t, v| {
                let h = t.matmul(v[0], v[1]);
                let a = t.tanh(h);
                let o = t.matmul(a, v[2]);
                let p = t.softmax(o, 1);
                t.masked_sq_err(p, &target, &mask)
            },
        );
    }
}
