//! IEEE 754 binary16 conversion for compact checkpoints.
//!
//! The serving path stores checkpoint weights as f16 (half the bytes of
//! f32) and dequantizes back to f32 on load — compute stays f32
//! everywhere. No `half` crate: the conversions are plain bit
//! manipulation, round-to-nearest-even on encode and *exact* on decode
//! (every f16 value is exactly representable in f32, so a
//! quantize→dequantize roundtrip is idempotent).
//!
//! # Error-bound contract
//!
//! For finite `x` with `|x| ≤` [`F16_MAX`], the decoded value `x̂`
//! satisfies `|x̂ − x| ≤ max(2⁻¹¹·|x|, 2⁻²⁵)` — half-ULP relative error
//! for normals, half the subnormal spacing near zero. Values that would
//! round to infinity (`|x| ≥ 65520`), infinities, and NaNs are a typed
//! [`Unquantizable`] error, **never** a silently saturated or NaN
//! payload: a checkpoint that cannot honour the bound must refuse to
//! quantize (`crates/conformance` pins this down on extreme-magnitude
//! corpora).

/// Largest finite f16 value (`(2 − 2⁻¹⁰) · 2¹⁵`).
pub const F16_MAX: f32 = 65504.0;

/// A weight value that cannot be represented in f16 within the error
/// bound: non-finite, or large enough to round to infinity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Unquantizable(pub f32);

impl std::fmt::Display for Unquantizable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "value {} is outside the f16 range (|x| must be < 65520 and finite)",
            self.0
        )
    }
}

impl std::error::Error for Unquantizable {}

/// Converts `x` to f16 bits with round-to-nearest-even, saturating
/// non-finite inputs to f16 infinity/NaN. Prefer [`quantize`] — the
/// checkpoint codec must never store a saturated value silently.
pub fn f16_bits_from_f32(x: f32) -> u16 {
    let b = x.to_bits();
    let sign = ((b >> 16) & 0x8000) as u16;
    let abs = b & 0x7fff_ffff;

    if abs > 0x7f80_0000 {
        return sign | 0x7e00; // NaN → quiet f16 NaN
    }
    if abs >= 0x7f80_0000 {
        return sign | 0x7c00; // ±Inf
    }

    let mut exp = (abs >> 23) as i32 - 127;
    if abs < 0x0080_0000 {
        // f32 subnormals are < 2^-126, far below half the smallest f16
        // subnormal (2^-25), so they round to (signed) zero.
        return sign;
    }
    let mant = (abs & 0x007f_ffff) | 0x0080_0000; // 24-bit significand

    if exp >= 16 {
        return sign | 0x7c00; // ≥ 2^16 overflows to infinity
    }
    if exp >= -14 {
        // Normal range: round the 24-bit significand to 11 bits.
        let mut m = rne_shift(mant, 13);
        if m == 0x800 {
            // Mantissa carry: 2.0 × 2^exp = 1.0 × 2^(exp+1).
            m = 0x400;
            exp += 1;
            if exp > 15 {
                return sign | 0x7c00;
            }
        }
        sign | (((exp + 15) as u16) << 10) | ((m as u16) & 0x3ff)
    } else {
        // Subnormal range: shift further so the result lands on the
        // fixed 2^-24 grid. A rounded-up 0x400 is exactly the smallest
        // normal's encoding, which `sign | m` already produces.
        let shift = 13 + (-14 - exp);
        if shift >= 32 {
            return sign;
        }
        sign | (rne_shift(mant, shift as u32) as u16)
    }
}

/// Right-shift with round-to-nearest, ties-to-even.
fn rne_shift(v: u32, shift: u32) -> u32 {
    if shift == 0 {
        return v;
    }
    if shift > 31 {
        return 0;
    }
    let kept = v >> shift;
    let half = 1u32 << (shift - 1);
    let rem = v & ((1u32 << shift) - 1);
    match rem.cmp(&half) {
        std::cmp::Ordering::Greater => kept + 1,
        std::cmp::Ordering::Equal => kept + (kept & 1),
        std::cmp::Ordering::Less => kept,
    }
}

/// Exact f16 → f32 decode (every f16 value is an f32 value).
pub fn f32_from_f16_bits(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = (h >> 10) & 0x1f;
    let mant = (h & 0x3ff) as u32;
    let bits = match exp {
        0 => {
            if mant == 0 {
                sign // ±0
            } else {
                // Subnormal: normalize into an f32 exponent.
                let mut e = -14i32;
                let mut m = mant;
                while m & 0x400 == 0 {
                    m <<= 1;
                    e -= 1;
                }
                sign | (((e + 127) as u32) << 23) | ((m & 0x3ff) << 13)
            }
        }
        0x1f => sign | 0x7f80_0000 | (mant << 13),
        _ => sign | ((exp as u32 + 127 - 15) << 23) | (mant << 13),
    };
    f32::from_bits(bits)
}

/// Quantizes `x` to f16 bits, refusing anything outside the error-bound
/// contract: non-finite input or magnitude that rounds to infinity.
pub fn quantize(x: f32) -> Result<u16, Unquantizable> {
    if !x.is_finite() {
        return Err(Unquantizable(x));
    }
    let h = f16_bits_from_f32(x);
    if h & 0x7fff == 0x7c00 {
        return Err(Unquantizable(x));
    }
    Ok(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The contract bound: max(2⁻¹¹·|x|, 2⁻²⁵).
    fn bound(x: f32) -> f32 {
        (x.abs() * (1.0 / 2048.0)).max(1.0 / 33_554_432.0)
    }

    #[test]
    fn exact_values_roundtrip_bitwise() {
        for x in [
            0.0f32,
            -0.0,
            1.0,
            -1.0,
            0.5,
            2.0,
            65504.0,
            -65504.0,
            0.25,
            1024.0,
            6.103_515_6e-5, // smallest f16 normal
            5.960_464_5e-8, // smallest f16 subnormal
        ] {
            let h = quantize(x).unwrap();
            let back = f32_from_f16_bits(h);
            assert_eq!(back.to_bits(), x.to_bits(), "{x} not exact");
        }
    }

    #[test]
    fn error_bound_holds_on_dense_sweep() {
        // Deterministic sweep across magnitudes from subnormal to F16_MAX.
        let mut x = 1.0e-8f32;
        while x < F16_MAX {
            for v in [x, -x, x * 1.000123, x * 0.99987] {
                if v.abs() >= F16_MAX {
                    continue;
                }
                let h = quantize(v).unwrap();
                let back = f32_from_f16_bits(h);
                assert!(
                    (back - v).abs() <= bound(v),
                    "bound violated at {v}: back {back}"
                );
            }
            x *= 1.37;
        }
    }

    #[test]
    fn roundtrip_is_idempotent() {
        let mut x = 1.0e-7f32;
        while x < F16_MAX {
            let h = quantize(x).unwrap();
            let once = f32_from_f16_bits(h);
            let h2 = quantize(once).unwrap();
            assert_eq!(h, h2, "re-quantizing {once} moved the bits");
            x *= 2.31;
        }
    }

    #[test]
    fn ties_round_to_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next f16
        // (1 + 2^-10); RNE keeps the even mantissa (1.0).
        let tie = 1.0f32 + (1.0 / 2048.0);
        assert_eq!(f32_from_f16_bits(quantize(tie).unwrap()), 1.0);
        // 1 + 3·2^-11 is halfway between 1+2^-10 and 1+2^-9; RNE picks
        // the even mantissa 1+2^-9.
        let tie2 = 1.0f32 + (3.0 / 2048.0);
        assert_eq!(
            f32_from_f16_bits(quantize(tie2).unwrap()),
            1.0 + (2.0 / 1024.0)
        );
    }

    #[test]
    fn out_of_range_is_typed_never_silent() {
        for bad in [
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            65520.0,
            -65520.0,
            1.0e9,
            f32::MAX,
        ] {
            let err = quantize(bad).unwrap_err();
            assert!(
                bad.is_nan() && err.0.is_nan() || err.0 == bad,
                "error must carry the offending value"
            );
        }
        // Just inside the boundary: 65519.996… rounds down to 65504.
        assert_eq!(f32_from_f16_bits(quantize(65519.0).unwrap()), 65504.0);
    }

    #[test]
    fn subnormals_and_tiny_values() {
        // Below half the smallest subnormal → signed zero.
        assert_eq!(quantize(1.0e-9).unwrap(), 0);
        assert_eq!(quantize(-1.0e-9).unwrap(), 0x8000);
        // An f16-subnormal magnitude stays within the absolute bound.
        let v = 3.0e-7f32;
        let back = f32_from_f16_bits(quantize(v).unwrap());
        assert!((back - v).abs() <= bound(v));
    }

    #[test]
    fn saturating_bit_conversion_matches_quantize_on_valid_range() {
        let mut x = 1.0e-6f32;
        while x < F16_MAX {
            assert_eq!(f16_bits_from_f32(x), quantize(x).unwrap());
            x *= 3.77;
        }
        assert_eq!(f16_bits_from_f32(f32::INFINITY), 0x7c00);
        assert_eq!(f16_bits_from_f32(f32::NEG_INFINITY), 0xfc00);
        assert_eq!(f16_bits_from_f32(f32::NAN) & 0x7c00, 0x7c00);
    }
}
