//! # stod-nn
//!
//! A compact reverse-mode automatic-differentiation engine plus the neural
//! building blocks the paper requires:
//!
//! * [`tape::Tape`] — a dynamically-built computation graph. Every
//!   operation evaluates eagerly and records a backward closure; calling
//!   [`tape::Tape::backward`] propagates gradients to parameter leaves.
//! * [`params::ParamStore`] — named parameter tensors with binary
//!   save/load, shared across forward passes.
//! * [`layers`] — `Linear`, `GruCell`, `ChebyConv` (Cheby-Net graph
//!   convolution), `GcGruCell` (the paper's CNRNN cell, Eqs. 7–10) and
//!   sequence-to-sequence drivers.
//! * [`optim`] — SGD and Adam with gradient clipping and the step-decay
//!   learning-rate schedule the paper trains with.
//! * [`gradcheck`] — central finite-difference validation used throughout
//!   the test suite.
//!
//! Every differentiable op ships with a gradient-check test; the layers are
//! additionally checked end-to-end through composed losses.

pub mod f16;
pub mod gradcheck;
pub mod layers;
pub mod optim;
pub mod params;
pub mod tape;

pub use gradcheck::{analytic_gradients, assert_grad_ok_at_threads, gradient_check};
pub use optim::ClipStatus;
pub use params::{ParamId, ParamStore, StoreError};
pub use tape::{BackwardFn, Gradients, Tape, Var};
