//! Reverse-mode automatic differentiation over [`stod_tensor::Tensor`].
//!
//! A [`Tape`] is a freshly-built computation graph per forward pass. Every
//! operation evaluates eagerly, records its parents and a backward closure,
//! and returns a [`Var`] handle. [`Tape::backward`] walks the nodes in
//! reverse topological order (creation order is already topological) and
//! accumulates gradients into the parameter leaves.
//!
//! Constant nodes (`requires_grad == false`) cut gradient propagation, so
//! multiplying by fixed matrices — scaled Laplacians, masks — costs nothing
//! on the backward pass.

use crate::params::{ParamId, ParamStore};
use stod_tensor::ops::{elementwise as ew, matmul as mm, softmax as sm, transform as tf};
use stod_tensor::rng::Rng64;
use stod_tensor::Tensor;

/// Handle to a node on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(pub(crate) usize);

/// Backward closure: `(grad_out, parent_values, own_value, parent_needs)`
/// returns one optional gradient per parent (`None` where not needed).
///
/// Public so fused operations living outside this crate (e.g. the sparse
/// masked recovery kernel in `stod-core`) can register themselves via
/// [`Tape::custom_op`].
pub type BackwardFn = Box<dyn Fn(&Tensor, &[&Tensor], &Tensor, &[bool]) -> Vec<Option<Tensor>>>;

struct Node {
    value: Tensor,
    parents: Vec<usize>,
    backward: Option<BackwardFn>,
    requires_grad: bool,
}

/// Result of a backward pass: gradients for the parameter leaves used in
/// the forward pass.
pub struct Gradients {
    by_param: Vec<Option<Tensor>>,
}

impl Gradients {
    /// Gradient of the loss w.r.t. a parameter, if the parameter
    /// participated in the graph.
    pub fn get(&self, id: ParamId) -> Option<&Tensor> {
        self.by_param.get(id.index()).and_then(Option::as_ref)
    }

    /// Mutable access to one parameter's gradient (fault-injection tests
    /// use this to poison gradients in place).
    pub fn get_mut(&mut self, id: ParamId) -> Option<&mut Tensor> {
        self.by_param.get_mut(id.index()).and_then(Option::as_mut)
    }

    /// Global L2 norm across all parameter gradients.
    pub fn global_norm(&self) -> f32 {
        let mut s = 0.0f64;
        for g in self.by_param.iter().flatten() {
            s += g.frob_sq() as f64;
        }
        (s as f32).sqrt()
    }

    /// Scales every gradient in place (used for clipping).
    pub fn scale(&mut self, factor: f32) {
        for g in self.by_param.iter_mut().flatten() {
            g.map_inplace(|x| x * factor);
        }
    }

    /// Accumulates `other` into `self` (`self += other`), element-wise per
    /// parameter.
    ///
    /// Used to merge per-shard gradients: the trainer folds shard
    /// gradients in fixed shard order on one thread, so the merged sum is
    /// independent of how the shards were scheduled across the pool.
    ///
    /// # Panics
    /// Panics if a parameter's gradient shapes disagree.
    pub fn add_assign(&mut self, other: &Gradients) {
        if other.by_param.len() > self.by_param.len() {
            self.by_param.resize_with(other.by_param.len(), || None);
        }
        for (i, g) in other.by_param.iter().enumerate() {
            let Some(g) = g else { continue };
            match &mut self.by_param[i] {
                Some(acc) => {
                    assert_eq!(acc.dims(), g.dims(), "gradient shape mismatch");
                    for (a, &b) in acc.data_mut().iter_mut().zip(g.data()) {
                        *a += b;
                    }
                }
                slot => *slot = Some(g.clone()),
            }
        }
    }

    /// Iterates over `(ParamId, gradient)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Tensor)> {
        self.by_param
            .iter()
            .enumerate()
            .filter_map(|(i, g)| g.as_ref().map(|g| (ParamId(i), g)))
    }
}

/// A reverse-mode autodiff tape.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
    /// `(node index, param id)` for every parameter leaf on this tape.
    param_leaves: Vec<(usize, ParamId)>,
}

/// Sums a gradient down to `target_dims`, undoing NumPy-style broadcasting.
fn reduce_to_shape(grad: Tensor, target_dims: &[usize]) -> Tensor {
    if grad.dims() == target_dims {
        return grad;
    }
    let mut g = grad;
    // Collapse leading broadcast dimensions.
    while g.ndim() > target_dims.len() {
        g = stod_tensor::sum_axis(&g, 0, false);
    }
    // Collapse size-1 dimensions that were broadcast.
    for (axis, &target) in target_dims.iter().enumerate() {
        if target == 1 && g.dim(axis) != 1 {
            g = stod_tensor::sum_axis(&g, axis, true);
        }
    }
    assert_eq!(g.dims(), target_dims, "broadcast gradient reduction failed");
    g
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Tape::default()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes are recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The value computed at `v`.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    fn push(&mut self, value: Tensor, parents: Vec<usize>, backward: Option<BackwardFn>) -> Var {
        let requires_grad =
            backward.is_some() && parents.iter().any(|&p| self.nodes[p].requires_grad);
        self.nodes.push(Node {
            value,
            parents,
            backward: if requires_grad { backward } else { None },
            requires_grad,
        });
        Var(self.nodes.len() - 1)
    }

    /// Registers a fused operation computed outside the tape: `value` is
    /// the eagerly evaluated result, `parents` the inputs it was computed
    /// from, and `backward` the hand-written gradient. The closure receives
    /// `(grad_out, parent_values, own_value, parent_needs)` and must return
    /// one optional gradient per parent, shaped like that parent.
    ///
    /// The tape applies the same pruning as built-in ops: if no parent
    /// requires gradients the closure is dropped and the node becomes a
    /// constant.
    pub fn custom_op(&mut self, value: Tensor, parents: &[Var], backward: BackwardFn) -> Var {
        self.push(value, parents.iter().map(|v| v.0).collect(), Some(backward))
    }

    /// Adds a constant (non-differentiable) leaf.
    pub fn constant(&mut self, t: Tensor) -> Var {
        self.nodes.push(Node {
            value: t,
            parents: vec![],
            backward: None,
            requires_grad: false,
        });
        Var(self.nodes.len() - 1)
    }

    /// Adds a differentiable leaf that is *not* a registered parameter
    /// (used by gradient checks).
    pub fn leaf(&mut self, t: Tensor) -> Var {
        self.nodes.push(Node {
            value: t,
            parents: vec![],
            backward: None,
            requires_grad: true,
        });
        Var(self.nodes.len() - 1)
    }

    /// Adds a parameter leaf reading its current value from `store`.
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        let v = self.leaf(store.get(id).clone());
        self.param_leaves.push((v.0, id));
        v
    }

    // ------------------------------------------------------------------
    // Elementwise arithmetic
    // ------------------------------------------------------------------

    /// Broadcasting addition.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = ew::add(self.value(a), self.value(b));
        self.push(
            value,
            vec![a.0, b.0],
            Some(Box::new(|g, ps, _, needs| {
                vec![
                    needs[0].then(|| reduce_to_shape(g.clone(), ps[0].dims())),
                    needs[1].then(|| reduce_to_shape(g.clone(), ps[1].dims())),
                ]
            })),
        )
    }

    /// Broadcasting subtraction `a - b`.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = ew::sub(self.value(a), self.value(b));
        self.push(
            value,
            vec![a.0, b.0],
            Some(Box::new(|g, ps, _, needs| {
                vec![
                    needs[0].then(|| reduce_to_shape(g.clone(), ps[0].dims())),
                    needs[1].then(|| reduce_to_shape(ew::neg(g), ps[1].dims())),
                ]
            })),
        )
    }

    /// Broadcasting elementwise (Hadamard) product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let value = ew::mul(self.value(a), self.value(b));
        self.push(
            value,
            vec![a.0, b.0],
            Some(Box::new(|g, ps, _, needs| {
                vec![
                    needs[0].then(|| reduce_to_shape(ew::mul(g, ps[1]), ps[0].dims())),
                    needs[1].then(|| reduce_to_shape(ew::mul(g, ps[0]), ps[1].dims())),
                ]
            })),
        )
    }

    /// Elementwise negation.
    pub fn neg(&mut self, a: Var) -> Var {
        let value = ew::neg(self.value(a));
        self.push(
            value,
            vec![a.0],
            Some(Box::new(|g, _, _, _| vec![Some(ew::neg(g))])),
        )
    }

    /// Multiplication by a compile-time scalar.
    pub fn scale(&mut self, a: Var, s: f32) -> Var {
        let value = ew::scale(self.value(a), s);
        self.push(
            value,
            vec![a.0],
            Some(Box::new(move |g, _, _, _| vec![Some(ew::scale(g, s))])),
        )
    }

    /// Addition of a compile-time scalar.
    pub fn add_scalar(&mut self, a: Var, s: f32) -> Var {
        let value = ew::add_scalar(self.value(a), s);
        self.push(
            value,
            vec![a.0],
            Some(Box::new(|g, _, _, _| vec![Some(g.clone())])),
        )
    }

    /// `1 - a`, a common idiom in gated units.
    pub fn one_minus(&mut self, a: Var) -> Var {
        let n = self.neg(a);
        self.add_scalar(n, 1.0)
    }

    // ------------------------------------------------------------------
    // Nonlinearities
    // ------------------------------------------------------------------

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let value = ew::sigmoid(self.value(a));
        self.push(
            value,
            vec![a.0],
            Some(Box::new(|g, _, y, _| {
                // dσ = σ(1-σ)
                let dy = ew::mul(g, &y.map(|s| s * (1.0 - s)));
                vec![Some(dy)]
            })),
        )
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let value = ew::tanh(self.value(a));
        self.push(
            value,
            vec![a.0],
            Some(Box::new(|g, _, y, _| {
                let dy = ew::mul(g, &y.map(|t| 1.0 - t * t));
                vec![Some(dy)]
            })),
        )
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Var) -> Var {
        let value = ew::relu(self.value(a));
        self.push(
            value,
            vec![a.0],
            Some(Box::new(|g, ps, _, _| {
                let mask = ps[0].map(|x| if x > 0.0 { 1.0 } else { 0.0 });
                vec![Some(ew::mul(g, &mask))]
            })),
        )
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: Var) -> Var {
        let value = ew::exp(self.value(a));
        self.push(
            value,
            vec![a.0],
            Some(Box::new(|g, _, y, _| vec![Some(ew::mul(g, y))])),
        )
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// 2-D matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = mm::matmul(self.value(a), self.value(b));
        self.push(
            value,
            vec![a.0, b.0],
            Some(Box::new(|g, ps, _, needs| {
                vec![
                    needs[0].then(|| mm::matmul(g, &tf::transpose(ps[1], 0, 1))),
                    needs[1].then(|| mm::matmul(&tf::transpose(ps[0], 0, 1), g)),
                ]
            })),
        )
    }

    /// Batched matrix product over leading dimensions; a 2-D operand is
    /// broadcast across the other operand's batch (its gradient is summed).
    pub fn batched_matmul(&mut self, a: Var, b: Var) -> Var {
        let value = mm::batched_matmul(self.value(a), self.value(b));
        self.push(
            value,
            vec![a.0, b.0],
            Some(Box::new(|g, ps, _, needs| {
                let (a, b) = (ps[0], ps[1]);
                let ga = needs[0].then(|| {
                    let bt = transpose_last2(b);
                    let full = mm::batched_matmul(g, &bt);
                    reduce_batched(full, a.dims())
                });
                let gb = needs[1].then(|| {
                    let at = transpose_last2(a);
                    let full = mm::batched_matmul(&at, g);
                    reduce_batched(full, b.dims())
                });
                vec![ga, gb]
            })),
        )
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Reshape (element count must match).
    pub fn reshape(&mut self, a: Var, dims: &[usize]) -> Var {
        let value = self.value(a).reshape(dims);
        self.push(
            value,
            vec![a.0],
            Some(Box::new(|g, ps, _, _| vec![Some(g.reshape(ps[0].dims()))])),
        )
    }

    /// Axis permutation.
    pub fn permute(&mut self, a: Var, perm: &[usize]) -> Var {
        let value = tf::permute(self.value(a), perm);
        let perm_owned = perm.to_vec();
        self.push(
            value,
            vec![a.0],
            Some(Box::new(move |g, _, _, _| {
                // Invert the permutation for the gradient.
                let mut inv = vec![0usize; perm_owned.len()];
                for (i, &p) in perm_owned.iter().enumerate() {
                    inv[p] = i;
                }
                vec![Some(tf::permute(g, &inv))]
            })),
        )
    }

    /// Swaps two axes.
    pub fn transpose(&mut self, a: Var, ax0: usize, ax1: usize) -> Var {
        let mut perm: Vec<usize> = (0..self.value(a).ndim()).collect();
        perm.swap(ax0, ax1);
        self.permute(a, &perm)
    }

    /// Concatenation along `axis`.
    pub fn concat(&mut self, parts: &[Var], axis: usize) -> Var {
        assert!(!parts.is_empty(), "concat of zero vars");
        let tensors: Vec<&Tensor> = parts.iter().map(|&v| self.value(v)).collect();
        let value = tf::concat(&tensors, axis);
        let parents: Vec<usize> = parts.iter().map(|v| v.0).collect();
        self.push(
            value,
            parents,
            Some(Box::new(move |g, ps, _, needs| {
                let mut out = Vec::with_capacity(ps.len());
                let mut start = 0usize;
                for (p, &need) in ps.iter().zip(needs.iter()) {
                    let len = p.dim(axis);
                    out.push(need.then(|| tf::slice_axis(g, axis, start, start + len)));
                    start += len;
                }
                out
            })),
        )
    }

    /// Half-open slice of `axis`.
    pub fn slice_axis(&mut self, a: Var, axis: usize, start: usize, end: usize) -> Var {
        let value = tf::slice_axis(self.value(a), axis, start, end);
        self.push(
            value,
            vec![a.0],
            Some(Box::new(move |g, ps, _, _| {
                // Scatter the slice gradient back into a zero tensor.
                let src = ps[0];
                let mut full = Tensor::zeros(src.dims());
                let outer: usize = src.dims()[..axis].iter().product();
                let mid = src.dim(axis);
                let inner: usize = src.dims()[axis + 1..].iter().product();
                let take = end - start;
                for o in 0..outer {
                    let dst_base = (o * mid + start) * inner;
                    let src_base = o * take * inner;
                    full.data_mut()[dst_base..dst_base + take * inner]
                        .copy_from_slice(&g.data()[src_base..src_base + take * inner]);
                }
                vec![Some(full)]
            })),
        )
    }

    /// Gathers rows of `axis` by index (duplicates allowed); the backward
    /// pass scatter-adds.
    pub fn index_select(&mut self, a: Var, axis: usize, indices: &[usize]) -> Var {
        let value = tf::index_select(self.value(a), axis, indices);
        let idx = indices.to_vec();
        self.push(
            value,
            vec![a.0],
            Some(Box::new(move |g, ps, _, _| {
                let src = ps[0];
                let mut full = Tensor::zeros(src.dims());
                let outer: usize = src.dims()[..axis].iter().product();
                let mid = src.dim(axis);
                let inner: usize = src.dims()[axis + 1..].iter().product();
                for o in 0..outer {
                    for (j, &ix) in idx.iter().enumerate() {
                        let src_base = (o * idx.len() + j) * inner;
                        let dst_base = (o * mid + ix) * inner;
                        for t in 0..inner {
                            full.data_mut()[dst_base + t] += g.data()[src_base + t];
                        }
                    }
                }
                vec![Some(full)]
            })),
        )
    }

    // ------------------------------------------------------------------
    // Softmax / reductions / losses
    // ------------------------------------------------------------------

    /// Softmax along `axis`.
    pub fn softmax(&mut self, a: Var, axis: usize) -> Var {
        let value = sm::softmax(self.value(a), axis);
        self.push(
            value,
            vec![a.0],
            Some(Box::new(move |g, _, y, _| {
                // dx = y ⊙ (g − Σ_axis(g ⊙ y))
                let gy = ew::mul(g, y);
                let s = stod_tensor::sum_axis(&gy, axis, true);
                let centered = ew::sub(g, &s);
                vec![Some(ew::mul(y, &centered))]
            })),
        )
    }

    /// Sum of all elements → scalar.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let value = Tensor::scalar(self.value(a).sum());
        self.push(
            value,
            vec![a.0],
            Some(Box::new(|g, ps, _, _| {
                let s = g.item();
                vec![Some(Tensor::full(ps[0].dims(), s))]
            })),
        )
    }

    /// Mean of all elements → scalar.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let n = self.value(a).numel() as f32;
        let s = self.sum_all(a);
        self.scale(s, 1.0 / n)
    }

    /// Sum along one axis.
    pub fn sum_axis(&mut self, a: Var, axis: usize, keepdim: bool) -> Var {
        let value = stod_tensor::sum_axis(self.value(a), axis, keepdim);
        self.push(
            value,
            vec![a.0],
            Some(Box::new(move |g, ps, _, _| {
                let src = ps[0];
                let g_keep = if keepdim {
                    g.clone()
                } else {
                    let mut dims = src.dims().to_vec();
                    dims[axis] = 1;
                    g.reshape(&dims)
                };
                // Broadcast back over the reduced axis.
                vec![Some(ew::add(&g_keep, &Tensor::zeros(src.dims())))]
            })),
        )
    }

    /// Squared Frobenius norm → scalar (used by the Eq. 4 regularizers).
    pub fn frob_sq(&mut self, a: Var) -> Var {
        let value = Tensor::scalar(self.value(a).frob_sq());
        self.push(
            value,
            vec![a.0],
            Some(Box::new(|g, ps, _, _| {
                let s = 2.0 * g.item();
                vec![Some(ps[0].map(|x| s * x))]
            })),
        )
    }

    /// Masked squared error `Σ mask ⊙ (pred − target)²` → scalar.
    ///
    /// `target` and `mask` are plain tensors (no gradient flows to them),
    /// matching the paper's Eq. 4/11 loss over non-empty ground-truth cells.
    pub fn masked_sq_err(&mut self, pred: Var, target: &Tensor, mask: &Tensor) -> Var {
        assert_eq!(
            self.value(pred).dims(),
            target.dims(),
            "masked_sq_err target shape"
        );
        assert_eq!(
            self.value(pred).dims(),
            mask.dims(),
            "masked_sq_err mask shape"
        );
        let diff = ew::sub(self.value(pred), target);
        let masked = ew::mul(&diff, mask);
        let value = Tensor::scalar(
            masked
                .data()
                .iter()
                .zip(diff.data())
                .map(|(&m, &d)| (m * d) as f64)
                .sum::<f64>() as f32,
        );
        let target = target.clone();
        let mask = mask.clone();
        self.push(
            value,
            vec![pred.0],
            Some(Box::new(move |g, ps, _, _| {
                let s = 2.0 * g.item();
                let diff = ew::sub(ps[0], &target);
                let mut grad = ew::mul(&diff, &mask);
                grad.map_inplace(|x| x * s);
                vec![Some(grad)]
            })),
        )
    }

    /// Inverted dropout: with probability `p` an element is zeroed, the
    /// survivors are scaled by `1/(1-p)`. Identity when `training == false`.
    pub fn dropout(&mut self, a: Var, p: f32, training: bool, rng: &mut Rng64) -> Var {
        if !training || p <= 0.0 {
            return a;
        }
        assert!(p < 1.0, "dropout probability must be < 1");
        let keep = 1.0 - p;
        let mask_data: Vec<f32> = (0..self.value(a).numel())
            .map(|_| if rng.next_f32() < p { 0.0 } else { 1.0 / keep })
            .collect();
        let mask = Tensor::from_vec(self.value(a).dims(), mask_data);
        let value = ew::mul(self.value(a), &mask);
        self.push(
            value,
            vec![a.0],
            Some(Box::new(move |g, _, _, _| vec![Some(ew::mul(g, &mask))])),
        )
    }

    /// Average pooling along `axis` with the given pool size. The axis
    /// extent must be divisible by `pool`.
    pub fn avg_pool_axis(&mut self, a: Var, axis: usize, pool: usize) -> Var {
        let src = self.value(a);
        let mid = src.dim(axis);
        assert!(
            pool > 0 && mid.is_multiple_of(pool),
            "axis extent {mid} not divisible by pool {pool}"
        );
        let outer: usize = src.dims()[..axis].iter().product();
        let inner: usize = src.dims()[axis + 1..].iter().product();
        let out_mid = mid / pool;
        let mut out_dims = src.dims().to_vec();
        out_dims[axis] = out_mid;
        let mut out = vec![0.0f32; outer * out_mid * inner];
        for o in 0..outer {
            for m in 0..out_mid {
                for q in 0..pool {
                    let base = (o * mid + m * pool + q) * inner;
                    let dst = &mut out[(o * out_mid + m) * inner..(o * out_mid + m + 1) * inner];
                    for (d, &s) in dst.iter_mut().zip(&src.data()[base..base + inner]) {
                        *d += s / pool as f32;
                    }
                }
            }
        }
        let value = Tensor::from_vec(&out_dims, out);
        self.push(
            value,
            vec![a.0],
            Some(Box::new(move |g, ps, _, _| {
                let src = ps[0];
                let mid = src.dim(axis);
                let outer: usize = src.dims()[..axis].iter().product();
                let inner: usize = src.dims()[axis + 1..].iter().product();
                let out_mid = mid / pool;
                let mut full = Tensor::zeros(src.dims());
                for o in 0..outer {
                    for m in 0..out_mid {
                        let g_base = (o * out_mid + m) * inner;
                        for q in 0..pool {
                            let dst_base = (o * mid + m * pool + q) * inner;
                            for t in 0..inner {
                                full.data_mut()[dst_base + t] += g.data()[g_base + t] / pool as f32;
                            }
                        }
                    }
                }
                vec![Some(full)]
            })),
        )
    }

    /// Max pooling along `axis` with the given pool size; the winning index
    /// per pool is recorded at forward time for the backward scatter.
    pub fn max_pool_axis(&mut self, a: Var, axis: usize, pool: usize) -> Var {
        let src = self.value(a);
        let mid = src.dim(axis);
        assert!(
            pool > 0 && mid.is_multiple_of(pool),
            "axis extent {mid} not divisible by pool {pool}"
        );
        let outer: usize = src.dims()[..axis].iter().product();
        let inner: usize = src.dims()[axis + 1..].iter().product();
        let out_mid = mid / pool;
        let mut out_dims = src.dims().to_vec();
        out_dims[axis] = out_mid;
        let mut out = vec![f32::NEG_INFINITY; outer * out_mid * inner];
        let mut winners = vec![0usize; outer * out_mid * inner];
        for o in 0..outer {
            for m in 0..out_mid {
                for q in 0..pool {
                    let base = (o * mid + m * pool + q) * inner;
                    for t in 0..inner {
                        let v = src.data()[base + t];
                        let slot = (o * out_mid + m) * inner + t;
                        if v > out[slot] {
                            out[slot] = v;
                            winners[slot] = base + t;
                        }
                    }
                }
            }
        }
        let value = Tensor::from_vec(&out_dims, out);
        self.push(
            value,
            vec![a.0],
            Some(Box::new(move |g, ps, _, _| {
                let mut full = Tensor::zeros(ps[0].dims());
                for (slot, &w) in winners.iter().enumerate() {
                    full.data_mut()[w] += g.data()[slot];
                }
                vec![Some(full)]
            })),
        )
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Runs reverse-mode differentiation from the scalar `loss` node and
    /// returns gradients for every parameter leaf on the tape. Gradients
    /// for parameters used multiple times accumulate.
    ///
    /// # Panics
    /// Panics if `loss` is not a scalar (1-element) node.
    pub fn backward(&self, loss: Var) -> Gradients {
        assert_eq!(
            self.nodes[loss.0].value.numel(),
            1,
            "backward requires a scalar loss"
        );
        let _span = stod_obs::span!("nn/backward");
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Tensor::full(self.nodes[loss.0].value.dims(), 1.0));

        for i in (0..=loss.0).rev() {
            if grads[i].is_none() || !self.nodes[i].requires_grad {
                continue;
            }
            let Some(bw) = &self.nodes[i].backward else {
                continue;
            };
            let g = grads[i].take().expect("checked above");
            let node = &self.nodes[i];
            let parent_vals: Vec<&Tensor> =
                node.parents.iter().map(|&p| &self.nodes[p].value).collect();
            let needs: Vec<bool> = node
                .parents
                .iter()
                .map(|&p| self.nodes[p].requires_grad)
                .collect();
            let pgrads = bw(&g, &parent_vals, &node.value, &needs);
            debug_assert_eq!(pgrads.len(), node.parents.len());
            for (&p, pg) in node.parents.iter().zip(pgrads) {
                let Some(pg) = pg else { continue };
                if !self.nodes[p].requires_grad {
                    continue;
                }
                debug_assert_eq!(
                    pg.dims(),
                    self.nodes[p].value.dims(),
                    "gradient shape mismatch"
                );
                match &mut grads[p] {
                    Some(acc) => {
                        for (a, b) in acc.data_mut().iter_mut().zip(pg.data()) {
                            *a += b;
                        }
                    }
                    slot @ None => *slot = Some(pg),
                }
            }
        }

        // Collect parameter gradients (accumulate duplicates of the same id).
        let max_id = self
            .param_leaves
            .iter()
            .map(|&(_, id)| id.index() + 1)
            .max()
            .unwrap_or(0);
        let mut by_param: Vec<Option<Tensor>> = (0..max_id).map(|_| None).collect();
        for &(node, id) in &self.param_leaves {
            if let Some(g) = &grads[node] {
                match &mut by_param[id.index()] {
                    Some(acc) => {
                        for (a, b) in acc.data_mut().iter_mut().zip(g.data()) {
                            *a += b;
                        }
                    }
                    slot @ None => *slot = Some(g.clone()),
                }
            }
        }
        Gradients { by_param }
    }

    /// Gradient w.r.t. an arbitrary leaf (for gradient checking).
    pub fn backward_wrt(&self, loss: Var, leaves: &[Var]) -> Vec<Option<Tensor>> {
        // Re-run the generic pass but harvest arbitrary node gradients.
        assert_eq!(
            self.nodes[loss.0].value.numel(),
            1,
            "backward requires scalar loss"
        );
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Tensor::full(self.nodes[loss.0].value.dims(), 1.0));
        let keep: std::collections::HashSet<usize> = leaves.iter().map(|v| v.0).collect();
        for i in (0..=loss.0).rev() {
            if grads[i].is_none() || !self.nodes[i].requires_grad {
                continue;
            }
            let Some(bw) = &self.nodes[i].backward else {
                continue;
            };
            let g = if keep.contains(&i) {
                grads[i].clone().expect("checked above")
            } else {
                grads[i].take().expect("checked above")
            };
            let node = &self.nodes[i];
            let parent_vals: Vec<&Tensor> =
                node.parents.iter().map(|&p| &self.nodes[p].value).collect();
            let needs: Vec<bool> = node
                .parents
                .iter()
                .map(|&p| self.nodes[p].requires_grad)
                .collect();
            let pgrads = bw(&g, &parent_vals, &node.value, &needs);
            for (&p, pg) in node.parents.iter().zip(pgrads) {
                let Some(pg) = pg else { continue };
                if !self.nodes[p].requires_grad {
                    continue;
                }
                match &mut grads[p] {
                    Some(acc) => {
                        for (a, b) in acc.data_mut().iter_mut().zip(pg.data()) {
                            *a += b;
                        }
                    }
                    slot @ None => *slot = Some(pg),
                }
            }
        }
        leaves.iter().map(|v| grads[v.0].clone()).collect()
    }
}

/// Transposes the last two axes of a stacked-matrix tensor.
fn transpose_last2(t: &Tensor) -> Tensor {
    let nd = t.ndim();
    tf::transpose(t, nd - 2, nd - 1)
}

/// Sums a batched-matmul gradient back down to a (possibly 2-D broadcast)
/// operand shape.
fn reduce_batched(grad: Tensor, target_dims: &[usize]) -> Tensor {
    if grad.dims() == target_dims {
        return grad;
    }
    // The operand was 2-D and broadcast over the batch: sum leading dims.
    let mut g = grad;
    while g.ndim() > target_dims.len() {
        g = stod_tensor::sum_axis(&g, 0, false);
    }
    assert_eq!(g.dims(), target_dims, "batched gradient reduction failed");
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_values_match_tensor_ops() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]));
        let b = tape.leaf(Tensor::from_vec(&[2, 2], vec![0.5, 0.5, 0.5, 0.5]));
        let c = tape.mul(a, b);
        assert_eq!(tape.value(c).data(), &[0.5, 1.0, 1.5, 2.0]);
        let d = tape.matmul(a, b);
        assert_eq!(tape.value(d).data(), &[1.5, 1.5, 3.5, 3.5]);
    }

    #[test]
    fn simple_chain_gradient() {
        // loss = Σ (2a)² → dloss/da = 8a
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(&[3], vec![1.0, -2.0, 0.5]));
        let b = tape.scale(a, 2.0);
        let sq = tape.mul(b, b);
        let loss = tape.sum_all(sq);
        let g = tape.backward_wrt(loss, &[a]);
        let expect = Tensor::from_vec(&[3], vec![8.0, -16.0, 4.0]);
        assert!(g[0].as_ref().unwrap().approx_eq(&expect, 1e-5));
    }

    #[test]
    fn gradient_accumulates_on_reuse() {
        // loss = Σ (a + a) → grad = 2
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::ones(&[2]));
        let s = tape.add(a, a);
        let loss = tape.sum_all(s);
        let g = tape.backward_wrt(loss, &[a]);
        assert_eq!(g[0].as_ref().unwrap().data(), &[2.0, 2.0]);
    }

    #[test]
    fn constants_block_gradients() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::ones(&[2]));
        let c = tape.constant(Tensor::from_vec(&[2], vec![3.0, 4.0]));
        let m = tape.mul(a, c);
        let loss = tape.sum_all(m);
        let g = tape.backward_wrt(loss, &[a, c]);
        assert_eq!(g[0].as_ref().unwrap().data(), &[3.0, 4.0]);
        assert!(g[1].is_none(), "constants must not receive gradients");
    }

    #[test]
    fn param_gradients_via_store() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::from_vec(&[2], vec![2.0, 3.0]));
        let mut tape = Tape::new();
        let wv = tape.param(&store, w);
        let sq = tape.mul(wv, wv);
        let loss = tape.sum_all(sq);
        let grads = tape.backward(loss);
        assert_eq!(grads.get(w).unwrap().data(), &[4.0, 6.0]);
        assert!((grads.global_norm() - (16.0f32 + 36.0).sqrt()).abs() < 1e-5);
    }

    #[test]
    fn broadcast_add_reduces_gradient() {
        // y = M + row; dL/drow must sum over rows.
        let mut tape = Tape::new();
        let m = tape.leaf(Tensor::ones(&[3, 2]));
        let row = tape.leaf(Tensor::zeros(&[2]));
        let y = tape.add(m, row);
        let loss = tape.sum_all(y);
        let g = tape.backward_wrt(loss, &[m, row]);
        assert_eq!(g[0].as_ref().unwrap().dims(), &[3, 2]);
        assert_eq!(g[1].as_ref().unwrap().data(), &[3.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_nonscalar_panics() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::ones(&[2]));
        tape.backward(a);
    }

    #[test]
    fn dropout_eval_is_identity() {
        let mut tape = Tape::new();
        let mut rng = Rng64::new(1);
        let a = tape.leaf(Tensor::ones(&[4]));
        let d = tape.dropout(a, 0.5, false, &mut rng);
        assert_eq!(d, a);
    }

    #[test]
    fn dropout_train_scales_survivors() {
        let mut tape = Tape::new();
        let mut rng = Rng64::new(1);
        let a = tape.leaf(Tensor::ones(&[1000]));
        let d = tape.dropout(a, 0.5, true, &mut rng);
        let vals = tape.value(d).data();
        assert!(vals.iter().all(|&x| x == 0.0 || x == 2.0));
        let mean = tape.value(d).mean();
        assert!(
            (mean - 1.0).abs() < 0.15,
            "inverted dropout keeps the mean, got {mean}"
        );
    }

    #[test]
    fn avg_pool_forward_and_backward() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(&[1, 4], vec![1.0, 3.0, 5.0, 7.0]));
        let p = tape.avg_pool_axis(a, 1, 2);
        assert_eq!(tape.value(p).data(), &[2.0, 6.0]);
        let loss = tape.sum_all(p);
        let g = tape.backward_wrt(loss, &[a]);
        assert_eq!(g[0].as_ref().unwrap().data(), &[0.5, 0.5, 0.5, 0.5]);
    }

    #[test]
    fn max_pool_routes_gradient_to_winner() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::from_vec(&[1, 4], vec![1.0, 3.0, 7.0, 5.0]));
        let p = tape.max_pool_axis(a, 1, 2);
        assert_eq!(tape.value(p).data(), &[3.0, 7.0]);
        let loss = tape.sum_all(p);
        let g = tape.backward_wrt(loss, &[a]);
        assert_eq!(g[0].as_ref().unwrap().data(), &[0.0, 1.0, 1.0, 0.0]);
    }

    #[test]
    fn masked_sq_err_ignores_masked_cells() {
        let mut tape = Tape::new();
        let pred = tape.leaf(Tensor::from_vec(&[2], vec![1.0, 5.0]));
        let target = Tensor::from_vec(&[2], vec![0.0, 0.0]);
        let mask = Tensor::from_vec(&[2], vec![1.0, 0.0]);
        let loss = tape.masked_sq_err(pred, &target, &mask);
        assert_eq!(tape.value(loss).item(), 1.0);
        let g = tape.backward_wrt(loss, &[pred]);
        assert_eq!(g[0].as_ref().unwrap().data(), &[2.0, 0.0]);
    }
}
