//! Optimizers and learning-rate scheduling.
//!
//! The paper trains with Adam at an initial learning rate of 0.001, decayed
//! by a factor 0.8 every 5 epochs ([`StepDecay`]), dropout 0.2 and implicit
//! gradient clipping; all of that is provided here.

use crate::params::ParamStore;
use crate::tape::Gradients;
use stod_tensor::Tensor;

/// Clips gradients to a maximum global L2 norm; returns the pre-clip norm.
pub fn clip_global_norm(grads: &mut Gradients, max_norm: f32) -> f32 {
    let norm = grads.global_norm();
    if norm > max_norm && norm > 0.0 {
        grads.scale(max_norm / norm);
    }
    norm
}

/// Plain stochastic gradient descent (used by tests as a reference).
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }

    /// Applies one descent step to every parameter with a gradient.
    pub fn step(&mut self, store: &mut ParamStore, grads: &Gradients) {
        for (id, g) in grads.iter() {
            let p = store.get_mut(id);
            for (w, &gw) in p.data_mut().iter_mut().zip(g.data()) {
                *w -= self.lr * gw;
            }
        }
    }
}

/// Adam optimizer (Kingma & Ba) with optional decoupled weight decay.
pub struct Adam {
    /// Current learning rate (mutable so schedules can adjust it).
    pub lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Option<Tensor>>,
    v: Vec<Option<Tensor>>,
}

impl Adam {
    /// Creates an Adam optimizer with the standard β = (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Adds decoupled (AdamW-style) weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one Adam step to every parameter with a gradient.
    pub fn step(&mut self, store: &mut ParamStore, grads: &Gradients) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (id, g) in grads.iter() {
            let idx = id.index();
            if self.m.len() <= idx {
                self.m.resize_with(idx + 1, || None);
                self.v.resize_with(idx + 1, || None);
            }
            let p = store.get_mut(id);
            let m = self.m[idx].get_or_insert_with(|| Tensor::zeros(p.dims()));
            let v = self.v[idx].get_or_insert_with(|| Tensor::zeros(p.dims()));
            debug_assert_eq!(m.dims(), p.dims(), "Adam state shape drift");
            for (((w, &gw), ms), vs) in p
                .data_mut()
                .iter_mut()
                .zip(g.data())
                .zip(m.data_mut())
                .zip(v.data_mut())
            {
                *ms = self.beta1 * *ms + (1.0 - self.beta1) * gw;
                *vs = self.beta2 * *vs + (1.0 - self.beta2) * gw * gw;
                let m_hat = *ms / bc1;
                let v_hat = *vs / bc2;
                let mut upd = self.lr * m_hat / (v_hat.sqrt() + self.eps);
                if self.weight_decay > 0.0 {
                    upd += self.lr * self.weight_decay * *w;
                }
                *w -= upd;
            }
        }
    }
}

/// Step-decay learning-rate schedule: `lr = lr₀ · decayᵏ` where `k` is the
/// number of completed periods of `every` epochs.
///
/// The paper uses `lr₀ = 0.001`, `decay = 0.8`, `every = 5`.
#[derive(Debug, Clone, Copy)]
pub struct StepDecay {
    /// Initial learning rate.
    pub initial: f32,
    /// Multiplicative decay applied once per period.
    pub decay: f32,
    /// Period length in epochs.
    pub every: usize,
}

impl StepDecay {
    /// The paper's schedule (0.001, ×0.8 every 5 epochs).
    pub fn paper() -> Self {
        StepDecay {
            initial: 1e-3,
            decay: 0.8,
            every: 5,
        }
    }

    /// Learning rate to use during `epoch` (0-based).
    pub fn lr_at(&self, epoch: usize) -> f32 {
        self.initial * self.decay.powi((epoch / self.every) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;
    use stod_tensor::rng::Rng64;

    /// Minimizes ‖w − target‖² and expects convergence.
    fn converges_with(optim: &mut dyn FnMut(&mut ParamStore, &Gradients)) -> f32 {
        let mut store = ParamStore::new();
        let mut rng = Rng64::new(0);
        let w = store.register("w", Tensor::randn(&[4], 1.0, &mut rng));
        let target = Tensor::from_vec(&[4], vec![1.0, -2.0, 3.0, 0.5]);
        let mask = Tensor::ones(&[4]);
        for _ in 0..400 {
            let mut tape = Tape::new();
            let wv = tape.param(&store, w);
            let loss = tape.masked_sq_err(wv, &target, &mask);
            let grads = tape.backward(loss);
            optim(&mut store, &grads);
        }
        store.get(w).max_abs_diff(&target)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut sgd = Sgd::new(0.05);
        let err = converges_with(&mut |s, g| sgd.step(s, g));
        assert!(err < 1e-3, "SGD residual {err}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::new(0.05);
        let err = converges_with(&mut |s, g| adam.step(s, g));
        assert!(err < 1e-2, "Adam residual {err}");
    }

    #[test]
    fn adam_weight_decay_shrinks_unused_weights() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::ones(&[2]));
        let mut adam = Adam::new(0.1).with_weight_decay(0.5);
        // Zero gradient except decay: emulate by supplying explicit zero grads.
        for _ in 0..100 {
            let mut tape = Tape::new();
            let wv = tape.param(&store, w);
            let z = tape.scale(wv, 0.0);
            let loss = tape.sum_all(z);
            let grads = tape.backward(loss);
            adam.step(&mut store, &grads);
        }
        assert!(store.get(w).max() < 0.1, "weight decay must shrink weights");
    }

    #[test]
    fn clipping_preserves_direction() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::from_vec(&[2], vec![10.0, 0.0]));
        let mut tape = Tape::new();
        let wv = tape.param(&store, w);
        let sq = tape.mul(wv, wv);
        let loss = tape.sum_all(sq);
        let mut grads = tape.backward(loss);
        let pre = clip_global_norm(&mut grads, 1.0);
        assert!(pre > 1.0);
        assert!((grads.global_norm() - 1.0).abs() < 1e-5);
        let g = grads.get(w).unwrap();
        assert!(g.data()[0] > 0.0 && g.data()[1].abs() < 1e-7);
    }

    #[test]
    fn step_decay_schedule() {
        let s = StepDecay::paper();
        assert!((s.lr_at(0) - 1e-3).abs() < 1e-9);
        assert!((s.lr_at(4) - 1e-3).abs() < 1e-9);
        assert!((s.lr_at(5) - 8e-4).abs() < 1e-9);
        assert!((s.lr_at(10) - 6.4e-4).abs() < 1e-9);
    }
}
