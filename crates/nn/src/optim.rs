//! Optimizers and learning-rate scheduling.
//!
//! The paper trains with Adam at an initial learning rate of 0.001, decayed
//! by a factor 0.8 every 5 epochs ([`StepDecay`]), dropout 0.2 and implicit
//! gradient clipping; all of that is provided here.

use crate::params::{ParamStore, StoreError};
use crate::tape::Gradients;
use stod_tensor::Tensor;

/// Outcome of [`clip_global_norm`].
///
/// Clipping compares the norm against the threshold with `>`, and a NaN norm
/// fails every comparison — so without an explicit status a single NaN
/// gradient element would silently disable clipping *and* then poison the
/// optimizer state on the next step. Callers must branch on `NonFinite`
/// (skip the batch, roll back, or halt) instead of stepping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClipStatus {
    /// All gradient elements were finite; `clipped` says whether the
    /// rescale was applied.
    Finite {
        /// Global L2 norm before clipping.
        pre_norm: f32,
        /// Whether `pre_norm > max_norm` triggered a rescale.
        clipped: bool,
    },
    /// At least one gradient element was NaN or ±Inf. The gradients are
    /// left untouched; the caller must not apply them.
    NonFinite,
}

impl ClipStatus {
    /// The pre-clip norm when finite, `None` otherwise.
    pub fn pre_norm(&self) -> Option<f32> {
        match self {
            ClipStatus::Finite { pre_norm, .. } => Some(*pre_norm),
            ClipStatus::NonFinite => None,
        }
    }

    /// True when every gradient element was finite.
    pub fn is_finite(&self) -> bool {
        matches!(self, ClipStatus::Finite { .. })
    }
}

/// Clips gradients to a maximum global L2 norm.
///
/// The global norm is finite iff every gradient element is finite (squares
/// are accumulated in `f64`, which cannot overflow for any finite `f32`
/// inputs), so the single norm computation doubles as the non-finite
/// detector. On a non-finite norm the gradients are returned untouched and
/// [`ClipStatus::NonFinite`] is reported.
pub fn clip_global_norm(grads: &mut Gradients, max_norm: f32) -> ClipStatus {
    let norm = grads.global_norm();
    if !norm.is_finite() {
        return ClipStatus::NonFinite;
    }
    let clipped = norm > max_norm && norm > 0.0;
    if clipped {
        grads.scale(max_norm / norm);
    }
    ClipStatus::Finite {
        pre_norm: norm,
        clipped,
    }
}

/// Plain stochastic gradient descent (used by tests as a reference).
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Creates an SGD optimizer.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }

    /// Applies one descent step to every parameter with a gradient.
    pub fn step(&mut self, store: &mut ParamStore, grads: &Gradients) {
        for (id, g) in grads.iter() {
            let p = store.get_mut(id);
            for (w, &gw) in p.data_mut().iter_mut().zip(g.data()) {
                *w -= self.lr * gw;
            }
        }
    }
}

/// Adam optimizer (Kingma & Ba) with optional decoupled weight decay.
pub struct Adam {
    /// Current learning rate (mutable so schedules can adjust it).
    pub lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Option<Tensor>>,
    v: Vec<Option<Tensor>>,
}

impl Adam {
    /// Creates an Adam optimizer with the standard β = (0.9, 0.999).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Adds decoupled (AdamW-style) weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Serializes the full optimizer state (hyperparameters, step count,
    /// and both moment vectors) for crash-safe checkpointing. The format is
    /// an internal fragment embedded in `TrainCheckpoint`; it carries no
    /// magic/checksum of its own because the enclosing checkpoint does.
    pub fn state_to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(&self.t.to_le_bytes());
        for h in [self.lr, self.beta1, self.beta2, self.eps, self.weight_decay] {
            buf.extend_from_slice(&h.to_le_bytes());
        }
        debug_assert_eq!(self.m.len(), self.v.len());
        buf.extend_from_slice(&(self.m.len() as u32).to_le_bytes());
        for slots in [&self.m, &self.v] {
            for slot in slots {
                write_opt_tensor(&mut buf, slot.as_ref());
            }
        }
        buf
    }

    /// Restores state previously captured by [`Adam::state_to_bytes`],
    /// resuming the moment estimates and bias-correction step count bitwise.
    pub fn restore_state(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        let mut cur = Cursor { bytes, pos: 0 };
        self.t = cur.u64()?;
        self.lr = cur.f32()?;
        self.beta1 = cur.f32()?;
        self.beta2 = cur.f32()?;
        self.eps = cur.f32()?;
        self.weight_decay = cur.f32()?;
        let n = cur.u32()? as usize;
        if n > 1 << 20 {
            return Err(StoreError::Malformed(format!(
                "optimizer slot count {n} implausible"
            )));
        }
        let mut m = Vec::with_capacity(n);
        for _ in 0..n {
            m.push(read_opt_tensor(&mut cur)?);
        }
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(read_opt_tensor(&mut cur)?);
        }
        if cur.pos != bytes.len() {
            return Err(StoreError::Malformed(format!(
                "{} trailing bytes after optimizer state",
                bytes.len() - cur.pos
            )));
        }
        self.m = m;
        self.v = v;
        Ok(())
    }

    /// Applies one Adam step to every parameter with a gradient.
    pub fn step(&mut self, store: &mut ParamStore, grads: &Gradients) {
        let _span = stod_obs::span!("nn/adam_step");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (id, g) in grads.iter() {
            let idx = id.index();
            if self.m.len() <= idx {
                self.m.resize_with(idx + 1, || None);
                self.v.resize_with(idx + 1, || None);
            }
            let p = store.get_mut(id);
            let m = self.m[idx].get_or_insert_with(|| Tensor::zeros(p.dims()));
            let v = self.v[idx].get_or_insert_with(|| Tensor::zeros(p.dims()));
            debug_assert_eq!(m.dims(), p.dims(), "Adam state shape drift");
            for (((w, &gw), ms), vs) in p
                .data_mut()
                .iter_mut()
                .zip(g.data())
                .zip(m.data_mut())
                .zip(v.data_mut())
            {
                *ms = self.beta1 * *ms + (1.0 - self.beta1) * gw;
                *vs = self.beta2 * *vs + (1.0 - self.beta2) * gw * gw;
                let m_hat = *ms / bc1;
                let v_hat = *vs / bc2;
                let mut upd = self.lr * m_hat / (v_hat.sqrt() + self.eps);
                if self.weight_decay > 0.0 {
                    upd += self.lr * self.weight_decay * *w;
                }
                *w -= upd;
            }
        }
    }
}

/// Byte-level cursor shared by the optimizer-state readers.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], StoreError> {
        if self.bytes.len() - self.pos < n {
            return Err(StoreError::Malformed(format!(
                "optimizer state truncated at byte {}",
                self.pos
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f32(&mut self) -> Result<f32, StoreError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
}

fn write_opt_tensor(buf: &mut Vec<u8>, t: Option<&Tensor>) {
    match t {
        None => buf.push(0),
        Some(t) => {
            buf.push(1);
            buf.extend_from_slice(&(t.dims().len() as u32).to_le_bytes());
            for &d in t.dims() {
                buf.extend_from_slice(&(d as u64).to_le_bytes());
            }
            for &x in t.data() {
                buf.extend_from_slice(&x.to_le_bytes());
            }
        }
    }
}

fn read_opt_tensor(cur: &mut Cursor<'_>) -> Result<Option<Tensor>, StoreError> {
    match cur.u8()? {
        0 => Ok(None),
        1 => {
            let rank = cur.u32()? as usize;
            if rank > 8 {
                return Err(StoreError::Malformed(format!("tensor rank {rank}")));
            }
            let mut dims = Vec::with_capacity(rank);
            let mut len = 1usize;
            for _ in 0..rank {
                let d = cur.u64()? as usize;
                len = len
                    .checked_mul(d)
                    .ok_or_else(|| StoreError::Malformed("tensor dims overflow".into()))?;
                dims.push(d);
            }
            if len > 1 << 28 {
                return Err(StoreError::Malformed(format!("tensor len {len}")));
            }
            let mut data = Vec::with_capacity(len);
            for _ in 0..len {
                data.push(cur.f32()?);
            }
            Ok(Some(Tensor::from_vec(&dims, data)))
        }
        k => Err(StoreError::Malformed(format!("bad tensor slot flag {k}"))),
    }
}

/// Step-decay learning-rate schedule: `lr = lr₀ · decayᵏ` where `k` is the
/// number of completed periods of `every` epochs.
///
/// The paper uses `lr₀ = 0.001`, `decay = 0.8`, `every = 5`.
#[derive(Debug, Clone, Copy)]
pub struct StepDecay {
    /// Initial learning rate.
    pub initial: f32,
    /// Multiplicative decay applied once per period.
    pub decay: f32,
    /// Period length in epochs.
    pub every: usize,
}

impl StepDecay {
    /// The paper's schedule (0.001, ×0.8 every 5 epochs).
    pub fn paper() -> Self {
        StepDecay {
            initial: 1e-3,
            decay: 0.8,
            every: 5,
        }
    }

    /// Learning rate to use during `epoch` (0-based).
    pub fn lr_at(&self, epoch: usize) -> f32 {
        self.initial * self.decay.powi((epoch / self.every) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;
    use stod_tensor::rng::Rng64;

    /// Minimizes ‖w − target‖² and expects convergence.
    fn converges_with(optim: &mut dyn FnMut(&mut ParamStore, &Gradients)) -> f32 {
        let mut store = ParamStore::new();
        let mut rng = Rng64::new(0);
        let w = store.register("w", Tensor::randn(&[4], 1.0, &mut rng));
        let target = Tensor::from_vec(&[4], vec![1.0, -2.0, 3.0, 0.5]);
        let mask = Tensor::ones(&[4]);
        for _ in 0..400 {
            let mut tape = Tape::new();
            let wv = tape.param(&store, w);
            let loss = tape.masked_sq_err(wv, &target, &mask);
            let grads = tape.backward(loss);
            optim(&mut store, &grads);
        }
        store.get(w).max_abs_diff(&target)
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut sgd = Sgd::new(0.05);
        let err = converges_with(&mut |s, g| sgd.step(s, g));
        assert!(err < 1e-3, "SGD residual {err}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut adam = Adam::new(0.05);
        let err = converges_with(&mut |s, g| adam.step(s, g));
        assert!(err < 1e-2, "Adam residual {err}");
    }

    #[test]
    fn adam_weight_decay_shrinks_unused_weights() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::ones(&[2]));
        let mut adam = Adam::new(0.1).with_weight_decay(0.5);
        // Zero gradient except decay: emulate by supplying explicit zero grads.
        for _ in 0..100 {
            let mut tape = Tape::new();
            let wv = tape.param(&store, w);
            let z = tape.scale(wv, 0.0);
            let loss = tape.sum_all(z);
            let grads = tape.backward(loss);
            adam.step(&mut store, &grads);
        }
        assert!(store.get(w).max() < 0.1, "weight decay must shrink weights");
    }

    #[test]
    fn clipping_preserves_direction() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::from_vec(&[2], vec![10.0, 0.0]));
        let mut tape = Tape::new();
        let wv = tape.param(&store, w);
        let sq = tape.mul(wv, wv);
        let loss = tape.sum_all(sq);
        let mut grads = tape.backward(loss);
        let status = clip_global_norm(&mut grads, 1.0);
        match status {
            ClipStatus::Finite { pre_norm, clipped } => {
                assert!(pre_norm > 1.0);
                assert!(clipped);
            }
            ClipStatus::NonFinite => panic!("finite gradients misclassified"),
        }
        assert!((grads.global_norm() - 1.0).abs() < 1e-5);
        let g = grads.get(w).unwrap();
        assert!(g.data()[0] > 0.0 && g.data()[1].abs() < 1e-7);
    }

    /// Regression: a NaN gradient makes `norm > max_norm` false, so the old
    /// `clip_global_norm` silently skipped clipping and let callers step on
    /// poisoned gradients. The status must now flag it and leave the
    /// gradients untouched for diagnostics.
    #[test]
    fn clipping_flags_nonfinite_gradients() {
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let mut store = ParamStore::new();
            let w = store.register("w", Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]));
            let mut tape = Tape::new();
            let wv = tape.param(&store, w);
            let sq = tape.mul(wv, wv);
            let loss = tape.sum_all(sq);
            let mut grads = tape.backward(loss);
            grads.get_mut(w).unwrap().data_mut()[1] = bad;
            let before: Vec<u32> = grads
                .get(w)
                .unwrap()
                .data()
                .iter()
                .map(|x| x.to_bits())
                .collect();
            assert_eq!(clip_global_norm(&mut grads, 1.0), ClipStatus::NonFinite);
            let after: Vec<u32> = grads
                .get(w)
                .unwrap()
                .data()
                .iter()
                .map(|x| x.to_bits())
                .collect();
            assert_eq!(before, after, "non-finite gradients must be left untouched");
        }
    }

    #[test]
    fn clipping_below_threshold_reports_unclipped() {
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::from_vec(&[2], vec![0.01, 0.0]));
        let mut tape = Tape::new();
        let wv = tape.param(&store, w);
        let sq = tape.mul(wv, wv);
        let loss = tape.sum_all(sq);
        let mut grads = tape.backward(loss);
        match clip_global_norm(&mut grads, 1.0) {
            ClipStatus::Finite { clipped, .. } => assert!(!clipped),
            ClipStatus::NonFinite => panic!("finite gradients misclassified"),
        }
    }

    /// Adam state must roundtrip bitwise: resuming from a checkpoint and
    /// continuing must match the uninterrupted run exactly.
    #[test]
    fn adam_state_roundtrip_is_bitwise() {
        let mut store = ParamStore::new();
        let mut rng = Rng64::new(7);
        let w = store.register("w", Tensor::randn(&[5], 1.0, &mut rng));
        let target = Tensor::from_vec(&[5], vec![0.5, -1.0, 2.0, 0.0, -0.5]);
        let mask = Tensor::ones(&[5]);
        let mut adam = Adam::new(0.01).with_weight_decay(0.1);
        let step = |store: &mut ParamStore, adam: &mut Adam| {
            let mut tape = Tape::new();
            let wv = tape.param(store, w);
            let loss = tape.masked_sq_err(wv, &target, &mask);
            let grads = tape.backward(loss);
            adam.step(store, &grads);
        };
        for _ in 0..10 {
            step(&mut store, &mut adam);
        }
        let snapshot = adam.state_to_bytes();
        let weights_at_ckpt: Vec<u32> = store.get(w).data().iter().map(|x| x.to_bits()).collect();

        // Continue the original run for 10 more steps.
        for _ in 0..10 {
            step(&mut store, &mut adam);
        }
        let final_direct: Vec<u32> = store.get(w).data().iter().map(|x| x.to_bits()).collect();

        // Resume a fresh optimizer from the snapshot and replay.
        let mut store2 = ParamStore::new();
        let data: Vec<f32> = weights_at_ckpt.iter().map(|&b| f32::from_bits(b)).collect();
        let w2 = store2.register("w", Tensor::from_vec(&[5], data));
        assert_eq!(w2, w);
        let mut adam2 = Adam::new(999.0); // hyperparameters overwritten by restore
        adam2.restore_state(&snapshot).unwrap();
        assert_eq!(adam2.steps(), 10);
        for _ in 0..10 {
            step(&mut store2, &mut adam2);
        }
        let final_resumed: Vec<u32> = store2.get(w).data().iter().map(|x| x.to_bits()).collect();
        assert_eq!(
            final_direct, final_resumed,
            "resume must be bitwise identical"
        );
    }

    #[test]
    fn adam_state_rejects_truncation_and_garbage() {
        let mut adam = Adam::new(0.01);
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::ones(&[3]));
        let mut tape = Tape::new();
        let wv = tape.param(&store, w);
        let loss = tape.sum_all(wv);
        let grads = tape.backward(loss);
        adam.step(&mut store, &grads);
        let bytes = adam.state_to_bytes();
        let mut fresh = Adam::new(0.01);
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                fresh.restore_state(&bytes[..cut]).is_err(),
                "truncation at {cut} must be rejected"
            );
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(fresh.restore_state(&padded).is_err());
        // And the intact state still restores after the failed attempts.
        fresh.restore_state(&bytes).unwrap();
        assert_eq!(fresh.steps(), 1);
    }

    #[test]
    fn step_decay_schedule() {
        let s = StepDecay::paper();
        assert!((s.lr_at(0) - 1e-3).abs() < 1e-9);
        assert!((s.lr_at(4) - 1e-3).abs() < 1e-9);
        assert!((s.lr_at(5) - 8e-4).abs() < 1e-9);
        assert!((s.lr_at(10) - 6.4e-4).abs() < 1e-9);
    }
}
