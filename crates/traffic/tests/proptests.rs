//! Property-based tests for the traffic substrate: histogram validity,
//! travel-time arithmetic, OD-tensor invariants and window bookkeeping.

use proptest::prelude::*;
use stod_traffic::{CityModel, HistogramSpec, OdDataset, SimConfig, Trip};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any non-empty speed sample yields a valid probability histogram.
    #[test]
    fn histograms_are_distributions(speeds in proptest::collection::vec(0.0f64..30.0, 1..50)) {
        let spec = HistogramSpec::paper();
        let h = spec.build(&speeds).expect("non-empty");
        prop_assert_eq!(h.len(), 7);
        prop_assert!(h.iter().all(|&p| (0.0..=1.0).contains(&p)));
        prop_assert!((h.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    /// The bucket index is monotone in speed and consistent with bounds.
    #[test]
    fn bucket_of_consistent_with_bounds(v in 0.0f64..40.0) {
        let spec = HistogramSpec::paper();
        let k = spec.bucket_of(v);
        let (lo, hi) = spec.bounds(k);
        prop_assert!(v >= lo || k == 0);
        prop_assert!(v < hi || hi.is_infinite());
    }

    /// Travel-time quantiles are monotone in the confidence level.
    #[test]
    fn travel_time_quantile_monotone(
        raw in proptest::collection::vec(0.01f32..1.0, 7),
        dist in 0.5f64..20.0,
        q1 in 0.05f64..0.95,
        q2 in 0.05f64..0.95,
    ) {
        let spec = HistogramSpec::paper();
        let s: f32 = raw.iter().sum();
        let hist: Vec<f32> = raw.iter().map(|x| x / s).collect();
        let (lo_q, hi_q) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let t_lo = spec.travel_time_quantile(&hist, dist, lo_q);
        let t_hi = spec.travel_time_quantile(&hist, dist, hi_q);
        prop_assert!(t_lo <= t_hi, "quantile not monotone: {t_lo} > {t_hi}");
    }

    /// The mean speed of any histogram lies within the bucket-midpoint range.
    #[test]
    fn mean_speed_within_support(raw in proptest::collection::vec(0.0f32..1.0, 7)) {
        let spec = HistogramSpec::paper();
        let s: f32 = raw.iter().sum();
        prop_assume!(s > 0.01);
        let hist: Vec<f32> = raw.iter().map(|x| x / s).collect();
        let m = spec.mean_speed(&hist);
        prop_assert!(m >= spec.midpoint(0) - 1e-6);
        prop_assert!(m <= spec.midpoint(6) + 1e-6);
    }

    /// OD tensors built from arbitrary trip sets satisfy their invariants.
    #[test]
    fn od_tensor_invariants_hold(
        trips_raw in proptest::collection::vec((0usize..5, 0usize..5, 0.1f64..25.0), 0..60)
    ) {
        let spec = HistogramSpec::paper();
        let trips: Vec<Trip> = trips_raw
            .into_iter()
            .map(|(o, d, v)| Trip {
                origin: o,
                dest: d,
                interval: 0,
                distance_km: 1.0,
                speed_ms: v,
            })
            .collect();
        let t = stod_traffic::OdTensor::from_trips(5, &spec, &trips);
        prop_assert!(t.check_invariants().is_ok());
        // Every pair with at least one trip must be observed.
        for tr in &trips {
            prop_assert!(t.observed(tr.origin, tr.dest));
        }
    }

    /// Window bookkeeping: inputs and targets are contiguous and disjoint.
    #[test]
    fn windows_are_contiguous_and_disjoint(s in 1usize..6, h in 1usize..4) {
        let cfg = SimConfig {
            num_days: 1,
            intervals_per_day: 16,
            trips_per_interval: 10.0,
            ..SimConfig::small(3)
        };
        let ds = OdDataset::generate(CityModel::small(4), &cfg);
        for w in ds.windows(s, h) {
            let ins = w.input_indices();
            let outs = w.target_indices();
            prop_assert_eq!(ins.len(), s);
            prop_assert_eq!(outs.len(), h);
            prop_assert_eq!(*ins.last().unwrap() + 1, outs[0]);
            for pair in ins.windows(2) {
                prop_assert_eq!(pair[0] + 1, pair[1]);
            }
            prop_assert!(*outs.last().unwrap() < ds.num_intervals());
        }
    }

    /// Chronological splits never leak test targets into training.
    #[test]
    fn splits_never_leak(train_frac in 0.2f64..0.7, val_frac in 0.0f64..0.2) {
        let cfg = SimConfig {
            num_days: 2,
            intervals_per_day: 12,
            trips_per_interval: 10.0,
            ..SimConfig::small(4)
        };
        let ds = OdDataset::generate(CityModel::small(4), &cfg);
        let ws = ds.windows(2, 2);
        let split = ds.split(&ws, train_frac, val_frac);
        let train_max = split.train.iter().map(|w| w.t_end + w.h).max();
        let test_min = split.test.iter().map(|w| w.t_end + w.h).min();
        if let (Some(a), Some(b)) = (train_max, test_min) {
            prop_assert!(a < b, "training target {a} ≥ test target {b}");
        }
        prop_assert_eq!(
            split.train.len() + split.val.len() + split.test.len(),
            ws.len()
        );
    }
}
