//! Sparseness and coverage statistics — the Figure 7 analysis ("Sparseness
//! of Original and Preprocessed Data") and the data-share bars of
//! Figures 8–10.

use crate::dataset::OdDataset;

/// Summary of a dataset's sparseness.
#[derive(Debug, Clone, PartialEq)]
pub struct SparsenessReport {
    /// Fraction of OD pairs observed at least once anywhere in the data
    /// (the paper's "65 % of all taxizone pairs" number for NYC).
    pub overall_pair_coverage: f64,
    /// Mean per-interval cell coverage (the much sparser 15-minute view).
    pub mean_interval_coverage: f64,
    /// Minimum per-interval coverage.
    pub min_interval_coverage: f64,
    /// Maximum per-interval coverage.
    pub max_interval_coverage: f64,
    /// Total observed (pair, interval) cells.
    pub observed_cells: usize,
    /// Total (pair, interval) cells.
    pub total_cells: usize,
}

/// Computes the sparseness report for a dataset.
pub fn sparseness(ds: &OdDataset) -> SparsenessReport {
    let n = ds.num_regions();
    let mut ever = vec![false; n * n];
    let mut observed_cells = 0usize;
    let mut min_cov = f64::MAX;
    let mut max_cov = f64::MIN;
    let mut cov_sum = 0.0f64;
    for t in &ds.tensors {
        let cov = t.coverage();
        min_cov = min_cov.min(cov);
        max_cov = max_cov.max(cov);
        cov_sum += cov;
        observed_cells += t.num_observed();
        for o in 0..n {
            for d in 0..n {
                if t.observed(o, d) {
                    ever[o * n + d] = true;
                }
            }
        }
    }
    let intervals = ds.num_intervals().max(1);
    SparsenessReport {
        overall_pair_coverage: ever.iter().filter(|&&x| x).count() as f64 / (n * n) as f64,
        mean_interval_coverage: cov_sum / intervals as f64,
        min_interval_coverage: if ds.tensors.is_empty() { 0.0 } else { min_cov },
        max_interval_coverage: if ds.tensors.is_empty() { 0.0 } else { max_cov },
        observed_cells,
        total_cells: n * n * ds.num_intervals(),
    }
}

/// Share of observed cells per 3-hour time-of-day bin (the bars of
/// Figures 8–10). Returns 8 fractions summing to 1 (or all zero).
pub fn data_share_by_time_of_day(ds: &OdDataset) -> Vec<f64> {
    let mut counts = vec![0usize; 8];
    let per_bin = (ds.intervals_per_day / 8).max(1);
    for (t, tensor) in ds.tensors.iter().enumerate() {
        let bin = (ds.interval_of_day(t) / per_bin).min(7);
        counts[bin] += tensor.num_observed();
    }
    let total: usize = counts.iter().sum();
    counts
        .into_iter()
        .map(|c| {
            if total == 0 {
                0.0
            } else {
                c as f64 / total as f64
            }
        })
        .collect()
}

/// Share of observed cells per 0.5 km OD-distance group, up to 3 km
/// (6 groups; farther pairs are dropped like in Figures 11–13).
pub fn data_share_by_distance(ds: &OdDataset) -> Vec<f64> {
    let n = ds.num_regions();
    let mut counts = vec![0usize; 6];
    for tensor in &ds.tensors {
        for o in 0..n {
            for d in 0..n {
                if !tensor.observed(o, d) {
                    continue;
                }
                let dist = ds.city.distance_km(o, d);
                if dist < 3.0 {
                    counts[(dist / 0.5) as usize] += 1;
                }
            }
        }
    }
    let total: usize = counts.iter().sum();
    counts
        .into_iter()
        .map(|c| {
            if total == 0 {
                0.0
            } else {
                c as f64 / total as f64
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::CityModel;
    use crate::dataset::SimConfig;

    fn ds() -> OdDataset {
        let cfg = SimConfig {
            num_days: 2,
            intervals_per_day: 16,
            trips_per_interval: 100.0,
            ..SimConfig::small(11)
        };
        OdDataset::generate(CityModel::small(8), &cfg)
    }

    #[test]
    fn report_internally_consistent() {
        let d = ds();
        let r = sparseness(&d);
        assert!(r.overall_pair_coverage >= r.mean_interval_coverage);
        assert!(r.min_interval_coverage <= r.mean_interval_coverage);
        assert!(r.mean_interval_coverage <= r.max_interval_coverage);
        assert_eq!(r.total_cells, 8 * 8 * 32);
        assert!(r.observed_cells <= r.total_cells);
        assert!(
            (r.observed_cells as f64 / r.total_cells as f64 - r.mean_interval_coverage).abs()
                < 1e-9
        );
    }

    #[test]
    fn interval_view_sparser_than_overall() {
        // The paper's key observation: per-interval coverage is far below
        // whole-dataset pair coverage.
        let r = sparseness(&ds());
        assert!(r.mean_interval_coverage < r.overall_pair_coverage);
    }

    #[test]
    fn time_of_day_shares_sum_to_one() {
        let shares = data_share_by_time_of_day(&ds());
        assert_eq!(shares.len(), 8);
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Rush-hour bins should dominate the night bins.
        assert!(shares[2] + shares[6] > shares[0] + shares[1]);
    }

    #[test]
    fn distance_shares_sum_to_one() {
        let shares = data_share_by_distance(&ds());
        assert_eq!(shares.len(), 6);
        let sum: f64 = shares.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9 || sum == 0.0);
    }

    #[test]
    fn empty_dataset_degenerates_gracefully() {
        let cfg = SimConfig {
            num_days: 1,
            intervals_per_day: 4,
            trips_per_interval: 0.0,
            ..SimConfig::small(1)
        };
        let d = OdDataset::generate(CityModel::small(4), &cfg);
        let r = sparseness(&d);
        assert_eq!(r.observed_cells, 0);
        assert_eq!(r.overall_pair_coverage, 0.0);
        assert!(data_share_by_time_of_day(&d).iter().all(|&x| x == 0.0));
    }
}
