//! Regime-change (drift) scenario generation.
//!
//! The serving stack's continual-adaptation loop exists because live
//! traffic does not stay on the distribution the incumbent was trained on
//! (the fine-grained ridesharing OD work in PAPERS.md shows surge and
//! closure as exactly the regimes where static models lose). This module
//! generates datasets whose sampling process *changes* at a configured
//! onset interval, in three scenario colors:
//!
//! * [`DriftKind::RushHourShift`] — the whole daily regime slides by a
//!   fixed number of intervals: both the demand profile and the congestion
//!   conditions behave as if the clock were offset, so every OD pair's
//!   speed distribution changes. The global drift the adaptation gate
//!   trains against.
//! * [`DriftKind::RoadClosure`] — trips touching one region slow to a
//!   fraction of their sampled speed and demand through it thins out: a
//!   localized, severe distribution shift.
//! * [`DriftKind::DemandSurge`] — demand to/from one region multiplies,
//!   and the surge's induced congestion shaves its trip speeds: a
//!   localized volume + mild speed shift.
//!
//! Pre-onset intervals reproduce [`OdDataset::generate_with_trips`]
//! **bitwise** (same per-interval forked RNG streams, same draw order),
//! so a drift dataset is a faithful continuation of the stationary one —
//! and [`DriftKind::Stationary`] reproduces it in full, which pins the
//! generator against the replay path in tests. Tensors and trips always
//! come from the same pass: `OdTensor::from_trips` on `trips[t]` rebuilds
//! `tensors[t]` bitwise, keeping the fleet's live-ingest replay property.

use crate::city::CityModel;
use crate::dataset::{OdDataset, SimConfig};
use crate::demand::{DemandModel, DemandParams};
use crate::od_tensor::OdTensor;
use crate::speed::SpeedField;
use crate::trip::Trip;
use stod_tensor::rng::Rng64;

/// Which regime change a drift scenario applies after its onset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DriftKind {
    /// No change: bitwise identical to [`OdDataset::generate_with_trips`].
    Stationary,
    /// The daily demand *and* congestion regime slides forward by
    /// `shift_intervals`: interval `t` samples as if it were
    /// `t + shift_intervals`. A half-day shift swaps morning and evening
    /// rush — a city-wide speed-distribution change.
    RushHourShift {
        /// How many intervals the daily regime slides forward.
        shift_intervals: usize,
    },
    /// Trips with an endpoint in `region` have their sampled speed
    /// multiplied by `speed_factor` (clamped to the simulation's minimum
    /// speed) and their demand damped to 35 %.
    RoadClosure {
        /// The closed region.
        region: usize,
        /// Speed multiplier in `(0, 1]` for trips touching the region.
        speed_factor: f64,
    },
    /// Demand to/from `region` multiplies by `factor`; the induced
    /// congestion multiplies those trips' speeds by `1 / sqrt(factor)`.
    DemandSurge {
        /// The surging region.
        region: usize,
        /// Demand multiplier (≥ 1 for a surge).
        factor: f64,
    },
}

/// A drift scenario: what changes, and from which interval onward.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftConfig {
    /// The regime change.
    pub kind: DriftKind,
    /// First interval the change applies to (everything before is the
    /// stationary process).
    pub onset: usize,
}

impl DriftConfig {
    /// A stationary "scenario" (onset irrelevant).
    pub fn stationary() -> DriftConfig {
        DriftConfig {
            kind: DriftKind::Stationary,
            onset: 0,
        }
    }
}

/// Generates a dataset whose sampling regime changes at `drift.onset`,
/// plus the trip records of every interval (chronological, one `Vec` per
/// interval — the replay source for the fleet's live-ingest path).
///
/// Determinism: interval `t` draws from `Rng64::new(master.fork(t))`
/// exactly like the stationary generator, so results are independent of
/// scheduling and bitwise reproducible per seed; pre-onset intervals are
/// bitwise identical to the stationary dataset of the same `SimConfig`.
pub fn generate_drift(
    city: CityModel,
    cfg: &SimConfig,
    drift: &DriftConfig,
) -> (OdDataset, Vec<Vec<Trip>>) {
    let total = cfg.num_intervals();
    // RushHourShift evaluates congestion at t + shift: extend the field.
    let field_intervals = match drift.kind {
        DriftKind::RushHourShift { shift_intervals } => total + shift_intervals,
        _ => total,
    };
    let field = SpeedField::simulate(
        &city,
        cfg.intervals_per_day,
        field_intervals,
        cfg.seed,
        cfg.speed,
    );
    let demand = DemandModel::new(
        &city,
        cfg.intervals_per_day,
        DemandParams {
            trips_per_interval: cfg.trips_per_interval,
            night_shutdown: cfg.night_shutdown,
            ..DemandParams::default()
        },
    );
    let mut master = Rng64::new(cfg.seed ^ 0xDA7A);
    let seeds: Vec<u64> = (0..total)
        .map(|t| master.fork(t as u64).next_u64())
        .collect();
    let n = city.num_regions();

    let mut tensors = Vec::with_capacity(total);
    let mut trips_per_interval = Vec::with_capacity(total);
    for (t, &seed) in seeds.iter().enumerate() {
        let mut rng = Rng64::new(seed);
        let drifting = t >= drift.onset;
        let trips = sample_interval_drifted(
            &city,
            &demand,
            &field,
            t,
            if drifting {
                drift.kind
            } else {
                DriftKind::Stationary
            },
            cfg.speed.min_speed_ms,
            &mut rng,
        );
        tensors.push(OdTensor::from_trips(n, &cfg.hist, &trips));
        trips_per_interval.push(trips);
    }
    (
        OdDataset {
            city,
            spec: cfg.hist,
            intervals_per_day: cfg.intervals_per_day,
            tensors,
        },
        trips_per_interval,
    )
}

/// One interval of trip sampling under a (possibly drifted) regime.
///
/// Mirrors `DemandModel::sample_interval` draw for draw — same loop order,
/// same RNG call sequence per sampled trip — so the `Stationary` kind is
/// bitwise identical to the stationary generator, and drifted kinds only
/// alter rates/speeds, never the draw discipline.
fn sample_interval_drifted(
    city: &CityModel,
    demand: &DemandModel,
    field: &SpeedField,
    t: usize,
    kind: DriftKind,
    min_speed_ms: f64,
    rng: &mut Rng64,
) -> Vec<Trip> {
    let n = city.num_regions();
    // Which interval the demand profile and the congestion field see.
    let t_eff = match kind {
        DriftKind::RushHourShift { shift_intervals } => t + shift_intervals,
        _ => t,
    };
    let mut trips = Vec::new();
    for o in 0..n {
        for d in 0..n {
            if o == d {
                continue;
            }
            let mut lambda = demand.rate(o, d, t_eff);
            let touches = |r: usize| o == r || d == r;
            let speed_mult = match kind {
                DriftKind::RoadClosure {
                    region,
                    speed_factor,
                } if touches(region) => {
                    lambda *= 0.35;
                    speed_factor
                }
                DriftKind::DemandSurge { region, factor } if touches(region) => {
                    lambda *= factor;
                    1.0 / factor.max(1e-9).sqrt()
                }
                _ => 1.0,
            };
            if lambda <= 0.0 {
                continue;
            }
            let count = rng.next_poisson(lambda);
            if count == 0 {
                continue;
            }
            let centroid_dist = city.distance_km(o, d);
            for _ in 0..count {
                let detour = 1.2 + 0.3 * rng.next_f64();
                let distance_km = (centroid_dist * detour).max(0.2);
                let speed_ms =
                    (field.sample_trip_speed(o, d, t_eff, rng) * speed_mult).max(min_speed_ms);
                trips.push(Trip {
                    origin: o,
                    dest: d,
                    interval: t,
                    distance_km,
                    speed_ms,
                });
            }
        }
    }
    trips
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(seed: u64) -> SimConfig {
        SimConfig {
            num_days: 2,
            intervals_per_day: 16,
            trips_per_interval: 120.0,
            ..SimConfig::small(seed)
        }
    }

    #[test]
    fn stationary_drift_is_bitwise_the_plain_generator() {
        let cfg = sim(11);
        let (plain, plain_trips) = OdDataset::generate_with_trips(CityModel::small(5), &cfg);
        let (drifted, drift_trips) =
            generate_drift(CityModel::small(5), &cfg, &DriftConfig::stationary());
        assert_eq!(plain.num_intervals(), drifted.num_intervals());
        for t in 0..plain.num_intervals() {
            assert_eq!(
                plain.tensors[t].data.data(),
                drifted.tensors[t].data.data(),
                "interval {t} tensors diverged"
            );
            assert_eq!(
                plain_trips[t], drift_trips[t],
                "interval {t} trips diverged"
            );
        }
    }

    #[test]
    fn pre_onset_prefix_is_bitwise_stationary() {
        let cfg = sim(7);
        let onset = 16;
        let (plain, _) = OdDataset::generate_with_trips(CityModel::small(5), &cfg);
        for kind in [
            DriftKind::RushHourShift { shift_intervals: 8 },
            DriftKind::RoadClosure {
                region: 2,
                speed_factor: 0.35,
            },
            DriftKind::DemandSurge {
                region: 1,
                factor: 3.0,
            },
        ] {
            let (drifted, trips) =
                generate_drift(CityModel::small(5), &cfg, &DriftConfig { kind, onset });
            for t in 0..onset {
                assert_eq!(
                    plain.tensors[t].data.data(),
                    drifted.tensors[t].data.data(),
                    "{kind:?}: pre-onset interval {t} diverged"
                );
            }
            // Post-onset the regime actually changed somewhere.
            let changed = (onset..plain.num_intervals())
                .any(|t| plain.tensors[t].data.data() != drifted.tensors[t].data.data());
            assert!(changed, "{kind:?}: drift had no effect");
            // Replay property: trips rebuild tensors bitwise.
            for t in [0, onset, plain.num_intervals() - 1] {
                let rebuilt = OdTensor::from_trips(5, &cfg.hist, &trips[t]);
                assert_eq!(rebuilt.data.data(), drifted.tensors[t].data.data());
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = sim(3);
        let d = DriftConfig {
            kind: DriftKind::RushHourShift { shift_intervals: 8 },
            onset: 10,
        };
        let (a, ta) = generate_drift(CityModel::small(5), &cfg, &d);
        let (b, tb) = generate_drift(CityModel::small(5), &cfg, &d);
        for t in 0..a.num_intervals() {
            assert_eq!(a.tensors[t].data.data(), b.tensors[t].data.data());
            assert_eq!(ta[t], tb[t]);
        }
    }

    #[test]
    fn closure_slows_trips_touching_the_region() {
        let cfg = sim(5);
        let region = 2;
        let d = DriftConfig {
            kind: DriftKind::RoadClosure {
                region,
                speed_factor: 0.3,
            },
            onset: 0,
        };
        let (_, drift_trips) = generate_drift(CityModel::small(5), &cfg, &d);
        let (_, plain_trips) = OdDataset::generate_with_trips(CityModel::small(5), &cfg);
        let mean_touching = |trips: &[Vec<Trip>]| {
            let (mut sum, mut cnt) = (0.0f64, 0usize);
            for iv in trips {
                for tr in iv {
                    if tr.origin == region || tr.dest == region {
                        sum += tr.speed_ms;
                        cnt += 1;
                    }
                }
            }
            sum / cnt.max(1) as f64
        };
        let closed = mean_touching(&drift_trips);
        let open = mean_touching(&plain_trips);
        assert!(
            closed < 0.6 * open,
            "closure should slow touching trips: {closed:.2} vs {open:.2} m/s"
        );
    }

    #[test]
    fn surge_multiplies_demand_at_the_region() {
        let cfg = sim(9);
        let region = 1;
        let d = DriftConfig {
            kind: DriftKind::DemandSurge {
                region,
                factor: 4.0,
            },
            onset: 0,
        };
        let (_, drift_trips) = generate_drift(CityModel::small(5), &cfg, &d);
        let (_, plain_trips) = OdDataset::generate_with_trips(CityModel::small(5), &cfg);
        let touching = |trips: &[Vec<Trip>]| {
            trips
                .iter()
                .flatten()
                .filter(|tr| tr.origin == region || tr.dest == region)
                .count()
        };
        let surged = touching(&drift_trips);
        let base = touching(&plain_trips);
        assert!(
            surged > 2 * base,
            "surge should multiply touching trips: {surged} vs {base}"
        );
    }
}
