//! Trip-record import/export.
//!
//! The simulator stands in for the paper's proprietary data, but a
//! downstream user with *real* trip records (the NYC TLC dumps, a fleet's
//! GPS logs) needs an ingestion path. This module reads and writes the
//! minimal CSV schema of §III's trip definition `p = (o, d, t, l, v)` and
//! assembles datasets from external records.
//!
//! Schema (header required):
//!
//! ```text
//! origin,dest,interval,distance_km,speed_ms
//! 3,12,97,2.41,5.8
//! ```
//!
//! `interval` is the global departure-interval index
//! (`day·intervals_per_day + interval-of-day`); region ids must match the
//! city partition used for forecasting.

use crate::city::CityModel;
use crate::dataset::OdDataset;
use crate::hist::HistogramSpec;
use crate::od_tensor::OdTensor;
use crate::trip::Trip;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Errors raised by the CSV import path.
#[derive(Debug)]
pub enum TripIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number and a description.
    Parse(usize, String),
}

impl std::fmt::Display for TripIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TripIoError::Io(e) => write!(f, "trip io: {e}"),
            TripIoError::Parse(line, msg) => write!(f, "trip csv line {line}: {msg}"),
        }
    }
}

impl std::error::Error for TripIoError {}

impl From<std::io::Error> for TripIoError {
    fn from(e: std::io::Error) -> Self {
        TripIoError::Io(e)
    }
}

/// The CSV header written and expected by this module.
pub const CSV_HEADER: &str = "origin,dest,interval,distance_km,speed_ms";

/// Writes trips as CSV.
pub fn write_trips_csv(path: &Path, trips: &[Trip]) -> Result<(), TripIoError> {
    let mut w = BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "{CSV_HEADER}")?;
    for t in trips {
        writeln!(
            w,
            "{},{},{},{:.6},{:.6}",
            t.origin, t.dest, t.interval, t.distance_km, t.speed_ms
        )?;
    }
    w.flush()?;
    Ok(())
}

/// Reads trips from CSV (see [`CSV_HEADER`] for the schema).
pub fn read_trips_csv(path: &Path) -> Result<Vec<Trip>, TripIoError> {
    let reader = BufReader::new(std::fs::File::open(path)?);
    let mut trips = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = i + 1;
        if i == 0 {
            let header = line.trim().to_ascii_lowercase();
            if header != CSV_HEADER {
                return Err(TripIoError::Parse(
                    lineno,
                    format!("expected header `{CSV_HEADER}`, got `{line}`"),
                ));
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() != 5 {
            return Err(TripIoError::Parse(
                lineno,
                format!("expected 5 fields, got {}", fields.len()),
            ));
        }
        let parse_usize = |s: &str, what: &str| {
            s.parse::<usize>()
                .map_err(|_| TripIoError::Parse(lineno, format!("bad {what}: `{s}`")))
        };
        let parse_f64 = |s: &str, what: &str| {
            s.parse::<f64>()
                .ok()
                .filter(|v| v.is_finite())
                .ok_or_else(|| TripIoError::Parse(lineno, format!("bad {what}: `{s}`")))
        };
        let trip = Trip {
            origin: parse_usize(fields[0], "origin")?,
            dest: parse_usize(fields[1], "dest")?,
            interval: parse_usize(fields[2], "interval")?,
            distance_km: parse_f64(fields[3], "distance_km")?,
            speed_ms: parse_f64(fields[4], "speed_ms")?,
        };
        if trip.distance_km < 0.0 || trip.speed_ms < 0.0 {
            return Err(TripIoError::Parse(
                lineno,
                "negative distance or speed".into(),
            ));
        }
        trips.push(trip);
    }
    Ok(trips)
}

/// Assembles a forecasting dataset from externally supplied trips.
///
/// Trips with region ids outside the city partition or intervals ≥
/// `num_intervals` are rejected with a parse-style error (index reported
/// as 0 — the caller validated the file already).
pub fn dataset_from_trips(
    city: CityModel,
    spec: HistogramSpec,
    intervals_per_day: usize,
    num_intervals: usize,
    trips: &[Trip],
) -> Result<OdDataset, TripIoError> {
    let n = city.num_regions();
    let mut per_interval: Vec<Vec<Trip>> = vec![Vec::new(); num_intervals];
    for t in trips {
        if t.origin >= n || t.dest >= n {
            return Err(TripIoError::Parse(
                0,
                format!(
                    "trip references region {}/{} outside partition of {n}",
                    t.origin, t.dest
                ),
            ));
        }
        if t.interval >= num_intervals {
            return Err(TripIoError::Parse(
                0,
                format!("trip interval {} ≥ horizon {num_intervals}", t.interval),
            ));
        }
        per_interval[t.interval].push(*t);
    }
    let tensors: Vec<OdTensor> = per_interval
        .iter()
        .map(|ts| OdTensor::from_trips(n, &spec, ts))
        .collect();
    Ok(OdDataset {
        city,
        spec,
        intervals_per_day,
        tensors,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SimConfig;
    use crate::demand::{DemandModel, DemandParams};
    use crate::speed::{SpeedField, SpeedParams};
    use stod_tensor::rng::Rng64;

    fn sample_trips() -> Vec<Trip> {
        let city = CityModel::small(5);
        let field = SpeedField::simulate(&city, 12, 24, 1, SpeedParams::default());
        let demand = DemandModel::new(
            &city,
            12,
            DemandParams {
                trips_per_interval: 40.0,
                ..DemandParams::default()
            },
        );
        let mut rng = Rng64::new(2);
        (0..24)
            .flat_map(|t| demand.sample_interval(&city, &field, t, &mut rng))
            .collect()
    }

    #[test]
    fn csv_roundtrip_is_lossless_enough() {
        let trips = sample_trips();
        assert!(!trips.is_empty());
        let path = std::env::temp_dir().join("stod_trips_roundtrip.csv");
        write_trips_csv(&path, &trips).unwrap();
        let back = read_trips_csv(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back.len(), trips.len());
        for (a, b) in trips.iter().zip(back.iter()) {
            assert_eq!(a.origin, b.origin);
            assert_eq!(a.dest, b.dest);
            assert_eq!(a.interval, b.interval);
            assert!((a.speed_ms - b.speed_ms).abs() < 1e-5);
            assert!((a.distance_km - b.distance_km).abs() < 1e-5);
        }
    }

    #[test]
    fn rejects_bad_header_and_fields() {
        let dir = std::env::temp_dir();
        let p1 = dir.join("stod_bad_header.csv");
        std::fs::write(&p1, "a,b,c\n").unwrap();
        assert!(matches!(read_trips_csv(&p1), Err(TripIoError::Parse(1, _))));
        std::fs::remove_file(&p1).ok();

        let p2 = dir.join("stod_bad_field.csv");
        std::fs::write(&p2, format!("{CSV_HEADER}\n1,2,three,1.0,2.0\n")).unwrap();
        assert!(matches!(read_trips_csv(&p2), Err(TripIoError::Parse(2, _))));
        std::fs::remove_file(&p2).ok();

        let p3 = dir.join("stod_negative.csv");
        std::fs::write(&p3, format!("{CSV_HEADER}\n1,2,3,-1.0,2.0\n")).unwrap();
        assert!(matches!(read_trips_csv(&p3), Err(TripIoError::Parse(2, _))));
        std::fs::remove_file(&p3).ok();
    }

    #[test]
    fn external_dataset_matches_simulated_pipeline() {
        // Round-tripping the simulator's trips through CSV and
        // dataset_from_trips must reproduce the generated tensors.
        let cfg = SimConfig {
            num_days: 1,
            intervals_per_day: 12,
            trips_per_interval: 40.0,
            ..SimConfig::small(3)
        };
        let city = CityModel::small(5);
        let reference = OdDataset::generate(city.clone(), &cfg);
        // Regenerate the same trips out-of-band.
        let field = SpeedField::simulate(&city, 12, 12, cfg.seed, cfg.speed);
        let demand = DemandModel::new(
            &city,
            12,
            DemandParams {
                trips_per_interval: cfg.trips_per_interval,
                night_shutdown: cfg.night_shutdown,
                ..DemandParams::default()
            },
        );
        let mut master = Rng64::new(cfg.seed ^ 0xDA7A);
        let seeds: Vec<u64> = (0..12).map(|t| master.fork(t as u64).next_u64()).collect();
        let trips: Vec<Trip> = (0..12)
            .flat_map(|t| {
                let mut rng = Rng64::new(seeds[t]);
                demand.sample_interval(&city, &field, t, &mut rng)
            })
            .collect();
        let ds = dataset_from_trips(city, cfg.hist, 12, 12, &trips).unwrap();
        assert_eq!(ds.num_intervals(), reference.num_intervals());
        for (a, b) in ds.tensors.iter().zip(reference.tensors.iter()) {
            assert_eq!(a.data.data(), b.data.data(), "tensor mismatch");
        }
    }

    #[test]
    fn dataset_from_trips_validates_regions() {
        let trips = vec![Trip {
            origin: 99,
            dest: 0,
            interval: 0,
            distance_km: 1.0,
            speed_ms: 5.0,
        }];
        let r = dataset_from_trips(CityModel::small(4), HistogramSpec::paper(), 12, 12, &trips);
        assert!(r.is_err());
    }
}
