//! Gravity demand model and Poisson trip sampling.
//!
//! Demand between regions follows a gravity law — proportional to the
//! attractions of both endpoints, decaying with distance — modulated by a
//! daily profile. Trip counts per (OD pair, interval) are Poisson draws,
//! which is what produces the paper's central difficulty: even large trip
//! sets leave most OD-pair × interval cells empty, with strong spatial and
//! temporal skew (the NYC set covers only 65 % of zone pairs *in total*).

use crate::city::CityModel;
use crate::speed::SpeedField;
use crate::trip::Trip;
use stod_tensor::rng::Rng64;

/// Demand model parameters.
#[derive(Debug, Clone, Copy)]
pub struct DemandParams {
    /// Mean number of trips per interval across the whole city (before the
    /// temporal profile reshapes the day).
    pub trips_per_interval: f64,
    /// Distance-decay constant (km) of the gravity law.
    pub decay_km: f64,
    /// When true, demand between 00:00 and 06:00 is zero — matching the
    /// Chengdu data set, which "does not contain any data from 00:00 to
    /// 06:00" (§VI-B2).
    pub night_shutdown: bool,
}

impl Default for DemandParams {
    fn default() -> Self {
        DemandParams {
            trips_per_interval: 400.0,
            decay_km: 1.2,
            night_shutdown: false,
        }
    }
}

/// Daily demand profile in `[0, 1]`: low at night, peaks at rush hours.
pub fn demand_profile(
    interval_of_day: usize,
    intervals_per_day: usize,
    night_shutdown: bool,
) -> f64 {
    let h = interval_of_day as f64 / intervals_per_day as f64 * 24.0;
    if night_shutdown && h < 6.0 {
        return 0.0;
    }
    let peak = |c: f64, w: f64, a: f64| a * (-((h - c) / w).powi(2)).exp();
    let base = if (1.0..5.0).contains(&h) { 0.03 } else { 0.15 };
    (base + peak(8.5, 1.8, 0.7) + peak(18.5, 2.2, 0.85) + peak(13.0, 3.0, 0.3)).min(1.0)
}

/// The gravity demand model over a city.
pub struct DemandModel {
    /// Unnormalized per-pair base rates, row-major `N×N` (diagonal zero).
    rates: Vec<f64>,
    num_regions: usize,
    params: DemandParams,
    /// Normalization so that the mean interval produces
    /// `params.trips_per_interval` expected trips.
    scale: f64,
    intervals_per_day: usize,
}

impl DemandModel {
    /// Builds the gravity model for `city`.
    pub fn new(city: &CityModel, intervals_per_day: usize, params: DemandParams) -> DemandModel {
        let n = city.num_regions();
        let mut rates = vec![0.0f64; n * n];
        for o in 0..n {
            for d in 0..n {
                if o == d {
                    continue;
                }
                let dist = city.distance_km(o, d);
                rates[o * n + d] = city.regions[o].attraction
                    * city.regions[d].attraction
                    * (-dist / params.decay_km).exp();
            }
        }
        let total: f64 = rates.iter().sum();
        // Mean profile value over a day.
        let mean_profile: f64 = (0..intervals_per_day)
            .map(|i| demand_profile(i, intervals_per_day, params.night_shutdown))
            .sum::<f64>()
            / intervals_per_day as f64;
        let scale = params.trips_per_interval / (total * mean_profile).max(1e-12);
        DemandModel {
            rates,
            num_regions: n,
            params,
            scale,
            intervals_per_day,
        }
    }

    /// Expected trip count for pair `(o, d)` during global interval `t`.
    pub fn rate(&self, o: usize, d: usize, t: usize) -> f64 {
        let profile = demand_profile(
            t % self.intervals_per_day,
            self.intervals_per_day,
            self.params.night_shutdown,
        );
        self.rates[o * self.num_regions + d] * self.scale * profile
    }

    /// Samples all trips departing during global interval `t`, drawing
    /// speeds from the latent `field`.
    pub fn sample_interval(
        &self,
        city: &CityModel,
        field: &SpeedField,
        t: usize,
        rng: &mut Rng64,
    ) -> Vec<Trip> {
        let n = self.num_regions;
        let mut trips = Vec::new();
        for o in 0..n {
            for d in 0..n {
                if o == d {
                    continue;
                }
                let lambda = self.rate(o, d, t);
                if lambda <= 0.0 {
                    continue;
                }
                let count = rng.next_poisson(lambda);
                if count == 0 {
                    continue;
                }
                let centroid_dist = city.distance_km(o, d);
                for _ in 0..count {
                    // Actual driven distance exceeds the centroid distance
                    // (street network detour factor ~1.3, jittered).
                    let detour = 1.2 + 0.3 * rng.next_f64();
                    let distance_km = (centroid_dist * detour).max(0.2);
                    let speed_ms = field.sample_trip_speed(o, d, t, rng);
                    trips.push(Trip {
                        origin: o,
                        dest: d,
                        interval: t,
                        distance_km,
                        speed_ms,
                    });
                }
            }
        }
        trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::speed::SpeedParams;

    fn setup() -> (CityModel, DemandModel, SpeedField) {
        let city = CityModel::small(9);
        let dm = DemandModel::new(
            &city,
            48,
            DemandParams {
                trips_per_interval: 120.0,
                ..DemandParams::default()
            },
        );
        let field = SpeedField::simulate(&city, 48, 96, 5, SpeedParams::default());
        (city, dm, field)
    }

    #[test]
    fn no_self_trips() {
        let (city, dm, field) = setup();
        let mut rng = Rng64::new(1);
        for t in 0..20 {
            for trip in dm.sample_interval(&city, &field, t, &mut rng) {
                assert_ne!(trip.origin, trip.dest);
            }
        }
    }

    #[test]
    fn calibrated_volume_roughly_matches() {
        let (city, dm, field) = setup();
        let mut rng = Rng64::new(2);
        let total: usize = (0..96)
            .map(|t| dm.sample_interval(&city, &field, t, &mut rng).len())
            .sum();
        let mean = total as f64 / 96.0;
        assert!(
            (mean - 120.0).abs() < 40.0,
            "calibration off: mean {mean} trips/interval, wanted ≈120"
        );
    }

    #[test]
    fn gravity_favours_near_attractive_pairs() {
        let (_, dm, _) = setup();
        // Pair (4,5): grid-adjacent and central vs (0,8): corner-to-corner.
        assert!(dm.rate(4, 5, 20) > dm.rate(0, 8, 20));
    }

    #[test]
    fn rush_hour_demand_exceeds_night() {
        let (_, dm, _) = setup();
        let ipd = 48;
        let rush = ipd * 8 / 24 + 1;
        let night = ipd * 3 / 24;
        assert!(dm.rate(0, 1, rush) > dm.rate(0, 1, night));
    }

    #[test]
    fn night_shutdown_zeroes_early_morning() {
        let city = CityModel::small(4);
        let dm = DemandModel::new(
            &city,
            48,
            DemandParams {
                night_shutdown: true,
                ..DemandParams::default()
            },
        );
        let three_am = 48 * 3 / 24;
        assert_eq!(dm.rate(0, 1, three_am), 0.0);
        let nine_am = 48 * 9 / 24;
        assert!(dm.rate(0, 1, nine_am) > 0.0);
    }

    #[test]
    fn sampling_is_sparse() {
        // With modest volume most OD pairs must be empty per interval —
        // the paper's data-sparseness setting.
        let (city, dm, field) = setup();
        let mut rng = Rng64::new(3);
        let t = 24;
        let trips = dm.sample_interval(&city, &field, t, &mut rng);
        let mut covered = std::collections::HashSet::new();
        for tr in &trips {
            covered.insert((tr.origin, tr.dest));
        }
        let pairs = 9 * 8;
        assert!(
            covered.len() < pairs,
            "expected sparse coverage, got {} of {pairs} pairs",
            covered.len()
        );
    }
}
