//! Multi-city replay source for the serving fleet.
//!
//! The paper forecasts one city; the fleet serves many. This module
//! generates a deterministic *fleet* of simulated cities — each with its
//! own spatial layout, demand level, and trip stream — so the serving
//! tier's load harness can replay realistic per-tenant traffic: trips are
//! pushed through the live-ingest path (`FeatureStore::push_trip` +
//! `seal_interval`) exactly as a production feed would deliver them, and
//! the per-interval tensors double as the offline ground truth the cached
//! forecasts are checked against.
//!
//! Cities are intentionally heterogeneous (different region counts and
//! trip volumes, cycled deterministically from the fleet seed): a fleet
//! whose shards are identical would hide cross-tenant bugs like a cache
//! key missing the city dimension or a router mixing up region counts.

use crate::city::CityModel;
use crate::dataset::{OdDataset, SimConfig};
use crate::trip::Trip;

/// One city of a replay fleet: its simulated dataset plus the trip stream
/// that produced it (one `Vec<Trip>` per interval, chronological).
pub struct FleetCity {
    /// Fleet-wide tenant id (0-based, dense).
    pub city_id: usize,
    /// The simulated dataset; `tensors[t]` is bitwise reproducible from
    /// `trips[t]` via `OdTensor::from_trips`.
    pub dataset: OdDataset,
    /// Per-interval trip records, the replay stream.
    pub trips: Vec<Vec<Trip>>,
}

impl FleetCity {
    /// Number of regions of this city.
    pub fn num_regions(&self) -> usize {
        self.dataset.num_regions()
    }

    /// Number of simulated intervals.
    pub fn num_intervals(&self) -> usize {
        self.dataset.num_intervals()
    }

    /// Total trips across all intervals.
    pub fn total_trips(&self) -> usize {
        self.trips.iter().map(Vec::len).sum()
    }
}

/// Configuration of a replay fleet.
#[derive(Debug, Clone, Copy)]
pub struct FleetSimConfig {
    /// Number of cities (tenants) to generate.
    pub num_cities: usize,
    /// Simulated days per city.
    pub num_days: usize,
    /// Intervals per day (the paper's granularity is 96 × 15 min).
    pub intervals_per_day: usize,
    /// Master seed; every city forks a distinct deterministic stream.
    pub seed: u64,
}

impl Default for FleetSimConfig {
    fn default() -> FleetSimConfig {
        FleetSimConfig {
            num_cities: 4,
            num_days: 1,
            intervals_per_day: 16,
            seed: 0x0F1EE7,
        }
    }
}

/// Generates a deterministic heterogeneous fleet of cities.
///
/// City `i` gets a grid layout whose region count cycles through
/// {6, 8, 9, 12} and a demand level cycling through three volumes, both
/// keyed off `i` — so a 4-city fleet already exercises shards with
/// different `N` and different load. Same config → bitwise-identical
/// fleet, independent of thread count (the per-interval sampling is the
/// deterministic fork-per-interval scheme of [`OdDataset::generate`]).
pub fn generate_fleet(cfg: &FleetSimConfig) -> Vec<FleetCity> {
    assert!(cfg.num_cities >= 1, "a fleet needs at least one city");
    (0..cfg.num_cities)
        .map(|i| {
            let (rows, cols) = [(3, 2), (4, 2), (3, 3), (4, 3)][i % 4];
            let mut city = CityModel::grid(rows, cols, 0.8);
            city.name = format!("fleet-city-{i}");
            let sim = SimConfig {
                num_days: cfg.num_days,
                intervals_per_day: cfg.intervals_per_day,
                trips_per_interval: [120.0, 180.0, 90.0][i % 3],
                night_shutdown: false,
                seed: cfg.seed ^ (0x5EED_0000 + i as u64 * 0x9E37_79B9),
                ..SimConfig::small(cfg.seed)
            };
            let (dataset, trips) = OdDataset::generate_with_trips(city, &sim);
            FleetCity {
                city_id: i,
                dataset,
                trips,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::od_tensor::OdTensor;

    fn tiny_fleet() -> Vec<FleetCity> {
        generate_fleet(&FleetSimConfig {
            num_cities: 4,
            num_days: 1,
            intervals_per_day: 8,
            seed: 7,
        })
    }

    #[test]
    fn fleet_is_heterogeneous_and_nonempty() {
        let fleet = tiny_fleet();
        assert_eq!(fleet.len(), 4);
        let sizes: Vec<usize> = fleet.iter().map(FleetCity::num_regions).collect();
        assert_eq!(sizes, vec![6, 8, 9, 12]);
        for c in &fleet {
            assert_eq!(c.num_intervals(), 8);
            assert!(c.total_trips() > 0, "city {} generated no trips", c.city_id);
        }
    }

    #[test]
    fn trips_reproduce_tensors_bitwise() {
        for c in tiny_fleet() {
            let n = c.num_regions();
            for (t, interval_trips) in c.trips.iter().enumerate() {
                let rebuilt = OdTensor::from_trips(n, &c.dataset.spec, interval_trips);
                assert_eq!(
                    rebuilt.data.data(),
                    c.dataset.tensors[t].data.data(),
                    "city {} interval {t}: replayed trips must rebuild the tensor bitwise",
                    c.city_id
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny_fleet();
        let b = tiny_fleet();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.total_trips(), y.total_trips());
            for (tx, ty) in x.dataset.tensors.iter().zip(y.dataset.tensors.iter()) {
                assert_eq!(tx.data.data(), ty.data.data());
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = tiny_fleet();
        let b = generate_fleet(&FleetSimConfig {
            seed: 8,
            num_days: 1,
            intervals_per_day: 8,
            num_cities: 4,
        });
        assert_ne!(
            a[0].dataset.tensors[0].data.data(),
            b[0].dataset.tensors[0].data.data()
        );
    }
}
