//! Trip records — the paper's §III `p = (o, d, t, l, v, τ)`.

/// One vehicle trip between two regions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Trip {
    /// Origin region id.
    pub origin: usize,
    /// Destination region id.
    pub dest: usize,
    /// Departure interval index (global, not per-day).
    pub interval: usize,
    /// Trip distance `l` in kilometres.
    pub distance_km: f64,
    /// Average travel speed `v` in m/s (what the histograms bin).
    pub speed_ms: f64,
}

impl Trip {
    /// Travel time `τ` in seconds implied by distance and speed.
    pub fn duration_s(&self) -> f64 {
        if self.speed_ms <= 0.0 {
            f64::INFINITY
        } else {
            self.distance_km * 1000.0 / self.speed_ms
        }
    }

    /// Interval index within its day.
    pub fn interval_of_day(&self, intervals_per_day: usize) -> usize {
        self.interval % intervals_per_day
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_from_speed_and_distance() {
        let t = Trip {
            origin: 0,
            dest: 1,
            interval: 5,
            distance_km: 3.6,
            speed_ms: 10.0,
        };
        assert!((t.duration_s() - 360.0).abs() < 1e-9);
    }

    #[test]
    fn zero_speed_is_infinite_duration() {
        let t = Trip {
            origin: 0,
            dest: 1,
            interval: 0,
            distance_km: 1.0,
            speed_ms: 0.0,
        };
        assert!(t.duration_s().is_infinite());
    }

    #[test]
    fn interval_of_day_wraps() {
        let t = Trip {
            origin: 0,
            dest: 1,
            interval: 100,
            distance_km: 1.0,
            speed_ms: 5.0,
        };
        assert_eq!(t.interval_of_day(96), 4);
        assert_eq!(t.interval_of_day(48), 4);
    }
}
