//! Sparse OD stochastic speed tensors — the paper's
//! `M^(i) ∈ R^{N×N'×K}` with observation indicator `Ω^(i) ∈ {0,1}^{N×N'}`.

use crate::hist::HistogramSpec;
use crate::trip::Trip;
use stod_tensor::Tensor;

/// One interval's OD stochastic speed tensor plus its observation mask.
///
/// `data[o, d, ·]` is a probability histogram when `mask[o, d] == 1` and
/// all-zero otherwise (the "∘" cells of Figure 2b).
#[derive(Debug, Clone)]
pub struct OdTensor {
    /// Histogram tensor `N × N' × K`.
    pub data: Tensor,
    /// Observation indicator `N × N'` (1.0 = at least one trip observed).
    pub mask: Tensor,
}

impl OdTensor {
    /// An all-empty tensor for `n` origin and `n_dest` destination regions.
    pub fn empty(n: usize, n_dest: usize, k: usize) -> OdTensor {
        OdTensor {
            data: Tensor::zeros(&[n, n_dest, k]),
            mask: Tensor::zeros(&[n, n_dest]),
        }
    }

    /// Builds the tensor for one interval from that interval's trips.
    pub fn from_trips(n: usize, spec: &HistogramSpec, trips: &[Trip]) -> OdTensor {
        let k = spec.num_buckets;
        let mut speeds: std::collections::HashMap<(usize, usize), Vec<f64>> =
            std::collections::HashMap::new();
        for t in trips {
            debug_assert!(t.origin < n && t.dest < n, "trip region out of range");
            speeds
                .entry((t.origin, t.dest))
                .or_default()
                .push(t.speed_ms);
        }
        let mut out = OdTensor::empty(n, n, k);
        for ((o, d), vs) in speeds {
            if let Some(h) = spec.build(&vs) {
                for (b, &p) in h.iter().enumerate() {
                    out.data.set(&[o, d, b], p);
                }
                out.mask.set(&[o, d], 1.0);
            }
        }
        out
    }

    /// Number of origin regions `N`.
    pub fn num_origins(&self) -> usize {
        self.data.dim(0)
    }

    /// Number of destination regions `N'`.
    pub fn num_dests(&self) -> usize {
        self.data.dim(1)
    }

    /// Number of histogram buckets `K`.
    pub fn num_buckets(&self) -> usize {
        self.data.dim(2)
    }

    /// True when the `(o, d)` cell holds an observed histogram.
    pub fn observed(&self, o: usize, d: usize) -> bool {
        self.mask.at(&[o, d]) > 0.5
    }

    /// The `(o, d)` histogram when observed.
    pub fn histogram(&self, o: usize, d: usize) -> Option<Vec<f32>> {
        if !self.observed(o, d) {
            return None;
        }
        let k = self.num_buckets();
        Some((0..k).map(|b| self.data.at(&[o, d, b])).collect())
    }

    /// Number of observed cells.
    pub fn num_observed(&self) -> usize {
        self.mask.data().iter().filter(|&&x| x > 0.5).count()
    }

    /// Fraction of cells observed (per-interval coverage).
    pub fn coverage(&self) -> f64 {
        let total = self.num_origins() * self.num_dests();
        if total == 0 {
            0.0
        } else {
            self.num_observed() as f64 / total as f64
        }
    }

    /// The mask broadcast over buckets, shape `N×N'×K` — the Ω of the loss
    /// functions (Eq. 4/11) and of `DisSim` (Eq. 12).
    pub fn mask_over_buckets(&self) -> Tensor {
        let (n, nd, k) = (self.num_origins(), self.num_dests(), self.num_buckets());
        let mut m = Tensor::zeros(&[n, nd, k]);
        for o in 0..n {
            for d in 0..nd {
                if self.observed(o, d) {
                    for b in 0..k {
                        m.set(&[o, d, b], 1.0);
                    }
                }
            }
        }
        m
    }

    /// Validates internal invariants (each observed cell is a probability
    /// distribution; unobserved cells are zero).
    pub fn check_invariants(&self) -> Result<(), String> {
        let (n, nd, k) = (self.num_origins(), self.num_dests(), self.num_buckets());
        for o in 0..n {
            for d in 0..nd {
                let sum: f32 = (0..k).map(|b| self.data.at(&[o, d, b])).sum();
                if self.observed(o, d) {
                    if (sum - 1.0).abs() > 1e-4 {
                        return Err(format!("cell ({o},{d}) sums to {sum}, expected 1"));
                    }
                    for b in 0..k {
                        if self.data.at(&[o, d, b]) < 0.0 {
                            return Err(format!("cell ({o},{d},{b}) negative"));
                        }
                    }
                } else if sum.abs() > 1e-6 {
                    return Err(format!("unobserved cell ({o},{d}) has mass {sum}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trip(o: usize, d: usize, v: f64) -> Trip {
        Trip {
            origin: o,
            dest: d,
            interval: 0,
            distance_km: 1.0,
            speed_ms: v,
        }
    }

    #[test]
    fn build_from_trips() {
        let spec = HistogramSpec::paper();
        let trips = vec![
            trip(0, 1, 2.0),
            trip(0, 1, 4.0),
            trip(0, 1, 4.5),
            trip(2, 0, 20.0),
        ];
        let t = OdTensor::from_trips(3, &spec, &trips);
        assert!(t.observed(0, 1));
        assert!(t.observed(2, 0));
        assert!(!t.observed(1, 2));
        let h = t.histogram(0, 1).unwrap();
        assert!((h[0] - 1.0 / 3.0).abs() < 1e-6);
        assert!((h[1] - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(t.histogram(2, 0).unwrap()[6], 1.0);
        assert_eq!(t.num_observed(), 2);
        t.check_invariants().unwrap();
    }

    #[test]
    fn coverage_fraction() {
        let spec = HistogramSpec::paper();
        let t = OdTensor::from_trips(2, &spec, &[trip(0, 1, 5.0)]);
        assert!((t.coverage() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn empty_tensor() {
        let t = OdTensor::empty(3, 3, 7);
        assert_eq!(t.num_observed(), 0);
        assert_eq!(t.coverage(), 0.0);
        assert!(t.histogram(0, 0).is_none());
        t.check_invariants().unwrap();
    }

    #[test]
    fn mask_over_buckets_broadcasts() {
        let spec = HistogramSpec::paper();
        let t = OdTensor::from_trips(2, &spec, &[trip(1, 0, 5.0)]);
        let m = t.mask_over_buckets();
        assert_eq!(m.dims(), &[2, 2, 7]);
        assert_eq!(m.at(&[1, 0, 3]), 1.0);
        assert_eq!(m.at(&[0, 1, 3]), 0.0);
        assert_eq!(m.sum(), 7.0);
    }

    #[test]
    fn invariant_violation_detected() {
        let mut t = OdTensor::empty(2, 2, 3);
        t.mask.set(&[0, 0], 1.0); // observed but zero histogram
        assert!(t.check_invariants().is_err());
    }
}
