//! # stod-traffic
//!
//! The data substrate. The paper instantiates its OD tensors from two
//! proprietary taxi data sets (NYC taxi trips, Chengdu GPS traces) that
//! cannot be shipped; this crate substitutes a *synthetic city and trip
//! simulator* whose generated data exhibits — by construction — the
//! properties the paper's evaluation exercises:
//!
//! * **Sparseness** (§I challenge 1): trips are Poisson-sampled from a
//!   gravity demand model with heavy spatial and temporal skew, so most
//!   OD pairs are unobserved in most 15-minute intervals.
//! * **Spatial correlation** (§I challenge 2): travel speeds are driven by
//!   a latent congestion field that diffuses over the region graph, so
//!   nearby regions share speed dynamics — the signal the advanced
//!   framework's graph convolutions are designed to exploit.
//! * **Temporal dynamics**: a double-peaked daily profile (morning/evening
//!   rush), slow drift and noise.
//!
//! Modules:
//!
//! * [`city`] — region models: uniform grids (Figure 1a) and irregular
//!   road-based partitions (Figure 1b), plus NYC-like (67 regions) and
//!   Chengdu-like (79 regions) presets.
//! * [`speed`] — the latent congestion/speed process.
//! * [`demand`] — gravity demand model and Poisson trip sampling.
//! * [`trip`] — trip records (§III's `p = (o, d, t, l, v, τ)`).
//! * [`hist`] — equi-width speed histograms (§III).
//! * [`io`] — CSV import/export of trip records for users with real data.
//! * [`od_tensor`] — sparse OD stochastic speed tensors `M ∈ R^{N×N×K}`
//!   with observation masks Ω.
//! * [`dataset`] — chronological datasets, sliding windows `(s, h)`,
//!   train/validation/test splits and batching.
//! * [`drift`] — regime-change scenarios (rush-hour shift, road closure,
//!   demand surge) whose sampling process changes at a configured onset,
//!   exercising the continual-adaptation loop.
//! * [`replay`] — deterministic multi-city fleets (per-tenant datasets +
//!   trip streams) replayed through the serving tier's live-ingest path.
//! * [`stats`] — sparseness and coverage statistics (Figure 7).
//! * [`weather`] — optional weather context (the paper's §VII outlook).

pub mod city;
pub mod dataset;
pub mod demand;
pub mod drift;
pub mod hist;
pub mod io;
pub mod od_tensor;
pub mod replay;
pub mod speed;
pub mod stats;
pub mod trip;
pub mod weather;

pub use city::{CityModel, Region};
pub use dataset::{OdDataset, SimConfig, Split, Window};
pub use drift::{generate_drift, DriftConfig, DriftKind};
pub use hist::HistogramSpec;
pub use od_tensor::OdTensor;
pub use replay::{generate_fleet, FleetCity, FleetSimConfig};
pub use trip::Trip;
