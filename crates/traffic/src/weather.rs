//! Weather context — the paper's §VII outlook ("extend the framework to
//! incorporate contextual information such as weather conditions").
//!
//! A three-state Markov chain (clear / rain / downpour) produces a
//! per-interval weather factor in `[0, 1]`; the speed field accepts it as
//! an additive congestion source, and models can consume the series as an
//! exogenous context signal. Weather is *off by default* so the headline
//! experiments match the paper's context-free setting.

use stod_tensor::rng::Rng64;

/// Weather condition states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Weather {
    /// Dry roads, no effect.
    Clear,
    /// Light rain: mild slowdown.
    Rain,
    /// Heavy rain: strong slowdown.
    Downpour,
}

impl Weather {
    /// Congestion factor contributed by this condition, in `[0, 1]`.
    pub fn factor(&self) -> f64 {
        match self {
            Weather::Clear => 0.0,
            Weather::Rain => 0.35,
            Weather::Downpour => 0.8,
        }
    }
}

/// Parameters of the weather Markov chain (per-interval transition
/// probabilities).
#[derive(Debug, Clone, Copy)]
pub struct WeatherParams {
    /// P(clear → rain).
    pub onset: f64,
    /// P(rain → clear).
    pub clearing: f64,
    /// P(rain → downpour).
    pub worsen: f64,
    /// P(downpour → rain).
    pub easing: f64,
}

impl Default for WeatherParams {
    fn default() -> Self {
        WeatherParams {
            onset: 0.02,
            clearing: 0.10,
            worsen: 0.08,
            easing: 0.25,
        }
    }
}

/// A simulated weather series, one condition per interval.
#[derive(Debug, Clone)]
pub struct WeatherSeries {
    /// Condition per interval.
    pub conditions: Vec<Weather>,
}

impl WeatherSeries {
    /// Simulates `num_intervals` of weather from the Markov chain.
    pub fn simulate(num_intervals: usize, seed: u64, params: WeatherParams) -> WeatherSeries {
        let mut rng = Rng64::new(seed ^ 0x7EA7);
        let mut conditions = Vec::with_capacity(num_intervals);
        let mut state = Weather::Clear;
        for _ in 0..num_intervals {
            let u = rng.next_f64();
            state = match state {
                Weather::Clear => {
                    if u < params.onset {
                        Weather::Rain
                    } else {
                        Weather::Clear
                    }
                }
                Weather::Rain => {
                    if u < params.clearing {
                        Weather::Clear
                    } else if u < params.clearing + params.worsen {
                        Weather::Downpour
                    } else {
                        Weather::Rain
                    }
                }
                Weather::Downpour => {
                    if u < params.easing {
                        Weather::Rain
                    } else {
                        Weather::Downpour
                    }
                }
            };
            conditions.push(state);
        }
        WeatherSeries { conditions }
    }

    /// A permanently clear series (the default, context-free setting).
    pub fn clear(num_intervals: usize) -> WeatherSeries {
        WeatherSeries {
            conditions: vec![Weather::Clear; num_intervals],
        }
    }

    /// Number of intervals covered.
    pub fn len(&self) -> usize {
        self.conditions.len()
    }

    /// True when the series is empty.
    pub fn is_empty(&self) -> bool {
        self.conditions.is_empty()
    }

    /// Condition at interval `t`.
    pub fn at(&self, t: usize) -> Weather {
        self.conditions[t]
    }

    /// Congestion factor at interval `t`.
    pub fn factor(&self, t: usize) -> f64 {
        self.conditions[t].factor()
    }

    /// Fraction of intervals with any precipitation.
    pub fn wet_fraction(&self) -> f64 {
        if self.conditions.is_empty() {
            return 0.0;
        }
        self.conditions
            .iter()
            .filter(|c| **c != Weather::Clear)
            .count() as f64
            / self.conditions.len() as f64
    }

    /// The factor series as an exogenous context signal (one value per
    /// interval), e.g. to concatenate onto model inputs.
    pub fn context_series(&self) -> Vec<f32> {
        self.conditions.iter().map(|c| c.factor() as f32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clear_series_has_no_effect() {
        let w = WeatherSeries::clear(10);
        assert_eq!(w.len(), 10);
        assert_eq!(w.wet_fraction(), 0.0);
        assert!(w.context_series().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn simulated_series_is_deterministic() {
        let a = WeatherSeries::simulate(200, 5, WeatherParams::default());
        let b = WeatherSeries::simulate(200, 5, WeatherParams::default());
        assert_eq!(a.context_series(), b.context_series());
    }

    #[test]
    fn rain_occurs_but_not_always() {
        let w = WeatherSeries::simulate(5000, 7, WeatherParams::default());
        let wet = w.wet_fraction();
        assert!(wet > 0.02, "rain never occurred ({wet})");
        assert!(wet < 0.8, "it practically never cleared up ({wet})");
    }

    #[test]
    fn downpour_reachable_and_transient() {
        let w = WeatherSeries::simulate(5000, 11, WeatherParams::default());
        let downpours = (0..w.len())
            .filter(|&t| w.at(t) == Weather::Downpour)
            .count();
        assert!(downpours > 0, "downpour state unreachable");
        assert!(downpours < w.len() / 2);
    }

    #[test]
    fn factors_ordered_by_severity() {
        assert!(Weather::Clear.factor() < Weather::Rain.factor());
        assert!(Weather::Rain.factor() < Weather::Downpour.factor());
    }

    #[test]
    fn markov_persistence() {
        // Rain stretches should be longer than independent coin flips
        // would produce: count transitions vs. wet intervals.
        let w = WeatherSeries::simulate(10_000, 13, WeatherParams::default());
        let mut transitions = 0usize;
        let mut wet = 0usize;
        for t in 1..w.len() {
            if w.at(t) != Weather::Clear {
                wet += 1;
                if w.at(t - 1) == Weather::Clear {
                    transitions += 1;
                }
            }
        }
        assert!(wet > 0);
        let mean_spell = wet as f64 / transitions.max(1) as f64;
        assert!(
            mean_spell > 3.0,
            "weather has no persistence: spell {mean_spell}"
        );
    }
}

#[cfg(test)]
mod integration_tests {
    use super::*;
    use crate::city::CityModel;
    use crate::speed::{SpeedField, SpeedParams};

    #[test]
    fn rain_slows_the_city_down() {
        let city = CityModel::small(9);
        let n = 240;
        let clear = WeatherSeries::clear(n);
        // A permanently-raining counterfactual.
        let storm = WeatherSeries {
            conditions: vec![Weather::Downpour; n],
        };
        let f_clear =
            SpeedField::simulate_with_weather(&city, 48, n, 3, SpeedParams::default(), &clear);
        let f_storm =
            SpeedField::simulate_with_weather(&city, 48, n, 3, SpeedParams::default(), &storm);
        let mean = |f: &SpeedField| {
            let mut acc = 0.0;
            for t in 48..n {
                for o in 0..9 {
                    for d in 0..9 {
                        acc += f.mean_speed_ms(o, d, t);
                    }
                }
            }
            acc
        };
        assert!(
            mean(&f_storm) < mean(&f_clear),
            "downpour must slow traffic compared to clear weather"
        );
    }
}
