//! End-to-end dataset generation and the sliding-window problem framing
//! `[M^(t−s+1) … M^(t)] → [M^(t+1) … M^(t+h)]` of §III.

use crate::city::CityModel;
use crate::demand::{DemandModel, DemandParams};
use crate::hist::HistogramSpec;
use crate::od_tensor::OdTensor;
use crate::speed::{SpeedField, SpeedParams};
use stod_tensor::rng::Rng64;

/// Simulation configuration for generating a dataset.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Number of simulated days.
    pub num_days: usize,
    /// Intervals per day (the paper uses 96 fifteen-minute intervals).
    pub intervals_per_day: usize,
    /// Target mean number of trips per interval.
    pub trips_per_interval: f64,
    /// Shut down demand between 00:00 and 06:00 (Chengdu-like).
    pub night_shutdown: bool,
    /// Master random seed.
    pub seed: u64,
    /// Histogram specification.
    pub hist: HistogramSpec,
    /// Latent speed-process parameters.
    pub speed: SpeedParams,
}

impl SimConfig {
    /// A small configuration for tests and quick examples.
    pub fn small(seed: u64) -> SimConfig {
        SimConfig {
            num_days: 8,
            intervals_per_day: 48,
            trips_per_interval: 150.0,
            night_shutdown: false,
            seed,
            hist: HistogramSpec::paper(),
            speed: SpeedParams::default(),
        }
    }

    /// NYC-like experiment scale (used with [`CityModel::nyc_like`]).
    pub fn nyc(seed: u64) -> SimConfig {
        SimConfig {
            num_days: 20,
            intervals_per_day: 96,
            trips_per_interval: 2500.0,
            night_shutdown: false,
            seed,
            hist: HistogramSpec::paper(),
            speed: SpeedParams::default(),
        }
    }

    /// Chengdu-like experiment scale (used with [`CityModel::chengdu_like`]).
    pub fn chengdu(seed: u64) -> SimConfig {
        SimConfig {
            num_days: 20,
            intervals_per_day: 96,
            trips_per_interval: 1300.0,
            night_shutdown: true,
            seed,
            hist: HistogramSpec::paper(),
            speed: SpeedParams::default(),
        }
    }

    /// Total number of intervals.
    pub fn num_intervals(&self) -> usize {
        self.num_days * self.intervals_per_day
    }
}

/// One forecasting sample: `s` historical intervals ending at `t_end`
/// (inclusive) predicting the following `h` intervals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// Index of the last *input* interval `t`.
    pub t_end: usize,
    /// Number of historical intervals `s`.
    pub s: usize,
    /// Forecast horizon `h`.
    pub h: usize,
}

impl Window {
    /// Indices of the input intervals `t−s+1 … t`.
    pub fn input_indices(&self) -> Vec<usize> {
        (self.t_end + 1 - self.s..=self.t_end).collect()
    }

    /// Indices of the target intervals `t+1 … t+h`.
    pub fn target_indices(&self) -> Vec<usize> {
        (self.t_end + 1..=self.t_end + self.h).collect()
    }
}

/// Chronological train/validation/test split of windows.
#[derive(Debug, Clone)]
pub struct Split {
    /// Training windows (earliest).
    pub train: Vec<Window>,
    /// Validation windows.
    pub val: Vec<Window>,
    /// Test windows (latest).
    pub test: Vec<Window>,
}

/// A generated dataset: a city plus one sparse OD tensor per interval.
pub struct OdDataset {
    /// The spatial substrate.
    pub city: CityModel,
    /// Histogram specification shared by all tensors.
    pub spec: HistogramSpec,
    /// Intervals per day.
    pub intervals_per_day: usize,
    /// One sparse OD tensor per interval, chronological.
    pub tensors: Vec<OdTensor>,
}

impl OdDataset {
    /// Simulates a dataset: latent speeds → demand → trips → histograms.
    pub fn generate(city: CityModel, cfg: &SimConfig) -> OdDataset {
        OdDataset::generate_with_trips(city, cfg).0
    }

    /// Like [`OdDataset::generate`], but also returns the simulated trip
    /// records, one `Vec<Trip>` per interval in chronological order.
    ///
    /// The tensors and the trips come from the *same* sampling pass, so
    /// `OdTensor::from_trips(n, &spec, &trips[t])` reproduces `tensors[t]`
    /// bitwise — the property that makes the trip stream a faithful replay
    /// source for the serving fleet's live-ingest path (trips pushed and
    /// sealed through `FeatureStore` yield exactly the offline tensors).
    pub fn generate_with_trips(
        city: CityModel,
        cfg: &SimConfig,
    ) -> (OdDataset, Vec<Vec<crate::trip::Trip>>) {
        let total = cfg.num_intervals();
        let field = SpeedField::simulate(&city, cfg.intervals_per_day, total, cfg.seed, cfg.speed);
        let demand = DemandModel::new(
            &city,
            cfg.intervals_per_day,
            DemandParams {
                trips_per_interval: cfg.trips_per_interval,
                night_shutdown: cfg.night_shutdown,
                ..DemandParams::default()
            },
        );
        // Deterministic parallel sampling: every interval draws from its
        // own RNG stream forked from the master seed, so the result is
        // identical regardless of thread count or scheduling.
        let mut master = Rng64::new(cfg.seed ^ 0xDA7A);
        let seeds: Vec<u64> = (0..total)
            .map(|t| master.fork(t as u64).next_u64())
            .collect();
        let n = city.num_regions();
        let threads = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .clamp(1, 8);
        let chunk = total.div_ceil(threads).max(1);
        let results: Vec<Vec<(OdTensor, Vec<crate::trip::Trip>)>> =
            crossbeam::thread::scope(|scope| {
                let mut handles = Vec::new();
                for (ci, seed_chunk) in seeds.chunks(chunk).enumerate() {
                    let city = &city;
                    let field = &field;
                    let demand = &demand;
                    let hist = cfg.hist;
                    handles.push(scope.spawn(move |_| {
                        let base = ci * chunk;
                        seed_chunk
                            .iter()
                            .enumerate()
                            .map(|(off, &seed)| {
                                let t = base + off;
                                let mut rng = Rng64::new(seed);
                                let trips = demand.sample_interval(city, field, t, &mut rng);
                                (OdTensor::from_trips(n, &hist, &trips), trips)
                            })
                            .collect::<Vec<_>>()
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| h.join().expect("generation worker"))
                    .collect()
            })
            .expect("generation scope");
        let mut tensors = Vec::with_capacity(total);
        let mut trips = Vec::with_capacity(total);
        for block in results {
            for (tensor, interval_trips) in block {
                tensors.push(tensor);
                trips.push(interval_trips);
            }
        }
        (
            OdDataset {
                city,
                spec: cfg.hist,
                intervals_per_day: cfg.intervals_per_day,
                tensors,
            },
            trips,
        )
    }

    /// Number of regions.
    pub fn num_regions(&self) -> usize {
        self.city.num_regions()
    }

    /// Number of intervals.
    pub fn num_intervals(&self) -> usize {
        self.tensors.len()
    }

    /// All valid sliding windows for a given `(s, h)` setting.
    pub fn windows(&self, s: usize, h: usize) -> Vec<Window> {
        assert!(s >= 1 && h >= 1, "need s ≥ 1 and h ≥ 1");
        let total = self.num_intervals();
        if total < s + h {
            return Vec::new();
        }
        (s - 1..total - h)
            .map(|t_end| Window { t_end, s, h })
            .collect()
    }

    /// Chronological split by fractions (e.g. 0.7/0.1/0.2). Windows whose
    /// *targets* leak across a boundary stay in the earlier part, keeping
    /// the test targets strictly unseen during training.
    pub fn split(&self, windows: &[Window], train_frac: f64, val_frac: f64) -> Split {
        assert!(train_frac > 0.0 && val_frac >= 0.0 && train_frac + val_frac < 1.0);
        let total = self.num_intervals();
        let train_end = (total as f64 * train_frac) as usize;
        let val_end = (total as f64 * (train_frac + val_frac)) as usize;
        let mut split = Split {
            train: Vec::new(),
            val: Vec::new(),
            test: Vec::new(),
        };
        for &w in windows {
            let last_target = w.t_end + w.h;
            if last_target < train_end {
                split.train.push(w);
            } else if last_target < val_end {
                split.val.push(w);
            } else {
                split.test.push(w);
            }
        }
        split
    }

    /// Interval-of-day for a global interval index.
    pub fn interval_of_day(&self, t: usize) -> usize {
        t % self.intervals_per_day
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> OdDataset {
        let cfg = SimConfig {
            num_days: 2,
            intervals_per_day: 12,
            trips_per_interval: 60.0,
            ..SimConfig::small(3)
        };
        OdDataset::generate(CityModel::small(6), &cfg)
    }

    #[test]
    fn generation_shapes() {
        let ds = tiny();
        assert_eq!(ds.num_intervals(), 24);
        assert_eq!(ds.num_regions(), 6);
        for t in &ds.tensors {
            assert_eq!(t.data.dims(), &[6, 6, 7]);
            t.check_invariants().unwrap();
        }
    }

    #[test]
    fn data_is_sparse_but_nonempty() {
        let ds = tiny();
        let mean_cov: f64 =
            ds.tensors.iter().map(|t| t.coverage()).sum::<f64>() / ds.num_intervals() as f64;
        assert!(mean_cov > 0.02, "no data generated, coverage {mean_cov}");
        assert!(
            mean_cov < 0.95,
            "data unrealistically dense, coverage {mean_cov}"
        );
    }

    #[test]
    fn windows_cover_valid_range() {
        let ds = tiny();
        let ws = ds.windows(3, 2);
        assert_eq!(ws.first().unwrap().t_end, 2);
        assert_eq!(ws.last().unwrap().t_end, 21); // 24 − 2 − 1
        let w = ws[0];
        assert_eq!(w.input_indices(), vec![0, 1, 2]);
        assert_eq!(w.target_indices(), vec![3, 4]);
    }

    #[test]
    fn windows_empty_when_too_short() {
        let ds = tiny();
        assert!(ds.windows(20, 10).is_empty());
    }

    #[test]
    fn split_is_chronological_and_exhaustive() {
        let ds = tiny();
        let ws = ds.windows(3, 1);
        let split = ds.split(&ws, 0.6, 0.2);
        assert_eq!(
            split.train.len() + split.val.len() + split.test.len(),
            ws.len()
        );
        let max_train = split.train.iter().map(|w| w.t_end + w.h).max().unwrap();
        let min_test = split.test.iter().map(|w| w.t_end + w.h).min().unwrap();
        assert!(
            max_train < min_test,
            "train targets must precede test targets"
        );
        assert!(!split.train.is_empty() && !split.test.is_empty());
    }

    #[test]
    fn deterministic_generation() {
        let a = tiny();
        let b = tiny();
        for (x, y) in a.tensors.iter().zip(b.tensors.iter()) {
            assert_eq!(x.data.data(), y.data.data());
        }
    }

    #[test]
    fn interval_of_day_wraps() {
        let ds = tiny();
        assert_eq!(ds.interval_of_day(13), 1);
    }
}
