//! The latent ground-truth speed process.
//!
//! Travel speed between an OD pair is driven by (i) a static per-pair base
//! speed that grows with trip distance (longer trips ride arterials), and
//! (ii) a dynamic *congestion field* over regions with the three
//! properties the paper's models target:
//!
//! * a **daily profile** with morning and evening rush peaks,
//! * **spatial diffusion** over the region graph — congested regions pull
//!   their neighbors up, producing the spatial correlation §I motivates,
//! * autoregressive **temporal persistence** plus noise.
//!
//! Individual trip speeds are noisy draws around the pair's current mean,
//! with an occasional slow outlier (signal stops, detours), so that the
//! per-cell speed *distribution* is genuinely stochastic.

use crate::city::CityModel;
use crate::weather::WeatherSeries;
use stod_tensor::rng::Rng64;

/// Parameters of the latent speed process (speeds in m/s, as in the
/// paper's 7-bucket histogram support `[0,3),…,[18,∞)`).
#[derive(Debug, Clone, Copy)]
pub struct SpeedParams {
    /// Base speed of the shortest trips.
    pub base_min_ms: f64,
    /// Asymptotic base speed of long trips.
    pub base_max_ms: f64,
    /// Distance constant (km) of the base-speed saturation.
    pub base_dist_km: f64,
    /// Speed lost per unit of congestion (m/s at congestion 1.0).
    pub congestion_gain: f64,
    /// Fraction of congestion diffusing to graph neighbors per interval.
    pub diffusion: f64,
    /// Temporal persistence of congestion per interval.
    pub decay: f64,
    /// Std-dev of the congestion innovation noise.
    pub noise: f64,
    /// Mean number of traffic incidents per region per day.
    pub incident_rate_per_day: f64,
    /// Congestion added by an active incident.
    pub incident_severity: f64,
    /// Mean incident duration in intervals.
    pub incident_duration: f64,
    /// Std-dev of the per-day severity multiplier (day-to-day variation
    /// that calendar-only models cannot predict).
    pub day_severity_std: f64,
    /// Std-dev of individual trip speeds around the pair mean (m/s).
    pub trip_noise_ms: f64,
    /// Probability of a slow outlier trip (speed halved).
    pub outlier_prob: f64,
    /// Hard lower bound on speeds (m/s).
    pub min_speed_ms: f64,
    /// Hard upper bound on speeds (m/s).
    pub max_speed_ms: f64,
}

impl Default for SpeedParams {
    fn default() -> Self {
        SpeedParams {
            base_min_ms: 6.0,
            base_max_ms: 15.0,
            base_dist_km: 2.0,
            congestion_gain: 9.0,
            diffusion: 0.35,
            decay: 0.80,
            noise: 0.10,
            incident_rate_per_day: 1.2,
            incident_severity: 0.55,
            incident_duration: 8.0,
            day_severity_std: 0.35,
            trip_noise_ms: 2.0,
            outlier_prob: 0.06,
            min_speed_ms: 0.7,
            max_speed_ms: 23.0,
        }
    }
}

/// Smooth daily congestion profile in `[0, 1]` with rush peaks at 08:00
/// and 18:00.
pub fn daily_profile(interval_of_day: usize, intervals_per_day: usize) -> f64 {
    let h = interval_of_day as f64 / intervals_per_day as f64 * 24.0;
    let peak =
        |center: f64, width: f64, height: f64| height * (-((h - center) / width).powi(2)).exp();
    (0.15 + peak(8.0, 1.6, 0.9) + peak(18.0, 2.0, 1.0)).min(1.2)
}

/// The simulated latent speed field: congestion per region per interval
/// plus static per-pair base speeds.
pub struct SpeedField {
    num_regions: usize,
    intervals_per_day: usize,
    /// `congestion[t][i]` ∈ [0, ~1.5].
    congestion: Vec<Vec<f64>>,
    /// Static per-pair base speed, row-major `N×N`.
    base: Vec<f64>,
    /// Per-region congestion sensitivity.
    sensitivity: Vec<f64>,
    params: SpeedParams,
}

impl SpeedField {
    /// Simulates the congestion process for `num_intervals` intervals
    /// under permanently clear weather (the paper's context-free setting).
    pub fn simulate(
        city: &CityModel,
        intervals_per_day: usize,
        num_intervals: usize,
        seed: u64,
        params: SpeedParams,
    ) -> SpeedField {
        Self::simulate_with_weather(
            city,
            intervals_per_day,
            num_intervals,
            seed,
            params,
            &WeatherSeries::clear(num_intervals),
        )
    }

    /// Simulates the congestion process with an exogenous weather series
    /// adding city-wide congestion (§VII outlook: contextual information).
    pub fn simulate_with_weather(
        city: &CityModel,
        intervals_per_day: usize,
        num_intervals: usize,
        seed: u64,
        params: SpeedParams,
        weather: &WeatherSeries,
    ) -> SpeedField {
        assert!(weather.len() >= num_intervals, "weather series too short");
        let n = city.num_regions();
        let mut rng = Rng64::new(seed ^ 0x5BEED);

        // Static base speeds: distance-saturating + a per-pair offset.
        let mut base = vec![0.0f64; n * n];
        for o in 0..n {
            for d in 0..n {
                let dist = city.distance_km(o, d);
                let sat = 1.0 - (-dist / params.base_dist_km).exp();
                let jitter = rng.uniform(-0.3, 0.3);
                base[o * n + d] =
                    params.base_min_ms + (params.base_max_ms - params.base_min_ms) * sat + jitter;
            }
        }

        // Region graph for diffusion: neighbors within 1.5 km, row-normalized.
        let mut neighbors: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, list) in neighbors.iter_mut().enumerate() {
            for j in 0..n {
                if i != j && city.distance_km(i, j) <= 1.5 {
                    list.push(j);
                }
            }
        }

        // Congestion sensitivity grows with attraction (busy regions jam).
        let max_attr = city
            .regions
            .iter()
            .map(|r| r.attraction)
            .fold(f64::MIN, f64::max)
            .max(1e-9);
        let sensitivity: Vec<f64> = city
            .regions
            .iter()
            .map(|r| 0.35 + 0.65 * r.attraction / max_attr + rng.uniform(-0.05, 0.05))
            .collect();

        // Roll the AR(1)+diffusion process forward, with two sources of
        // calendar-unpredictable variation: a per-day severity multiplier
        // and localized incidents that flare up and decay. Both are what
        // make *near-history* (the last s intervals) genuinely informative
        // beyond time-of-day patterns.
        let mut congestion = Vec::with_capacity(num_intervals);
        let mut c = vec![0.2f64; n];
        let mut incident = vec![0.0f64; n];
        let mut day_severity = 1.0f64;
        let incident_per_interval = params.incident_rate_per_day / intervals_per_day.max(1) as f64;
        for t in 0..num_intervals {
            if t % intervals_per_day == 0 {
                day_severity =
                    (1.0 + params.day_severity_std * rng.next_gaussian()).clamp(0.4, 1.8);
            }
            let profile = daily_profile(t % intervals_per_day, intervals_per_day);
            let mut next = vec![0.0f64; n];
            for i in 0..n {
                // Incidents: Poisson arrivals, exponential decay.
                if rng.next_f64() < incident_per_interval {
                    incident[i] += params.incident_severity;
                }
                incident[i] *= 1.0 - 1.0 / params.incident_duration.max(1.0);
                let neigh_mean = if neighbors[i].is_empty() {
                    c[i]
                } else {
                    neighbors[i].iter().map(|&j| c[j]).sum::<f64>() / neighbors[i].len() as f64
                };
                let mixed = (1.0 - params.diffusion) * c[i] + params.diffusion * neigh_mean;
                let drive = (day_severity * profile * sensitivity[i] + 0.6 * weather.factor(t))
                    * (1.0 - params.decay);
                next[i] = (params.decay * mixed
                    + drive
                    + incident[i] * (1.0 - params.decay)
                    + params.noise * rng.next_gaussian())
                .clamp(0.0, 1.8);
            }
            c = next;
            congestion.push(c.clone());
        }

        SpeedField {
            num_regions: n,
            intervals_per_day,
            congestion,
            base,
            sensitivity,
            params,
        }
    }

    /// Number of simulated intervals.
    pub fn num_intervals(&self) -> usize {
        self.congestion.len()
    }

    /// Intervals per day used by the simulation.
    pub fn intervals_per_day(&self) -> usize {
        self.intervals_per_day
    }

    /// Congestion level of region `i` during interval `t`.
    pub fn congestion(&self, t: usize, i: usize) -> f64 {
        self.congestion[t][i]
    }

    /// Mean travel speed (m/s) for OD pair `(o, d)` during interval `t`.
    pub fn mean_speed_ms(&self, o: usize, d: usize, t: usize) -> f64 {
        let n = self.num_regions;
        let cong = 0.5 * (self.congestion[t][o] + self.congestion[t][d]);
        (self.base[o * n + d] - self.params.congestion_gain * cong)
            .clamp(self.params.min_speed_ms, self.params.max_speed_ms)
    }

    /// Draws one trip's average speed (m/s) for `(o, d)` at interval `t`.
    pub fn sample_trip_speed(&self, o: usize, d: usize, t: usize, rng: &mut Rng64) -> f64 {
        let mean = self.mean_speed_ms(o, d, t);
        let mut v = mean + self.params.trip_noise_ms * rng.next_gaussian();
        if rng.next_f64() < self.params.outlier_prob {
            v *= 0.5; // signal storms, detours, passenger stops
        }
        v.clamp(self.params.min_speed_ms, self.params.max_speed_ms)
    }

    /// Per-region congestion sensitivity (exposed for tests/diagnostics).
    pub fn sensitivity(&self, i: usize) -> f64 {
        self.sensitivity[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::city::CityModel;

    fn field() -> SpeedField {
        SpeedField::simulate(&CityModel::small(9), 48, 48 * 3, 1, SpeedParams::default())
    }

    #[test]
    fn daily_profile_peaks_at_rush_hours() {
        let ipd = 96;
        let at = |h: f64| daily_profile((h / 24.0 * ipd as f64) as usize, ipd);
        assert!(at(8.0) > at(3.0), "morning rush above night");
        assert!(at(18.0) > at(12.0), "evening rush above midday");
        assert!(at(18.0) > at(22.0));
    }

    #[test]
    fn congestion_bounded_and_finite() {
        let f = field();
        for t in 0..f.num_intervals() {
            for i in 0..9 {
                let c = f.congestion(t, i);
                assert!((0.0..=1.8).contains(&c), "congestion out of range: {c}");
            }
        }
    }

    #[test]
    fn rush_hour_slower_than_night() {
        let f = field();
        // Average over days and pairs: interval at 8:00 vs 03:00.
        let ipd = 48;
        let morning = ipd * 8 / 24;
        let night = ipd * 3 / 24;
        let mut slow = 0.0;
        let mut fast = 0.0;
        for day in 0..3 {
            for o in 0..9 {
                for d in 0..9 {
                    slow += f.mean_speed_ms(o, d, day * ipd + morning);
                    fast += f.mean_speed_ms(o, d, day * ipd + night);
                }
            }
        }
        assert!(slow < fast, "rush hour must be slower on average");
    }

    #[test]
    fn speeds_within_bounds() {
        let f = field();
        let mut rng = Rng64::new(2);
        let p = SpeedParams::default();
        for t in (0..f.num_intervals()).step_by(7) {
            for o in 0..9 {
                for d in 0..9 {
                    let v = f.sample_trip_speed(o, d, t, &mut rng);
                    assert!(v >= p.min_speed_ms && v <= p.max_speed_ms);
                }
            }
        }
    }

    #[test]
    fn longer_pairs_have_higher_base_speed() {
        let f = field();
        // Region 0 and 8 are grid corners (far); 0 and 1 adjacent. Compare
        // at the same interval so congestion cancels on average.
        let mut far = 0.0;
        let mut near = 0.0;
        for t in 0..f.num_intervals() {
            far += f.mean_speed_ms(0, 8, t);
            near += f.mean_speed_ms(0, 1, t);
        }
        assert!(far > near, "distance saturation should speed up long trips");
    }

    #[test]
    fn spatial_correlation_present() {
        // Congestion of adjacent regions must correlate more strongly than
        // congestion of far-apart regions.
        let city = CityModel::grid(4, 4, 0.7);
        let f = SpeedField::simulate(&city, 48, 48 * 6, 3, SpeedParams::default());
        let series =
            |i: usize| -> Vec<f64> { (0..f.num_intervals()).map(|t| f.congestion(t, i)).collect() };
        let corr = |a: &[f64], b: &[f64]| -> f64 {
            let n = a.len() as f64;
            let (ma, mb) = (a.iter().sum::<f64>() / n, b.iter().sum::<f64>() / n);
            let cov: f64 = a.iter().zip(b).map(|(&x, &y)| (x - ma) * (y - mb)).sum();
            let va: f64 = a.iter().map(|&x| (x - ma).powi(2)).sum();
            let vb: f64 = b.iter().map(|&y| (y - mb).powi(2)).sum();
            cov / (va.sqrt() * vb.sqrt()).max(1e-12)
        };
        // Region 5 is adjacent to 6; region 0 and 15 are opposite corners.
        let c_near = corr(&series(5), &series(6));
        let c_far = corr(&series(0), &series(15));
        assert!(
            c_near > c_far - 0.05,
            "adjacent congestion should correlate at least as much (near {c_near}, far {c_far})"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let city = CityModel::small(6);
        let a = SpeedField::simulate(&city, 24, 48, 9, SpeedParams::default());
        let b = SpeedField::simulate(&city, 24, 48, 9, SpeedParams::default());
        for t in 0..48 {
            for i in 0..6 {
                assert_eq!(a.congestion(t, i), b.congestion(t, i));
            }
        }
    }
}
