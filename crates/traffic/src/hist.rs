//! Equi-width speed histograms (§III).
//!
//! The paper represents a stochastic speed as an equi-width histogram with
//! `K` buckets; both data sets use 7 buckets of 3 m/s:
//! `[0,3), [3,6), [6,9), [9,12), [12,15), [15,18), [18,∞)`.

/// Specification of an equi-width histogram with an open-ended last bucket.
///
/// ```
/// use stod_traffic::HistogramSpec;
///
/// let spec = HistogramSpec::paper(); // 7 buckets of 3 m/s
/// let h = spec.build(&[2.0, 4.0, 4.5, 20.0]).unwrap();
/// assert_eq!(h.len(), 7);
/// assert_eq!(h[0], 0.25);  // one of four speeds fell in [0, 3)
/// assert_eq!(h[1], 0.5);   // two in [3, 6)
/// assert_eq!(h[6], 0.25);  // one in [18, ∞)
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSpec {
    /// Number of buckets `K`.
    pub num_buckets: usize,
    /// Width of each (closed) bucket, in m/s.
    pub bucket_width: f64,
}

impl HistogramSpec {
    /// The paper's 7×3 m/s specification.
    pub fn paper() -> Self {
        HistogramSpec {
            num_buckets: 7,
            bucket_width: 3.0,
        }
    }

    /// Bucket index for a speed value (values below 0 clamp to bucket 0;
    /// values beyond the last boundary land in the open last bucket).
    pub fn bucket_of(&self, speed_ms: f64) -> usize {
        if speed_ms <= 0.0 {
            return 0;
        }
        ((speed_ms / self.bucket_width) as usize).min(self.num_buckets - 1)
    }

    /// `[lo, hi)` bounds of bucket `k`; the last bucket's `hi` is `+∞`.
    pub fn bounds(&self, k: usize) -> (f64, f64) {
        assert!(k < self.num_buckets, "bucket {k} out of range");
        let lo = k as f64 * self.bucket_width;
        let hi = if k + 1 == self.num_buckets {
            f64::INFINITY
        } else {
            (k + 1) as f64 * self.bucket_width
        };
        (lo, hi)
    }

    /// Representative (midpoint) speed of bucket `k`; the open last bucket
    /// uses its lower bound plus half a width.
    pub fn midpoint(&self, k: usize) -> f64 {
        let (lo, hi) = self.bounds(k);
        if hi.is_infinite() {
            lo + 0.5 * self.bucket_width
        } else {
            0.5 * (lo + hi)
        }
    }

    /// Builds a normalized histogram (probability vector) from observed
    /// speeds. Returns `None` when no speeds are given — an *empty cell*.
    pub fn build(&self, speeds: &[f64]) -> Option<Vec<f32>> {
        if speeds.is_empty() {
            return None;
        }
        let mut h = vec![0.0f32; self.num_buckets];
        for &v in speeds {
            h[self.bucket_of(v)] += 1.0;
        }
        let inv = 1.0 / speeds.len() as f32;
        for x in &mut h {
            *x *= inv;
        }
        Some(h)
    }

    /// Expected speed (m/s) of a histogram under bucket midpoints.
    pub fn mean_speed(&self, hist: &[f32]) -> f64 {
        assert_eq!(hist.len(), self.num_buckets, "histogram length mismatch");
        hist.iter()
            .enumerate()
            .map(|(k, &p)| p as f64 * self.midpoint(k))
            .sum()
    }

    /// Converts a *speed* histogram over a trip of `distance_km` into a
    /// travel-time distribution: `(seconds_lo, seconds_hi, probability)`
    /// triples, slowest speeds (longest times) last. This is the §I
    /// airport-trip derivation.
    pub fn travel_time_distribution(&self, hist: &[f32], distance_km: f64) -> Vec<(f64, f64, f32)> {
        assert_eq!(hist.len(), self.num_buckets, "histogram length mismatch");
        let meters = distance_km * 1000.0;
        let mut out = Vec::with_capacity(self.num_buckets);
        for (k, &p) in hist.iter().enumerate() {
            if p <= 0.0 {
                continue;
            }
            let (lo, hi) = self.bounds(k);
            // Faster speed → shorter time; lo speed bound gives hi time.
            let t_hi = if lo <= 0.0 {
                f64::INFINITY
            } else {
                meters / lo
            };
            let t_lo = if hi.is_infinite() { 0.0 } else { meters / hi };
            out.push((t_lo, t_hi, p));
        }
        out
    }

    /// The time (seconds) a traveller must budget to arrive with
    /// probability at least `quantile` (the paper's "reserve at least 90
    /// minutes" computation).
    pub fn travel_time_quantile(&self, hist: &[f32], distance_km: f64, quantile: f64) -> f64 {
        let mut dist = self.travel_time_distribution(hist, distance_km);
        dist.sort_by(|a, b| a.1.total_cmp(&b.1));
        let mut acc = 0.0f64;
        for (_, t_hi, p) in dist {
            acc += p as f64;
            if acc + 1e-9 >= quantile {
                return t_hi;
            }
        }
        f64::INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_spec_buckets() {
        let s = HistogramSpec::paper();
        assert_eq!(s.bucket_of(0.0), 0);
        assert_eq!(s.bucket_of(2.99), 0);
        assert_eq!(s.bucket_of(3.0), 1);
        assert_eq!(s.bucket_of(17.9), 5);
        assert_eq!(s.bucket_of(18.0), 6);
        assert_eq!(s.bucket_of(99.0), 6);
        assert_eq!(s.bounds(6), (18.0, f64::INFINITY));
    }

    #[test]
    fn build_normalizes() {
        let s = HistogramSpec::paper();
        let h = s.build(&[1.0, 2.0, 4.0, 20.0]).unwrap();
        assert_eq!(h[0], 0.5);
        assert_eq!(h[1], 0.25);
        assert_eq!(h[6], 0.25);
        assert!((h.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn empty_speeds_give_none() {
        assert!(HistogramSpec::paper().build(&[]).is_none());
    }

    #[test]
    fn negative_speed_clamps_to_first_bucket() {
        assert_eq!(HistogramSpec::paper().bucket_of(-3.0), 0);
    }

    #[test]
    fn mean_speed_of_point_mass() {
        let s = HistogramSpec::paper();
        let mut h = vec![0.0f32; 7];
        h[2] = 1.0; // [6,9) → midpoint 7.5
        assert!((s.mean_speed(&h) - 7.5).abs() < 1e-9);
    }

    #[test]
    fn travel_time_distribution_matches_intro_example() {
        // §I example: 15 km trip, speeds (km/h) [10,20):0.5, [20,30):0.3,
        // [30,40):0.2 → times 45–90 min: 0.5, 30–45: 0.3, 22.5–30: 0.2.
        // Re-expressed in m/s with ~2.78 m/s buckets.
        let s = HistogramSpec {
            num_buckets: 4,
            bucket_width: 10.0 / 3.6,
        };
        let hist = [0.0f32, 0.5, 0.3, 0.2]; // bucket 1 = 10-20 km/h, …
        let dist = s.travel_time_distribution(&hist, 15.0);
        assert_eq!(dist.len(), 3);
        // Slowest bucket: hi time = 15 km at 10 km/h = 90 min.
        let slow = dist.iter().find(|d| d.2 == 0.5).unwrap();
        assert!(
            (slow.1 / 60.0 - 90.0).abs() < 0.5,
            "slow hi = {}",
            slow.1 / 60.0
        );
        assert!((slow.0 / 60.0 - 45.0).abs() < 0.5);
    }

    #[test]
    fn quantile_reserves_enough_time() {
        let s = HistogramSpec {
            num_buckets: 4,
            bucket_width: 10.0 / 3.6,
        };
        let hist = [0.0f32, 0.5, 0.3, 0.2];
        // To be safe with probability 1.0 the traveller needs 90 minutes.
        let t = s.travel_time_quantile(&hist, 15.0, 1.0);
        assert!((t / 60.0 - 90.0).abs() < 0.5);
        // With probability 0.5, the two fast buckets suffice (45 min).
        let t50 = s.travel_time_quantile(&hist, 15.0, 0.5);
        assert!(t50 < t);
    }

    #[test]
    fn quantile_with_zero_speed_mass_is_infinite() {
        let s = HistogramSpec::paper();
        let mut h = vec![0.0f32; 7];
        h[0] = 1.0; // [0,3): the pessimistic bound is unbounded time
        assert!(!s.travel_time_quantile(&h, 1.0, 1.0).is_finite());
    }
}
