//! Synthetic city models: regions with centroids (km coordinates) and the
//! partition styles of Figure 1 — uniform grids and irregular road-based
//! partitions — plus presets shaped like the paper's two study areas.

use stod_tensor::rng::Rng64;

/// A city region (taxizone / road-bounded area) identified by its index.
#[derive(Debug, Clone, PartialEq)]
pub struct Region {
    /// Region id, equal to the region's index in the city's region list.
    pub id: usize,
    /// Centroid in kilometres from the city origin.
    pub centroid: (f64, f64),
    /// Relative attraction weight (population / activity density), ≥ 0.
    pub attraction: f64,
}

/// A partitioned city: the spatial substrate of every experiment.
#[derive(Debug, Clone)]
pub struct CityModel {
    /// Human-readable name (e.g. `"nyc-like"`).
    pub name: String,
    /// Regions, indexed by id.
    pub regions: Vec<Region>,
}

impl CityModel {
    /// Number of regions `N`.
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// Centroids as `(x, y)` pairs in km (the input to proximity matrices).
    pub fn centroids(&self) -> Vec<(f64, f64)> {
        self.regions.iter().map(|r| r.centroid).collect()
    }

    /// Euclidean centroid distance between two regions, in km.
    pub fn distance_km(&self, a: usize, b: usize) -> f64 {
        let (ax, ay) = self.regions[a].centroid;
        let (bx, by) = self.regions[b].centroid;
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }

    /// A uniform `rows × cols` grid partition with `cell_km` cell edge —
    /// the Figure 1(a) style. Attractions decay from the grid centre.
    pub fn grid(rows: usize, cols: usize, cell_km: f64) -> CityModel {
        let mut regions = Vec::with_capacity(rows * cols);
        let (cx, cy) = ((cols as f64 - 1.0) / 2.0, (rows as f64 - 1.0) / 2.0);
        for r in 0..rows {
            for c in 0..cols {
                let id = r * cols + c;
                let centroid = ((c as f64 + 0.5) * cell_km, (r as f64 + 0.5) * cell_km);
                // Center regions attract more traffic (CBD effect).
                let d = (((c as f64 - cx).powi(2) + (r as f64 - cy).powi(2)).sqrt() + 1.0).recip();
                regions.push(Region {
                    id,
                    centroid,
                    attraction: 0.3 + d,
                });
            }
        }
        CityModel {
            name: format!("grid{rows}x{cols}"),
            regions,
        }
    }

    /// An irregular road-based partition — Figure 1(b) style — produced by
    /// jittering seed points inside a disc of radius `radius_km`.
    pub fn irregular(n: usize, radius_km: f64, seed: u64) -> CityModel {
        let mut rng = Rng64::new(seed);
        let mut regions = Vec::with_capacity(n);
        for id in 0..n {
            // Rejection-sample points in the disc; sunflower fallback keeps
            // determinism even for adversarial seeds.
            let mut p = None;
            for _ in 0..64 {
                let x = rng.uniform(-radius_km, radius_km);
                let y = rng.uniform(-radius_km, radius_km);
                if x * x + y * y <= radius_km * radius_km {
                    p = Some((x + radius_km, y + radius_km));
                    break;
                }
            }
            let centroid = p.unwrap_or_else(|| {
                let theta = 2.399963 * id as f64; // golden angle
                let r = radius_km * ((id as f64 + 0.5) / n as f64).sqrt();
                (r * theta.cos() + radius_km, r * theta.sin() + radius_km)
            });
            // Attraction decays with distance from the ring centre, with
            // heavy-tailed variation (commercial hot spots).
            let dc = ((centroid.0 - radius_km).powi(2) + (centroid.1 - radius_km).powi(2)).sqrt();
            let hot = (-rng.next_f64().max(1e-9).ln()).powf(1.5) * 0.3;
            let attraction = 0.2 + (1.0 - dc / radius_km).max(0.0) + hot;
            regions.push(Region {
                id,
                centroid,
                attraction,
            });
        }
        CityModel {
            name: format!("irregular{n}"),
            regions,
        }
    }

    /// NYC-like preset: 67 regions in a narrow elongated strip (Manhattan
    /// is ≈ 3.7 km × 21.6 km; the taxizone partition has 67 zones).
    pub fn nyc_like(seed: u64) -> CityModel {
        let mut rng = Rng64::new(seed ^ 0x4E5943); // "NYC"
        let n = 67;
        let (width, height) = (3.7, 21.6);
        let mut regions = Vec::with_capacity(n);
        // Regular strip layout with jitter, densest downtown (low y).
        let rows = 23;
        let cols = 3;
        let mut id = 0usize;
        'outer: for r in 0..rows {
            for c in 0..cols {
                if id >= n {
                    break 'outer;
                }
                let x = (c as f64 + 0.5) / cols as f64 * width + rng.uniform(-0.3, 0.3);
                let y = (r as f64 + 0.5) / rows as f64 * height + rng.uniform(-0.3, 0.3);
                // Midtown/downtown attract more (y around 25% and 55%).
                let yn = y / height;
                let a = 0.3
                    + 1.2 * (-((yn - 0.25) / 0.12).powi(2)).exp()
                    + 0.9 * (-((yn - 0.55) / 0.15).powi(2)).exp();
                regions.push(Region {
                    id,
                    centroid: (x, y),
                    attraction: a,
                });
                id += 1;
            }
        }
        // Strip layout yields 69 slots; we stop at 67 like the taxizones.
        CityModel {
            name: "nyc-like".into(),
            regions,
        }
    }

    /// Chengdu-like preset: 79 irregular regions inside the (circular)
    /// second ring road, radius ≈ 4.5 km.
    pub fn chengdu_like(seed: u64) -> CityModel {
        let mut c = CityModel::irregular(79, 4.5, seed ^ 0x4344); // "CD"
        c.name = "chengdu-like".into();
        c
    }

    /// Metropolis preset for the big-city scale tier: `n ∈ [500, 5000]`
    /// regions organized into districts. District centres sit on a
    /// jittered sunflower spiral inside a disc whose radius grows with
    /// `√n`, so mean region spacing — and hence the density of the
    /// thresholded-Gaussian proximity graph under the paper-default
    /// kernel (σ = 1 km, α = 0.1) — stays roughly constant as the city
    /// scales: ≈ 1–3 % non-zeros at `n = 1000`. Regions scatter
    /// Gaussian around their district centre; district populations are
    /// heavy-tailed (a CBD district collects the most regions and the
    /// highest attractions).
    pub fn metropolis(n: usize, seed: u64) -> CityModel {
        assert!(
            (500..=5000).contains(&n),
            "metropolis tier covers 500–5000 regions, got {n}"
        );
        let mut rng = Rng64::new(seed ^ 0x4D4554); // "MET"
        let radius_km = 0.5 * (n as f64).sqrt();
        let districts = (n / 75).clamp(6, 48);

        // District centres + heavy-tailed population weights (district 0
        // is the CBD: innermost and most attractive).
        let mut centers = Vec::with_capacity(districts);
        let mut weights = Vec::with_capacity(districts);
        for k in 0..districts {
            let theta = 2.399963 * k as f64; // golden angle
            let r = 0.82 * radius_km * ((k as f64 + 0.5) / districts as f64).sqrt();
            centers.push((
                r * theta.cos() + rng.uniform(-1.0, 1.0),
                r * theta.sin() + rng.uniform(-1.0, 1.0),
            ));
            weights.push((k as f64 + 1.0).powf(-0.6));
        }
        // District spread: tight enough that districts are visible
        // clusters, wide enough that neighbouring districts overlap.
        let spread = 0.3 * radius_km / (districts as f64).sqrt();

        let mut regions = Vec::with_capacity(n);
        for id in 0..n {
            let k = rng.sample_weighted(&weights);
            let (cx, cy) = centers[k];
            let centroid = (
                cx + spread * rng.next_gaussian(),
                cy + spread * rng.next_gaussian(),
            );
            // Attraction: district-core gravity (CBD strongest) plus
            // heavy-tailed commercial hot spots, as in `irregular`.
            let dd = ((centroid.0 - cx).powi(2) + (centroid.1 - cy).powi(2)).sqrt();
            let core = weights[k] * (1.0 - dd / (3.0 * spread)).max(0.0);
            let hot = (-rng.next_f64().max(1e-9).ln()).powf(1.5) * 0.3;
            regions.push(Region {
                id,
                centroid: (centroid.0 + radius_km, centroid.1 + radius_km),
                attraction: 0.2 + core + hot,
            });
        }
        CityModel {
            name: format!("metropolis{n}"),
            regions,
        }
    }

    /// Small test city: an `n`-region compact grid (n must have an integer
    /// factorization close to square; any `n` works, extra cells dropped).
    pub fn small(n: usize) -> CityModel {
        let cols = (n as f64).sqrt().ceil() as usize;
        let rows = n.div_ceil(cols);
        let mut c = CityModel::grid(rows, cols, 0.7);
        c.regions.truncate(n);
        c.name = format!("small{n}");
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_layout() {
        let c = CityModel::grid(2, 3, 1.0);
        assert_eq!(c.num_regions(), 6);
        assert_eq!(c.regions[0].centroid, (0.5, 0.5));
        assert_eq!(c.regions[5].centroid, (2.5, 1.5));
        // Horizontal neighbors are 1 km apart.
        assert!((c.distance_km(0, 1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn grid_center_attracts_most() {
        let c = CityModel::grid(5, 5, 1.0);
        let center = c.regions[12].attraction;
        let corner = c.regions[0].attraction;
        assert!(center > corner);
    }

    #[test]
    fn nyc_preset_shape() {
        let c = CityModel::nyc_like(7);
        assert_eq!(c.num_regions(), 67);
        let xs: Vec<f64> = c.regions.iter().map(|r| r.centroid.0).collect();
        let ys: Vec<f64> = c.regions.iter().map(|r| r.centroid.1).collect();
        let span_x = xs.iter().cloned().fold(f64::MIN, f64::max)
            - xs.iter().cloned().fold(f64::MAX, f64::min);
        let span_y = ys.iter().cloned().fold(f64::MIN, f64::max)
            - ys.iter().cloned().fold(f64::MAX, f64::min);
        assert!(span_y > 3.0 * span_x, "Manhattan strip must be elongated");
    }

    #[test]
    fn chengdu_preset_inside_ring() {
        let c = CityModel::chengdu_like(3);
        assert_eq!(c.num_regions(), 79);
        for r in &c.regions {
            let d = ((r.centroid.0 - 4.5).powi(2) + (r.centroid.1 - 4.5).powi(2)).sqrt();
            assert!(d <= 4.5 + 1e-9, "region {} escaped the ring road", r.id);
        }
    }

    #[test]
    fn presets_deterministic_per_seed() {
        let a = CityModel::chengdu_like(5);
        let b = CityModel::chengdu_like(5);
        assert_eq!(a.regions, b.regions);
        let c = CityModel::chengdu_like(6);
        assert_ne!(a.regions, c.regions);
    }

    #[test]
    fn small_city_truncates() {
        let c = CityModel::small(10);
        assert_eq!(c.num_regions(), 10);
        assert!(c.regions.iter().enumerate().all(|(i, r)| r.id == i));
    }

    #[test]
    fn attractions_positive() {
        for city in [
            CityModel::nyc_like(1),
            CityModel::chengdu_like(1),
            CityModel::small(9),
            CityModel::metropolis(500, 1),
        ] {
            assert!(city.regions.iter().all(|r| r.attraction > 0.0));
        }
    }

    #[test]
    fn metropolis_is_deterministic_and_sized() {
        let a = CityModel::metropolis(600, 11);
        let b = CityModel::metropolis(600, 11);
        assert_eq!(a.regions, b.regions);
        assert_eq!(a.num_regions(), 600);
        assert_ne!(a.regions, CityModel::metropolis(600, 12).regions);
    }

    #[test]
    #[should_panic(expected = "metropolis tier covers 500–5000")]
    fn metropolis_rejects_small_n() {
        CityModel::metropolis(100, 1);
    }

    /// The whole point of the tier: under the paper-default proximity
    /// kernel (σ = 1 km, cutoff ≈ 1.5 km) the metropolis graph must be
    /// sparse — a few percent non-zeros — so CSR propagation pays off.
    #[test]
    fn metropolis_proximity_graph_is_sparse() {
        let c = CityModel::metropolis(600, 3);
        let cents = c.centroids();
        let cutoff2 = 1.5169f64 * 1.5169; // σ√ln(1/α) for σ=1, α=0.1
        let mut nnz = 0usize;
        for i in 0..cents.len() {
            for j in 0..cents.len() {
                if i == j {
                    continue;
                }
                let (dx, dy) = (cents[i].0 - cents[j].0, cents[i].1 - cents[j].1);
                if dx * dx + dy * dy <= cutoff2 {
                    nnz += 1;
                }
            }
        }
        let density = nnz as f64 / (cents.len() * cents.len()) as f64;
        assert!(
            (0.002..0.08).contains(&density),
            "expected a sparse but connected proximity graph, density = {density:.4}"
        );
    }

    fn mean_nearest_neighbour_km(cents: &[(f64, f64)]) -> f64 {
        let mut nn_sum = 0.0;
        for i in 0..cents.len() {
            let mut best = f64::MAX;
            for j in 0..cents.len() {
                if i == j {
                    continue;
                }
                let (dx, dy) = (cents[i].0 - cents[j].0, cents[i].1 - cents[j].1);
                best = best.min((dx * dx + dy * dy).sqrt());
            }
            nn_sum += best;
        }
        nn_sum / cents.len() as f64
    }

    /// Districts must be visible: regions huddle around district
    /// centres, so nearest-neighbour distances are clearly tighter than
    /// a uniform scatter (`irregular`) over the same nominal disc.
    #[test]
    fn metropolis_has_district_structure() {
        let n = 500;
        let metro = mean_nearest_neighbour_km(&CityModel::metropolis(n, 7).centroids());
        let radius_km = 0.5 * (n as f64).sqrt();
        let uniform = mean_nearest_neighbour_km(&CityModel::irregular(n, radius_km, 7).centroids());
        assert!(
            metro < 0.8 * uniform,
            "regions should clump into districts: metro NN = {metro:.3} km \
             vs uniform NN = {uniform:.3} km"
        );
    }
}
