//! Shared experiment harness for the per-table / per-figure benches.
//!
//! Every bench target in `benches/` regenerates one artifact of the
//! paper's evaluation section (see the experiment index in `DESIGN.md`).
//! The dataset scale is controlled by the `STOD_SCALE` environment
//! variable:
//!
//! * `small` (default) — ≈16/18-region cities, 10 days, 48 intervals/day:
//!   minutes of CPU, same qualitative structure.
//! * `paper` — 67/79-region cities, 20 days, 96 intervals/day: the paper's
//!   spatial scale (hours of CPU).
//! * `city` — 500/600-region metropolis cities with a one-day horizon:
//!   the big-city tier that exercises the CSR sparse-graph path and the
//!   compact f16 serving pipeline (see the `city` bench probe).
//!
//! `STOD_EPOCHS` overrides the training epochs of the deep models.

pub mod header;
pub mod jsonv;

pub use header::BenchHeader;

use stod_baselines::{
    evaluate_predictor, FcModel, GpRegression, MrModel, NaiveHistograms, VarModel,
};
use stod_baselines::{fc::FcConfig, gp::GpParams, mr::MrParams, var::VarParams};
use stod_core::{evaluate, train, AfConfig, AfModel, BfConfig, BfModel, EvalReport, TrainConfig};
use stod_traffic::{CityModel, OdDataset, SimConfig, Split};

/// Which of the two study areas to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// Manhattan-like: elongated strip, no night shutdown.
    Nyc,
    /// Chengdu-like: ring-road disc, no data 00:00–06:00.
    Chengdu,
}

impl Dataset {
    /// Display name used in the tables.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::Nyc => "NYC",
            Dataset::Chengdu => "CD",
        }
    }
}

/// Experiment scale resolved from `STOD_SCALE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Default scaled-down experiments.
    Small,
    /// Paper-sized cities and horizons.
    Paper,
    /// Big-city tier: metropolis cities (≥ 500 regions) with a short
    /// horizon — exercises the CSR sparse-graph path and the compact
    /// f16 serving pipeline rather than the paper's full experiments.
    City,
}

impl Scale {
    /// Parses a `STOD_SCALE` value. Only the exact strings `small`,
    /// `paper` and `city` are accepted — anything else (e.g. the typo
    /// `Paper`) is an error rather than a silent fall-through to
    /// `small`, which would quietly run a many-hour experiment at the
    /// wrong scale.
    pub fn parse(value: &str) -> Result<Scale, String> {
        match value {
            "small" => Ok(Scale::Small),
            "paper" => Ok(Scale::Paper),
            "city" => Ok(Scale::City),
            other => Err(format!(
                "STOD_SCALE must be \"small\", \"paper\" or \"city\", got {other:?}"
            )),
        }
    }

    /// Reads `STOD_SCALE` (default `small`).
    ///
    /// # Panics
    /// Panics with a clear message when the variable is set to an
    /// unknown value.
    pub fn from_env() -> Scale {
        match std::env::var("STOD_SCALE") {
            Ok(v) => Scale::parse(&v).unwrap_or_else(|e| panic!("{e}")),
            Err(_) => Scale::Small,
        }
    }
}

/// Training epochs: `STOD_EPOCHS` override, otherwise the default.
pub fn epochs_from_env(default: usize) -> usize {
    std::env::var("STOD_EPOCHS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Builds the simulated stand-in for one of the paper's datasets.
pub fn build_dataset(which: Dataset, scale: Scale, seed: u64) -> OdDataset {
    match (which, scale) {
        (Dataset::Nyc, Scale::Small) => {
            // Elongated 2×8 strip ≈ mini-Manhattan.
            let city = {
                let mut c = CityModel::grid(8, 2, 0.7);
                c.name = "nyc-small".into();
                c
            };
            let cfg = SimConfig {
                num_days: 10,
                intervals_per_day: 48,
                trips_per_interval: 300.0,
                night_shutdown: false,
                seed,
                ..SimConfig::small(seed)
            };
            OdDataset::generate(city, &cfg)
        }
        (Dataset::Chengdu, Scale::Small) => {
            let mut city = CityModel::irregular(18, 2.4, seed ^ 0xCD);
            city.name = "cd-small".into();
            let cfg = SimConfig {
                num_days: 10,
                intervals_per_day: 48,
                trips_per_interval: 280.0,
                night_shutdown: true,
                seed,
                ..SimConfig::small(seed)
            };
            OdDataset::generate(city, &cfg)
        }
        (Dataset::Nyc, Scale::Paper) => {
            OdDataset::generate(CityModel::nyc_like(seed), &SimConfig::nyc(seed))
        }
        (Dataset::Chengdu, Scale::Paper) => {
            OdDataset::generate(CityModel::chengdu_like(seed), &SimConfig::chengdu(seed))
        }
        // The city tier keeps the interval count short on purpose: OD
        // tensors are dense N×N'×K buffers, so at N = 500 each interval
        // already holds 1.75 M floats. A day's slice is enough to train
        // and serve a smoke model; the point of the tier is graph size,
        // not horizon length.
        (Dataset::Nyc, Scale::City) => {
            let city = CityModel::metropolis(500, seed);
            let cfg = SimConfig {
                num_days: 1,
                intervals_per_day: 16,
                trips_per_interval: 4000.0,
                night_shutdown: false,
                seed,
                ..SimConfig::small(seed)
            };
            OdDataset::generate(city, &cfg)
        }
        (Dataset::Chengdu, Scale::City) => {
            let city = CityModel::metropolis(600, seed ^ 0xCD);
            let cfg = SimConfig {
                num_days: 1,
                intervals_per_day: 16,
                trips_per_interval: 4000.0,
                night_shutdown: true,
                seed,
                ..SimConfig::small(seed)
            };
            OdDataset::generate(city, &cfg)
        }
    }
}

/// Chronological split shared by all experiments (70/10/20 as is standard
/// for these datasets).
pub fn standard_split(ds: &OdDataset, s: usize, h: usize) -> Split {
    let ws = ds.windows(s, h);
    ds.split(&ws, 0.7, 0.1)
}

/// Default train config for the experiment benches.
///
/// The paper trains with lr 1e-3 / dropout 0.2 at its data scale; on the
/// scaled-down simulated datasets the validation set selects a slightly
/// hotter schedule and lighter dropout (the models are ~100× smaller).
pub fn bench_train_config(seed: u64) -> TrainConfig {
    TrainConfig {
        epochs: epochs_from_env(30),
        batch_size: 16,
        schedule: stod_nn::optim::StepDecay {
            initial: 4e-3,
            decay: 0.8,
            every: 5,
        },
        dropout: 0.05,
        verbose: std::env::var("STOD_VERBOSE").is_ok(),
        seed,
        ..TrainConfig::default()
    }
}

/// The full method roster of Table II, in the paper's order.
pub const METHODS: [&str; 7] = ["NH", "GP", "VAR", "RNN", "MR", "BF", "AF"];

/// Runs one method end to end (fit/train on the split's train windows,
/// evaluate on its test windows) and returns its report.
pub fn run_method(name: &str, ds: &OdDataset, split: &Split, seed: u64) -> EvalReport {
    let s = split.test.first().map(|w| w.s).unwrap_or(3);
    let h = split.test.first().map(|w| w.h).unwrap_or(1);
    let train_end = split
        .train
        .iter()
        .map(|w| w.t_end + w.h)
        .max()
        .map(|t| t + 1)
        .unwrap_or(0);
    let n = ds.num_regions();
    let k = ds.spec.num_buckets;
    match name {
        "NH" => {
            let m = NaiveHistograms::fit(ds, train_end);
            evaluate_predictor(&m, ds, &split.test)
        }
        "GP" => {
            let m = GpRegression::fit(ds, train_end, GpParams::default());
            evaluate_predictor(&m, ds, &split.test)
        }
        "VAR" => {
            let m = VarModel::fit(
                ds,
                train_end,
                VarParams {
                    lags: s,
                    ..VarParams::default()
                },
            );
            evaluate_predictor(&m, ds, &split.test)
        }
        "MR" => {
            let m = MrModel::fit(ds, train_end, MrParams::default(), seed);
            evaluate_predictor(&m, ds, &split.test)
        }
        "RNN" | "FC" => {
            let mut m = FcModel::new(n, k, FcConfig::default(), seed);
            train(&mut m, ds, &split.train, None, &bench_train_config(seed));
            let mut r = evaluate(&m, ds, &split.test, 32);
            r.model = "RNN".into();
            r
        }
        "BF" => {
            let mut m = BfModel::new(n, k, BfConfig::default(), seed);
            train(&mut m, ds, &split.train, None, &bench_train_config(seed));
            evaluate(&m, ds, &split.test, 32)
        }
        "AF" => {
            let mut m = AfModel::new(&ds.city.centroids(), k, AfConfig::default(), seed);
            train(&mut m, ds, &split.train, None, &bench_train_config(seed));
            evaluate(&m, ds, &split.test, 32)
        }
        other => panic!("unknown method {other}"),
    }
    .tap_horizon(h)
}

/// Small helper trait: sanity-check a report's horizon.
trait TapHorizon {
    fn tap_horizon(self, h: usize) -> Self;
}

impl TapHorizon for EvalReport {
    fn tap_horizon(self, h: usize) -> Self {
        assert_eq!(self.per_step.len(), h, "report horizon mismatch");
        self
    }
}

/// Prints a markdown-style table row.
pub fn print_row(cells: &[String]) {
    println!("| {} |", cells.join(" | "));
}

/// Prints a markdown-style table separator for `n` columns.
pub fn print_sep(n: usize) {
    println!("|{}", "---|".repeat(n));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_env_parsing() {
        // Can't mutate the environment safely in parallel tests; just
        // check the default path.
        assert!(matches!(
            Scale::from_env(),
            Scale::Small | Scale::Paper | Scale::City
        ));
        assert!(epochs_from_env(7).max(1) >= 1);
    }

    #[test]
    fn scale_parse_accepts_known_values_only() {
        assert_eq!(Scale::parse("small"), Ok(Scale::Small));
        assert_eq!(Scale::parse("paper"), Ok(Scale::Paper));
        assert_eq!(Scale::parse("city"), Ok(Scale::City));
        for bad in ["Paper", "SMALL", "papper", "full", "City", ""] {
            let err = Scale::parse(bad).unwrap_err();
            assert!(
                err.contains("STOD_SCALE") && err.contains(bad),
                "error must name the variable and the bad value: {err}"
            );
        }
    }

    #[test]
    fn datasets_build_at_small_scale() {
        let nyc = build_dataset(Dataset::Nyc, Scale::Small, 1);
        assert_eq!(nyc.num_regions(), 16);
        assert_eq!(nyc.num_intervals(), 480);
        let cd = build_dataset(Dataset::Chengdu, Scale::Small, 1);
        assert_eq!(cd.num_regions(), 18);
        // Chengdu has no early-morning data.
        let three_am = 6; // interval 6 of 48 = 03:00
        assert_eq!(cd.tensors[three_am].num_observed(), 0);
    }

    #[test]
    fn split_and_nh_method_run() {
        let ds = build_dataset(Dataset::Nyc, Scale::Small, 2);
        let split = standard_split(&ds, 3, 1);
        assert!(!split.train.is_empty() && !split.test.is_empty());
        let r = run_method("NH", &ds, &split, 1);
        assert_eq!(r.per_step.len(), 1);
        assert!(r.per_step[0][2].is_finite());
    }
}
