//! A minimal read-only JSON parser for the bench artifacts.
//!
//! The vendored `serde` stub only *writes* JSON; the bench-regression gate
//! needs to *read* the artifacts it compares. This parser covers exactly
//! the JSON the probes emit — objects, arrays, strings with `\"`/`\\`/`\u`
//! escapes, numbers, booleans, null — and nothing more. It is not a
//! general-purpose JSON library and rejects anything it does not
//! understand rather than guessing.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Jv {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (lossless for integers up to 2^53).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Jv>),
    /// An object, in source order (keys may repeat; first wins on `get`).
    Obj(Vec<(String, Jv)>),
}

impl Jv {
    /// Field lookup on an object; `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Jv> {
        match self {
            Jv::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Jv::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Jv::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The numeric payload as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Jv::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Jv]> {
        match self {
            Jv::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one complete JSON document; trailing garbage is an error.
pub fn parse(src: &str) -> Result<Jv, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let v = value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at offset {}", ch as char, *pos))
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<Jv, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => Ok(Jv::Str(string(b, pos)?)),
        Some(b't') => literal(b, pos, "true", Jv::Bool(true)),
        Some(b'f') => literal(b, pos, "false", Jv::Bool(false)),
        Some(b'n') => literal(b, pos, "null", Jv::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        Some(c) => Err(format!(
            "unexpected byte {:?} at offset {}",
            *c as char, pos
        )),
        None => Err("unexpected end of input".into()),
    }
}

fn literal(b: &[u8], pos: &mut usize, word: &str, v: Jv) -> Result<Jv, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(v)
    } else {
        Err(format!("bad literal at offset {}", *pos))
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<Jv, String> {
    expect(b, pos, b'{')?;
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Jv::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        let key = string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        fields.push((key, value(b, pos)?));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Jv::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at offset {}", *pos)),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<Jv, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Jv::Arr(items));
    }
    loop {
        items.push(value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Jv::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at offset {}", *pos)),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))
                            .map_err(str::to_string)?;
                        let cp = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape hex")?;
                        out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {}", *pos)),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 sequences pass through unchanged.
                let len = utf8_len(c);
                let chunk = b
                    .get(*pos..*pos + len)
                    .ok_or_else(|| "truncated UTF-8 sequence".to_string())?;
                out.push_str(std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8 in string")?);
                *pos += len;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

fn number(b: &[u8], pos: &mut usize) -> Result<Jv, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Jv::Num)
        .ok_or_else(|| format!("bad number at offset {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(
            r#"{"a": [1, 2.5, -3], "b": {"c": "x\ny", "d": true, "e": null}, "f": 18446744073709551616}"#,
        )
        .unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Jv::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&Jv::Null));
        assert!(v.get("f").unwrap().as_f64().unwrap() > 1e19);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "{} garbage",
            "\"unterminated",
        ] {
            assert!(parse(bad).is_err(), "must reject {bad:?}");
        }
    }

    #[test]
    fn roundtrips_obs_snapshot_json() {
        stod_obs::with_mode(stod_obs::ObsMode::On, || {
            stod_obs::reset();
            stod_obs::count("demo/counter", 3);
            {
                let _s = stod_obs::span!("demo/span");
            }
            let snap = stod_obs::snapshot();
            let v = parse(&snap.to_json()).expect("obs JSON must parse");
            assert_eq!(v.get("schema").unwrap().as_u64(), Some(1));
            let spans = v.get("spans").unwrap().as_arr().unwrap();
            assert!(spans
                .iter()
                .any(|s| s.get("path").unwrap().as_str() == Some("demo/span")));
        });
    }
}
