//! Dev probe: convergence of the deep models on the small NYC dataset,
//! plus (`M=parallel`) the serial-vs-parallel kernel timing sweep that
//! seeds `results/BENCH_parallel.json`.
use stod_baselines::*;
use stod_bench::*;
use stod_core::*;
use stod_nn::optim::StepDecay;

/// Thread counts the parallel sweep compares (serial baseline first).
const SWEEP_THREADS: [usize; 3] = [1, 2, 4];

/// Best-of-`reps` wall-clock of `f`, in milliseconds.
fn time_ms_best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = std::time::Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// One row of the parallel sweep: best-of-`iters` wall-clock at each
/// [`SWEEP_THREADS`] entry, plus (where the flop count is well defined)
/// the serial GFLOP/s and a serial naive-kernel reference time.
struct SweepRow {
    name: String,
    iters: usize,
    ms: [f64; 3],
    gflops: Option<f64>,
    naive_ms: Option<f64>,
}

/// Serial vs 2/4-thread wall-clock for the three tentpole hot paths:
/// paper-scale matmul, the AF forward pass at the paper's NYC shape, and
/// one BF training epoch. Every timing is best-of-`iters` after an
/// untimed warmup pass (first touch pays page faults and arena growth).
/// Writes `results/BENCH_parallel.json` and asserts the epoch loss is
/// bitwise identical across thread counts.
fn run_parallel_bench(ds: &stod_traffic::OdDataset, split: &stod_traffic::Split) {
    use stod_tensor::ops::gemm;
    use stod_tensor::{matmul, par, rng::Rng64, Tensor};
    let host_cores = std::thread::available_parallelism().map_or(1, usize::from);
    println!("-- parallel sweep (host cores: {host_cores}) --");
    let mut rows: Vec<SweepRow> = Vec::new();

    // 1. Paper-scale matmul: a 512³ GEMM, larger than any single product
    //    in the models, isolating the blocked kernel. Also timed against
    //    the pre-blocked naive `i-k-j` dispatcher on the same operands so
    //    the achieved-vs-naive speedup is visible in the artifact.
    {
        let mut rng = Rng64::new(1);
        let a = Tensor::randn(&[512, 512], 1.0, &mut rng);
        let b = Tensor::randn(&[512, 512], 1.0, &mut rng);
        let iters = 5;
        let ms = SWEEP_THREADS.map(|t| {
            par::with_threads(t, || {
                std::hint::black_box(matmul(&a, &b));
                time_ms_best_of(iters, || {
                    std::hint::black_box(matmul(&a, &b));
                })
            })
        });
        let naive_ms = par::with_threads(1, || {
            let mut out = vec![0.0f32; 512 * 512];
            gemm::naive_rows(a.data(), b.data(), &mut out, 512, 512, 512);
            time_ms_best_of(3, || {
                gemm::naive_rows(
                    a.data(),
                    b.data(),
                    std::hint::black_box(&mut out),
                    512,
                    512,
                    512,
                );
            })
        });
        let flops = 2.0 * 512f64.powi(3);
        println!(
            "matmul_512: {:.2} GFLOP/s blocked ({} kernel) vs {:.2} GFLOP/s naive — {:.2}x",
            flops / (ms[0] * 1e6),
            if gemm::blocked_available() {
                "avx2+fma"
            } else {
                "scalar"
            },
            flops / (naive_ms * 1e6),
            naive_ms / ms[0],
        );
        rows.push(SweepRow {
            name: "matmul_512".into(),
            iters,
            ms,
            gflops: Some(flops / (ms[0] * 1e6)),
            naive_ms: Some(naive_ms),
        });
    }

    // 2. AF forward at the paper's NYC shape (N=67, K=20, batch 4).
    {
        let city = stod_traffic::CityModel::nyc_like(7);
        let k = stod_traffic::HistogramSpec::paper().num_buckets;
        let n = city.num_regions();
        let model = AfModel::new(&city.centroids(), k, AfConfig::paper_nyc(), 7);
        let mut rng = Rng64::new(8);
        let inputs: Vec<Tensor> = (0..3)
            .map(|_| Tensor::randn(&[4, n, n, k], 0.5, &mut rng))
            .collect();
        let iters = 2;
        let mut fwd = || {
            let mut tape = stod_nn::Tape::new();
            let mut fwd_rng = Rng64::new(9);
            std::hint::black_box(model.forward(&mut tape, &inputs, 1, Mode::Eval, &mut fwd_rng));
        };
        let ms = SWEEP_THREADS.map(|t| {
            par::with_threads(t, || {
                fwd();
                time_ms_best_of(iters, &mut fwd)
            })
        });
        rows.push(SweepRow {
            name: "af_forward_paper_nyc".into(),
            iters,
            ms,
            gflops: None,
            naive_ms: None,
        });
    }

    // 3. One BF training epoch on the small NYC dataset (first 64 train
    //    windows). Also the determinism check the bench rides on: the
    //    epoch loss must be bit-identical at every thread count.
    {
        let windows: Vec<stod_traffic::Window> = split.train.iter().copied().take(64).collect();
        let n = ds.num_regions();
        let k = ds.spec.num_buckets;
        let mut losses: Vec<f32> = Vec::new();
        let iters = 2;
        let epoch = |losses: &mut Vec<f32>| {
            let mut m = BfModel::new(n, k, BfConfig::default(), 5);
            let cfg = TrainConfig {
                epochs: 1,
                batch_size: 16,
                dropout: 0.2,
                seed: 5,
                ..TrainConfig::default()
            };
            let report = train(&mut m, ds, &windows, None, &cfg);
            losses.push(report.final_loss());
        };
        let ms = SWEEP_THREADS.map(|t| {
            par::with_threads(t, || {
                // Warmup epoch fills the workspace arena; timed reps then
                // run against the steady-state allocator.
                epoch(&mut losses);
                time_ms_best_of(iters, || epoch(&mut losses))
            })
        });
        for l in &losses[1..] {
            assert_eq!(
                l.to_bits(),
                losses[0].to_bits(),
                "epoch loss must be bitwise identical across thread counts"
            );
        }
        println!("epoch loss {} at every thread count (bitwise)", losses[0]);
        rows.push(SweepRow {
            name: "bf_train_epoch_small".into(),
            iters,
            ms,
            gflops: None,
            naive_ms: None,
        });
    }

    // Report + JSON artifact. The shared provenance header records the
    // thread count the *process* ran at; the sweep's per-row thread
    // counts live in `sweep_threads`.
    let header = BenchHeader::collect(Scale::from_env());
    let mut json = String::from("{\n");
    json.push_str(&format!("  {},\n", header.json_fields()));
    json.push_str(&format!(
        "  \"sweep_threads\": [{}, {}, {}],\n",
        SWEEP_THREADS[0], SWEEP_THREADS[1], SWEEP_THREADS[2]
    ));
    json.push_str(
        "  \"note\": \"wall-clock ms, best-of-iters after an untimed warmup; \
         speedups require >= 4 host cores\",\n",
    );
    json.push_str("  \"benches\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let (name, ms) = (&row.name, &row.ms);
        println!(
            "{name:<24} 1t {:>9.2} ms   2t {:>9.2} ms ({:.2}x)   4t {:>9.2} ms ({:.2}x)   best of {}",
            ms[0],
            ms[1],
            ms[0] / ms[1],
            ms[2],
            ms[0] / ms[2],
            row.iters,
        );
        let mut extra = String::new();
        if let Some(g) = row.gflops {
            extra.push_str(&format!(", \"gflops\": {g:.2}"));
        }
        if let Some(nv) = row.naive_ms {
            extra.push_str(&format!(
                ", \"naive_ms\": {nv:.3}, \"vs_naive\": {:.3}",
                nv / ms[0]
            ));
        }
        json.push_str(&format!(
            "    {{\"name\": \"{name}\", \"iters\": {}, \"serial_ms\": {:.3}, \"t2_ms\": {:.3}, \"t4_ms\": {:.3}, \"speedup_t2\": {:.3}, \"speedup_t4\": {:.3}{extra}}}{}\n",
            row.iters,
            ms[0],
            ms[1],
            ms[2],
            ms[0] / ms[1],
            ms[0] / ms[2],
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write("results/BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("wrote results/BENCH_parallel.json");
}

/// `M=obs`: arms the observability layer, drives every instrumented
/// layer — plain + robust training, the checkpoint path, sequential serve
/// traffic — then writes the snapshot (stamped with the shared bench
/// header) to `results/BENCH_obs.json` (override: `STOD_OBS_OUT`) and
/// prints the human-readable table.
///
/// Everything here is deterministic for a fixed `STOD_THREADS`: fixed
/// seeds and window sets on the training side, a single sequential client
/// on the serving side. The span tree (paths + counts) and the counters
/// are therefore identical run to run, which is what `bench_gate
/// --trees-only` checks in CI.
fn run_obs_bench(ds: &stod_traffic::OdDataset, split: &stod_traffic::Split) {
    use std::sync::Arc;
    use std::time::Duration;
    use stod_nn::ParamStore;
    use stod_serve::{
        Broker, BrokerConfig, FeatureStore, ForecastRequest, ModelConfig, ModelKind, Registry,
        ServeStats,
    };

    // Arm the probes unless the caller pinned a mode explicitly.
    if std::env::var("STOD_OBS").is_err() {
        stod_obs::force_mode(stod_obs::ObsMode::On);
    }
    stod_obs::reset();
    let n = ds.num_regions();
    let k = ds.spec.num_buckets;
    let small_bf = BfConfig {
        encode_dim: 16,
        gru_hidden: 16,
        ..BfConfig::default()
    };

    // Train phase (plain trainer): train/epoch → train/minibatch →
    // fwd/bwd/optimizer spans, kernel counters, pool histograms.
    let windows: Vec<stod_traffic::Window> = split.train.iter().copied().take(48).collect();
    let val: Vec<stod_traffic::Window> = split.val.iter().copied().take(8).collect();
    let tc = TrainConfig {
        epochs: 2,
        batch_size: 16,
        dropout: 0.1,
        seed: 17,
        ..TrainConfig::default()
    };
    let mut model = BfModel::new(n, k, small_bf, 17);
    let report = train(&mut model, ds, &windows, Some(&val), &tc);
    assert_eq!(report.grad_norms.len() as u64, report.steps);
    assert_eq!(report.epoch_wall_ms.len(), tc.epochs);

    // Checkpoint phase (robust trainer with an on-disk cadence
    // checkpoint): ckpt/save, ckpt/crc, io/atomic_write, then an explicit
    // reload for ckpt/load.
    let dir = std::env::temp_dir().join(format!("stod_obs_probe_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("probe tmp dir");
    let ckpt = dir.join("probe.ckpt");
    let _ = std::fs::remove_file(&ckpt);
    let mut rmodel = BfModel::new(n, k, small_bf, 17);
    let rtc = TrainConfig { epochs: 1, ..tc };
    let rcfg = RobustConfig {
        ckpt_path: Some(ckpt.clone()),
        ckpt_every_steps: 2,
        ..RobustConfig::default()
    };
    train_robust(&mut rmodel, ds, &windows, None, &rtc, &rcfg).expect("probe robust train");
    TrainCheckpoint::load(&ckpt).expect("probe checkpoint reloads");
    let _ = std::fs::remove_file(&ckpt);
    let _ = std::fs::remove_dir(&dir);

    // Serve phase: one sequential client so the cache-hit / invocation
    // split is deterministic. Every 4-request burst shares a key: the
    // leader pays the forward pass, the other three hit the cache.
    let lookback = 3;
    let stats = Arc::new(ServeStats::new());
    let config = ModelConfig {
        kind: ModelKind::Bf(small_bf),
        centroids: ds.city.centroids(),
        num_buckets: k,
    };
    let registry = Arc::new(Registry::new(config.clone(), Arc::clone(&stats)));
    let built = config.build(17);
    let v = registry
        .register_store(ParamStore::from_bytes(built.params().to_bytes()).unwrap())
        .unwrap();
    registry.promote(v).unwrap();
    let features = Arc::new(FeatureStore::new(n, ds.spec, ds.num_intervals()));
    for (t, tensor) in ds.tensors.iter().enumerate() {
        features.insert_tensor(t, tensor.clone());
    }
    let fallback = stod_baselines::NaiveHistograms::fit(ds, ds.num_intervals());
    let broker = Broker::new(
        registry,
        features,
        fallback,
        Arc::clone(&stats),
        BrokerConfig {
            workers: 1,
            lookback,
            cache_capacity: 64,
            ..BrokerConfig::default()
        },
    );
    let max_t = ds.num_intervals() - 1;
    for i in 0..40usize {
        let fc = broker.forecast(ForecastRequest {
            origin: i % n,
            dest: (i + 1) % n,
            t_end: lookback + (i / 4) % (max_t - lookback),
            horizon: 2,
            step: i % 2,
            deadline: Duration::from_secs(30),
        });
        assert_eq!(fc.histogram.len(), k);
    }
    println!("serve traffic: {}", broker.stats().snapshot().to_json());
    drop(broker);

    // Snapshot, table, artifact.
    let snap = stod_obs::snapshot();
    println!("{}", snap.render_table());
    for must_have in [
        "train/minibatch",
        "train/fwd",
        "serve/forecast",
        "ckpt/save",
        "ckpt/load",
    ] {
        assert!(
            snap.spans.iter().any(|s| s.path.contains(must_have)),
            "span tree is missing {must_have}"
        );
    }
    let header = BenchHeader::collect(Scale::from_env());
    let out = std::env::var("STOD_OBS_OUT").unwrap_or_else(|_| "results/BENCH_obs.json".into());
    let json = format!(
        "{{\n  {},\n  \"obs\": {}\n}}\n",
        header.json_fields(),
        snap.to_json()
    );
    if let Some(parent) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(parent).expect("create artifact dir");
    }
    std::fs::write(&out, &json).expect("write obs artifact");
    println!("wrote {out}");
}

/// `M=serve_load`: the fleet load harness. Builds a ≥4-city serving fleet
/// from replayed synthetic traffic (`stod_traffic::generate_fleet` →
/// live-ingest `push_trip`/`seal_interval`), installs a fresh checkpoint
/// per shard, then drives three measured phases, each on a fresh fleet so
/// the books are per-phase exact:
///
/// * **slo** — paced open-loop arrivals (`STOD_LOAD_RATE` req/s, Poisson)
///   against the cache-on fleet: the latency/SLO phase.
/// * **cache_on** — closed-loop saturation throughput with the forecast
///   result cache.
/// * **cache_off** — closed-loop throughput with the cache disabled *and*
///   broker result retention off (`retain_results = false`), the honest
///   recompute-every-arrival baseline.
///
/// Writes `results/BENCH_serve_load.json` (override `STOD_LOAD_OUT`)
/// stamped with the shared bench header. With `STOD_LOAD_GATE=1` the run
/// asserts the SLO gates: zero ledger residuals everywhere, SLO-phase p99
/// within budget, cache hit rate above floor, and cache-on/cache-off
/// speedup of at least `STOD_LOAD_MIN_SPEEDUP` (default 10).
fn run_serve_load_bench() {
    use std::time::Duration;
    use stod_fleet::{build_schedule, run_load, FleetConfig, LoadConfig, LoadReport, ShardConfig};
    use stod_serve::ModelKind;
    use stod_traffic::{generate_fleet, FleetSimConfig};

    let env_usize = |var: &str, default: usize| {
        std::env::var(var)
            .ok()
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("{var} must be an integer, got {v:?}"))
            })
            .unwrap_or(default)
    };
    let env_f64 = |var: &str, default: f64| {
        std::env::var(var)
            .ok()
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| panic!("{var} must be a number, got {v:?}"))
            })
            .unwrap_or(default)
    };
    let gate = std::env::var("STOD_LOAD_GATE").is_ok_and(|v| v == "1");
    let fleet_cfg = match FleetConfig::from_env() {
        Ok(cfg) => cfg,
        Err(e) => panic!("invalid fleet configuration: {e}"),
    };
    assert!(
        fleet_cfg.shards >= 4,
        "the load harness wants a ≥4-city fleet (STOD_SHARDS={})",
        fleet_cfg.shards
    );
    let total = env_usize("STOD_LOAD_N", 2000);
    let clients = env_usize("STOD_LOAD_CLIENTS", 8);
    let rate = env_f64("STOD_LOAD_RATE", 400.0);
    let p99_budget_us = env_usize("STOD_LOAD_P99_US", 200_000) as u64;
    let min_hit_rate = env_f64("STOD_LOAD_MIN_HITRATE", 0.5);
    let min_speedup = env_f64("STOD_LOAD_MIN_SPEEDUP", 10.0);

    let sim = FleetSimConfig {
        num_cities: fleet_cfg.shards,
        num_days: 1,
        intervals_per_day: 16,
        seed: 0x0F1EE7,
    };
    let cities = generate_fleet(&sim);
    let shard_cfg = ShardConfig::default();
    let kind = |_: usize| {
        ModelKind::Bf(BfConfig {
            encode_dim: 16,
            gru_hidden: 16,
            ..BfConfig::default()
        })
    };
    // Request sealed intervals the sliding window still retains, leaving
    // the full lookback below the smallest t_end.
    let load = LoadConfig {
        total_requests: total,
        clients,
        rate_per_s: None,
        horizons: vec![1, 2, 3],
        deadline: Duration::from_millis(150),
        t_end_lo: shard_cfg.lookback + 1,
        t_end_hi: sim.intervals_per_day - 1,
        requests_per_tick: 256,
        seed: 0x10AD,
    };
    let fresh_fleet = |cache: bool| {
        let cfg = FleetConfig {
            cache_enabled: cache,
            ..fleet_cfg
        };
        let scfg = ShardConfig {
            retain_results: cache,
            ..shard_cfg
        };
        stod_fleet::Fleet::from_replay(&cfg, &cities, &scfg, kind, 0x5EED)
    };
    let describe = |name: &str, r: &LoadReport| {
        let shed = r.outcomes.shed;
        println!(
            "{name:<10} {:>8} req  {:>12.0} fc/s  hit {:5.3}  model {:>6}  fallback {:>5}  shed {shed:>5}  residual {}",
            r.requests,
            r.forecasts_per_s(),
            r.cache_hit_rate(),
            r.outcomes.model,
            r.outcomes.fallback,
            r.fleet.global_ledger_balance(),
        );
    };

    println!(
        "-- serve_load: {} shards (N = {:?}), cache cap {}, shed depth {} --",
        fleet_cfg.shards,
        cities.iter().map(|c| c.num_regions()).collect::<Vec<_>>(),
        fleet_cfg.cache_capacity,
        fleet_cfg.shed_depth
    );

    // Phase 1: paced open-loop SLO measurement, cache on.
    let slo_fleet = fresh_fleet(true);
    let slo_schedule = build_schedule(
        &slo_fleet,
        &LoadConfig {
            rate_per_s: Some(rate),
            ..load.clone()
        },
    );
    let slo = run_load(&slo_fleet, &slo_schedule, clients);
    describe("slo", &slo);

    // Phase 2: closed-loop saturation throughput, cache on.
    let on_fleet = fresh_fleet(true);
    let on = run_load(&on_fleet, &build_schedule(&on_fleet, &load), clients);
    describe("cache_on", &on);

    // Phase 3: closed-loop throughput with no result caching anywhere.
    // Every sequential repeat pays a fresh model invocation, so a smaller
    // request count measures the same rate in bounded time.
    let off_fleet = fresh_fleet(false);
    let off_load = LoadConfig {
        total_requests: (total / 5).max(200),
        ..load.clone()
    };
    let off = run_load(&off_fleet, &build_schedule(&off_fleet, &off_load), clients);
    describe("cache_off", &off);

    let speedup = on.forecasts_per_s() / off.forecasts_per_s().max(1e-9);
    let slo_p99 = slo
        .fleet
        .shards
        .iter()
        .map(|s| s.stats.p99_us)
        .max()
        .unwrap_or(0);
    println!(
        "cache-on vs cache-off: {speedup:.1}x  |  slo p99 {slo_p99} us  |  gates {}",
        if gate { "ENFORCED" } else { "report-only" }
    );

    let header = BenchHeader::collect(Scale::from_env());
    let json = format!(
        "{{\n  {},\n  \"shards\": {},\n  \"cache_capacity\": {},\n  \"shed_depth\": {},\n  \"region_counts\": {:?},\n  \"rate_per_s\": {rate},\n  \"speedup\": {speedup:.3},\n  \"slo_p99_us\": {slo_p99},\n  \"gates\": {{\"enforced\": {gate}, \"p99_budget_us\": {p99_budget_us}, \"min_hit_rate\": {min_hit_rate}, \"min_speedup\": {min_speedup}}},\n  \"slo\": {},\n  \"cache_on\": {},\n  \"cache_off\": {}\n}}\n",
        header.json_fields(),
        fleet_cfg.shards,
        fleet_cfg.cache_capacity,
        fleet_cfg.shed_depth,
        cities.iter().map(|c| c.num_regions()).collect::<Vec<_>>(),
        slo.to_json(),
        on.to_json(),
        off.to_json(),
    );
    let out =
        std::env::var("STOD_LOAD_OUT").unwrap_or_else(|_| "results/BENCH_serve_load.json".into());
    if let Some(parent) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(parent).expect("create artifact dir");
    }
    std::fs::write(&out, &json).expect("write serve_load artifact");
    println!("wrote {out}");

    // The conservation ledger must balance unconditionally — a non-zero
    // residual is an accounting bug, not a tuning problem.
    for (name, report) in [("slo", &slo), ("cache_on", &on), ("cache_off", &off)] {
        assert_eq!(
            report.fleet.global_ledger_balance(),
            0,
            "{name}: request-conservation ledger out of balance"
        );
        assert_eq!(
            report.outcomes.total(),
            report.requests,
            "{name}: outcome tally lost requests"
        );
    }
    if gate {
        assert!(
            slo_p99 <= p99_budget_us,
            "SLO gate: p99 {slo_p99} us exceeds budget {p99_budget_us} us"
        );
        assert!(
            on.cache_hit_rate() >= min_hit_rate,
            "SLO gate: cache hit rate {:.3} below floor {min_hit_rate}",
            on.cache_hit_rate()
        );
        assert!(
            speedup >= min_speedup,
            "SLO gate: cache-on speedup {speedup:.1}x below required {min_speedup}x"
        );
        println!("serve_load gates passed");
    }
}

/// `M=adapt`: the streaming-adaptation probe. Rebuilds the `adapt_gate`
/// drift scenario (a small city whose daily regime slides a quarter day
/// at the onset interval), replays the live stream into a single-shard
/// fleet, then runs one full adaptation cycle — ingest snapshot →
/// warm-start fine-tune → shadow eval → promote — with the observability
/// layer armed while closed-loop clients keep hammering the serving path.
///
/// Reports fine-tune wall, shadow-eval wall, promote latency (from the
/// pipeline's own `adapt/latency/*` histograms) and the serve p99
/// observed *during* the adaptation, and writes
/// `results/BENCH_adapt.json` (override `STOD_ADAPT_OUT`). The
/// `STOD_ADAPT_{EPOCHS,HOLDOUT,MARGIN,MIN_WINDOWS}` knobs override the
/// scenario-tuned cycle configuration.
fn run_adapt_bench() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::{Duration, Instant};
    use stod_adapt::{AdaptConfig, CityAdapter, CycleOutcome};
    use stod_fleet::{Fleet, FleetConfig, FleetRequest, Shard, ShardConfig};
    use stod_serve::{ModelConfig, ModelKind};
    use stod_traffic::{generate_drift, CityModel, DriftConfig, DriftKind, SimConfig};

    const IPD: usize = 12;
    let seed: u64 = 53279;
    let clients = 4usize;

    // Honor the documented env knobs on top of the scenario-tuned cycle
    // configuration (the parse also validates them — a bad knob panics
    // here instead of silently running the wrong experiment).
    let envd = AdaptConfig::from_env().unwrap_or_else(|e| panic!("invalid adapt knob: {e}"));
    let mut acfg = AdaptConfig {
        epochs: 20,
        holdout: 8,
        min_windows: 4,
        lookback: 2,
        ckpt_every_steps: 4,
        ..AdaptConfig::default()
    };
    if std::env::var_os("STOD_ADAPT_EPOCHS").is_some() {
        acfg.epochs = envd.epochs;
    }
    if std::env::var_os("STOD_ADAPT_HOLDOUT").is_some() {
        acfg.holdout = envd.holdout;
    }
    if std::env::var_os("STOD_ADAPT_MARGIN").is_some() {
        acfg.margin = envd.margin;
    }
    if std::env::var_os("STOD_ADAPT_MIN_WINDOWS").is_some() {
        acfg.min_windows = envd.min_windows;
    }

    // The adapt_gate drift scenario: stationary past trains the incumbent,
    // the live stream shifts its daily regime a quarter day at onset.
    let city = CityModel::small(6);
    let sim = SimConfig {
        num_days: 3,
        intervals_per_day: IPD,
        trips_per_interval: 600.0,
        ..SimConfig::small(seed)
    };
    let (stationary, _) = generate_drift(city.clone(), &sim, &DriftConfig::stationary());
    let (drifted, trips) = generate_drift(
        city.clone(),
        &sim,
        &DriftConfig {
            kind: DriftKind::RushHourShift { shift_intervals: 3 },
            onset: IPD,
        },
    );
    let model_cfg = ModelConfig {
        kind: ModelKind::Bf(BfConfig {
            encode_dim: 8,
            gru_hidden: 8,
            ..BfConfig::default()
        }),
        centroids: city.centroids(),
        num_buckets: drifted.spec.num_buckets,
    };
    let mut incumbent = model_cfg.build(seed ^ 0x1BC);
    let windows = stationary.windows(acfg.lookback, 1);
    train(
        incumbent.as_mut(),
        &stationary,
        &windows,
        None,
        &TrainConfig {
            epochs: 4,
            batch_size: 8,
            schedule: StepDecay {
                initial: 5e-3,
                decay: 0.9,
                every: 2,
            },
            dropout: 0.0,
            clip_norm: 5.0,
            seed,
            verbose: false,
        },
    );
    let nh = NaiveHistograms::fit(&stationary, stationary.num_intervals());

    let shard = Shard::new(
        0,
        city.name.clone(),
        model_cfg,
        drifted.spec,
        nh.clone(),
        &ShardConfig {
            workers: 2,
            lookback: acfg.lookback,
            window_capacity: 24,
            broker_cache_capacity: 32,
            retain_results: true,
            breaker: stod_fleet::BreakerConfig::default(),
        },
    );
    shard
        .install_checkpoint(stod_nn::ParamStore::from_bytes(incumbent.params().to_bytes()).unwrap())
        .unwrap();
    let fleet = Fleet::new(
        &FleetConfig {
            shards: 1,
            cache_capacity: 64,
            shed_depth: 256,
            cache_enabled: true,
        },
        vec![shard],
    );
    for (t, interval) in trips.iter().enumerate() {
        for trip in interval {
            fleet.shard(0).ingest_trip(*trip).unwrap();
        }
        fleet.shard(0).seal_interval(t);
    }

    let dir = std::env::temp_dir().join(format!("stod_adapt_probe_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut adapter = CityAdapter::new(
        0,
        city.clone(),
        IPD,
        nh,
        drifted.spec.num_buckets,
        acfg,
        dir.clone(),
    )
    .expect("create adapter work dir");

    println!(
        "-- adapt probe: N={} IPD={IPD} epochs={} holdout={} margin={} --",
        city.num_regions(),
        acfg.epochs,
        acfg.holdout,
        acfg.margin
    );

    // One full adaptation cycle with obs armed, while closed-loop clients
    // keep the serving path hot — the p99 the fleet's tenants actually see
    // during an adaptation.
    let t_end = 3 * IPD - 1;
    let stop = AtomicBool::new(false);
    let (outcome, served) = stod_obs::with_mode(stod_obs::ObsMode::On, || {
        stod_obs::reset();
        std::thread::scope(|scope| {
            let fleet = &fleet;
            let stop = &stop;
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    scope.spawn(move || {
                        let mut n = 0u64;
                        while !stop.load(Ordering::Relaxed) {
                            let r = FleetRequest {
                                city: 0,
                                origin: (n as usize + c) % 6,
                                dest: (n as usize + c + 1) % 6,
                                t_end,
                                horizon: 1,
                                step: 0,
                                deadline: Duration::from_millis(150),
                            };
                            std::hint::black_box(fleet.forecast(r));
                            n += 1;
                        }
                        n
                    })
                })
                .collect();
            let cycle_start = Instant::now();
            let outcome = adapter.run_cycle(fleet).expect("adaptation cycle failed");
            let cycle_ms = cycle_start.elapsed().as_secs_f64() * 1e3;
            stop.store(true, Ordering::Relaxed);
            let served: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
            println!("cycle wall {cycle_ms:.1} ms, {served} forecasts served during it");
            (outcome, served)
        })
    });
    let obs = stod_obs::snapshot();
    let hist_ms = |name: &str| -> (f64, f64) {
        obs.histogram(name)
            .map(|h| (h.total as f64 / 1e6, h.max as f64 / 1e6))
            .unwrap_or((0.0, 0.0))
    };
    let (fine_tune_ms, _) = hist_ms("adapt/latency/fine_tune");
    let (shadow_eval_ms, _) = hist_ms("adapt/latency/shadow_eval");
    let (promote_ms, _) = hist_ms("adapt/latency/promote");
    let serve_p99_us = fleet.shard(0).stats().snapshot().p99_us;
    let promoted = matches!(outcome, CycleOutcome::Promoted { .. });
    println!("outcome {:?}", adapter.decisions().last().map(|(_, d)| *d));
    println!(
        "fine_tune {fine_tune_ms:>9.1} ms   shadow_eval {shadow_eval_ms:>7.1} ms   promote {promote_ms:>6.2} ms   serve p99 {serve_p99_us} us"
    );
    assert!(
        promoted,
        "the probe scenario is tuned to promote; got {outcome:?} — scenario drifted"
    );

    let header = BenchHeader::collect(Scale::from_env());
    let json = format!(
        "{{\n  {},\n  \"scenario\": {{\"seed\": {seed}, \"regions\": {}, \"intervals_per_day\": {IPD}, \"drift\": \"rush_hour_shift_3\"}},\n  \"config\": {{\"epochs\": {}, \"holdout\": {}, \"margin\": {}, \"min_windows\": {}}},\n  \"fine_tune_ms\": {fine_tune_ms:.3},\n  \"shadow_eval_ms\": {shadow_eval_ms:.3},\n  \"promote_ms\": {promote_ms:.3},\n  \"serve_p99_during_adapt_us\": {serve_p99_us},\n  \"forecasts_during_adapt\": {served},\n  \"promoted\": {promoted}\n}}\n",
        header.json_fields(),
        city.num_regions(),
        acfg.epochs,
        acfg.holdout,
        acfg.margin,
        acfg.min_windows,
    );
    let out = std::env::var("STOD_ADAPT_OUT").unwrap_or_else(|_| "results/BENCH_adapt.json".into());
    if let Some(parent) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(parent).expect("create artifact dir");
    }
    std::fs::write(&out, &json).expect("write adapt artifact");
    println!("wrote {out}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `M=city`: the big-city scale probe behind `STOD_SCALE=city`. Two
/// sections, both gated by hard asserts so CI fails loudly:
///
/// * **propagation sweep** — dense matmul vs CSR `spmm_panel` for the
///   scaled-Laplacian propagation `L·X` at N ∈ {256, 512, 1000} on
///   metropolis-density graphs (paper-default kernel σ = 1 km, α = 0.1).
///   Gate: CSR at least 3× faster than dense at N = 1000.
/// * **compact serving** — an end-to-end city slice: train an AF model
///   (sparse graph path, N = 500) for one epoch, checkpoint it as f32
///   and f16, register both in a memory-budgeted registry, and compare
///   forecasts. Gates: f16 checkpoint ≤ 55 % of the f32 bytes, f16
///   forecast within 1e-2 of f32, resident bytes within the
///   `STOD_MODEL_MEM` budget (default 64 MiB when unset).
///
/// Writes `results/BENCH_city.json` (override `STOD_CITY_OUT`) stamped
/// with the shared bench header; `bench_gate` compares the sweep's
/// `csr_ms` rows against the blessed artifact.
fn run_city_bench() {
    use std::sync::Arc;
    use stod_graph::{
        proximity_csr, proximity_matrix, scaled_laplacian, scaled_laplacian_csr, ProximityParams,
    };
    use stod_nn::ParamStore;
    use stod_serve::{ModelConfig, ModelKind, Registry, ServeStats};
    use stod_tensor::{matmul, rng::Rng64, stack, Tensor};

    println!("-- city bench: CSR propagation sweep + compact f16 serving --");

    // Section A: dense vs CSR scaled-Laplacian propagation over a
    // 64-feature panel. Sub-metropolis sizes use the uniform `irregular`
    // layout at the same nominal density (radius ∝ √n) so the sweep
    // varies N, not the generator.
    struct PropRow {
        n: usize,
        nnz: usize,
        density: f64,
        dense_ms: f64,
        csr_ms: f64,
    }
    let feat = 64;
    let mut prop_rows: Vec<PropRow> = Vec::new();
    for n in [256usize, 512, 1000] {
        let cents = if n >= 500 {
            stod_traffic::CityModel::metropolis(n, 7).centroids()
        } else {
            stod_traffic::CityModel::irregular(n, 0.5 * (n as f64).sqrt(), 7).centroids()
        };
        let params = ProximityParams::default();
        let l = scaled_laplacian(&proximity_matrix(&cents, params));
        let lc = scaled_laplacian_csr(&proximity_csr(&cents, params));
        let mut rng = Rng64::new(n as u64);
        let x = Tensor::randn(&[n, feat], 1.0, &mut rng);
        let iters = 5;
        std::hint::black_box(matmul(&l, &x));
        let dense_ms = time_ms_best_of(iters, || {
            std::hint::black_box(matmul(&l, &x));
        });
        std::hint::black_box(lc.spmm_panel(&x));
        let csr_ms = time_ms_best_of(iters, || {
            std::hint::black_box(lc.spmm_panel(&x));
        });
        let nnz = lc.nnz();
        let density = nnz as f64 / (n * n) as f64;
        println!(
            "propagate n={n:<5} nnz {nnz:>6} ({:>5.2}%)  dense {dense_ms:>8.3} ms  csr {csr_ms:>7.3} ms  {:>6.2}x",
            density * 100.0,
            dense_ms / csr_ms,
        );
        prop_rows.push(PropRow {
            n,
            nnz,
            density,
            dense_ms,
            csr_ms,
        });
    }
    let big = prop_rows.last().unwrap();
    assert!(
        big.csr_ms * 3.0 <= big.dense_ms,
        "city gate: CSR propagation must be >= 3x dense at N = {} (dense {:.3} ms, csr {:.3} ms)",
        big.n,
        big.dense_ms,
        big.csr_ms
    );

    // Section B: end-to-end city slice. `Scale::City` builds a 500-region
    // metropolis; `GraphMode::Auto` therefore takes the CSR path for both
    // the factorization Laplacians and the CNRNN filters.
    let seed = 11;
    let t0 = std::time::Instant::now();
    let ds = build_dataset(Dataset::Nyc, Scale::City, seed);
    let n = ds.num_regions();
    let k = ds.spec.num_buckets;
    assert!(n >= 500, "city tier must be a >= 500-region metropolis");
    let split = standard_split(&ds, 2, 1);
    let windows: Vec<stod_traffic::Window> = split.train.iter().copied().take(4).collect();
    assert!(!windows.is_empty(), "city slice produced no train windows");
    let af_cfg = AfConfig {
        rnn_hidden: 8,
        rank: 4,
        ..AfConfig::default()
    };
    let mut model = AfModel::new(&ds.city.centroids(), k, af_cfg.clone(), seed);
    let report = train(
        &mut model,
        &ds,
        &windows,
        None,
        &TrainConfig {
            epochs: 1,
            batch_size: 4,
            dropout: 0.0,
            seed,
            ..TrainConfig::default()
        },
    );
    let train_ms = t0.elapsed().as_secs_f64() * 1e3;
    let final_loss = report.final_loss();
    assert!(
        final_loss.is_finite(),
        "city training slice diverged: loss {final_loss}"
    );
    println!(
        "city slice: N={n} K={k}, {} windows, 1 epoch, loss {final_loss:.4}, {train_ms:.0} ms incl. dataset",
        windows.len()
    );

    // Compact checkpoints: the serving tier stores f16, trains f32.
    let f32_bytes = model.params().to_bytes();
    let f16_bytes = model
        .params()
        .to_bytes_f16()
        .expect("trained city weights must be f16-representable");
    let (f32_len, f16_len) = (f32_bytes.len(), f16_bytes.len());
    let ratio = f16_len as f64 / f32_len as f64;
    println!(
        "checkpoint: f32 {} B, f16 {} B ({:.1}% of f32)",
        f32_bytes.len(),
        f16_bytes.len(),
        ratio * 100.0
    );
    assert!(
        f16_bytes.len() * 100 <= f32_bytes.len() * 55,
        "city gate: f16 checkpoint must be <= 55% of f32 ({} vs {} bytes)",
        f16_bytes.len(),
        f32_bytes.len()
    );

    // Memory-budgeted registry: `STOD_MODEL_MEM` when set, else 64 MiB.
    let budget = stod_tensor::env_knob("STOD_MODEL_MEM", 1, u64::MAX)
        .unwrap_or_else(|e| panic!("{e}"))
        .unwrap_or(64 << 20);
    let config = ModelConfig {
        kind: ModelKind::Af(af_cfg),
        centroids: ds.city.centroids(),
        num_buckets: k,
    };
    let registry = Registry::with_mem_budget(config, Arc::new(ServeStats::new()), Some(budget));
    let v32 = registry
        .register_store(ParamStore::from_bytes(f32_bytes).expect("f32 roundtrip"))
        .expect("f32 version must register under the memory budget");
    let v16 = registry
        .register_store(ParamStore::from_bytes(f16_bytes.clone()).expect("f16 roundtrip"))
        .expect("f16 version must register under the memory budget");
    registry.promote(v16).expect("promote f16 version");
    let m16 = registry.get(v16).expect("f16 version resolvable");
    let m32 = registry.get(v32).expect("f32 version resolvable");
    let mem_bytes = m16.mem_bytes();
    assert!(
        mem_bytes <= budget,
        "city gate: resident {mem_bytes} B over the {budget} B budget"
    );

    // Serve smoke + f16 error gate: forecast the last train window on
    // both versions; the compact path must match f32 to 1e-2.
    let w = windows[windows.len() - 1];
    let inputs: Vec<Tensor> = w
        .input_indices()
        .iter()
        .map(|&t| stack(&[&ds.tensors[t].data], 0))
        .collect();
    let half = m16.forecast(&inputs, 1);
    let full = m32.forecast(&inputs, 1);
    let drift = half[0]
        .data()
        .iter()
        .zip(full[0].data())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("serving: resident {mem_bytes} B (budget {budget} B), f16 forecast drift {drift:.2e}");
    assert!(
        drift < 1e-2,
        "city gate: f16 forecast drifted {drift} from the f32 oracle"
    );

    // Artifact: shared provenance header + sweep rows + serving section.
    let header = BenchHeader::collect(Scale::from_env());
    let mut json = String::from("{\n");
    json.push_str(&format!("  {},\n", header.json_fields()));
    json.push_str("  \"note\": \"wall-clock ms, best-of-5 after an untimed warmup\",\n");
    json.push_str("  \"propagation\": [\n");
    for (i, r) in prop_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"propagate_{}\", \"n\": {}, \"feat\": {feat}, \"nnz\": {}, \"density\": {:.5}, \"dense_ms\": {:.4}, \"csr_ms\": {:.4}, \"speedup\": {:.3}}}{}\n",
            r.n,
            r.n,
            r.nnz,
            r.density,
            r.dense_ms,
            r.csr_ms,
            r.dense_ms / r.csr_ms,
            if i + 1 < prop_rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"city\": {{\"regions\": {n}, \"buckets\": {k}, \"train_windows\": {}, \"final_loss\": {final_loss:.6}, \"train_ms\": {train_ms:.1}, \"f32_bytes\": {f32_len}, \"f16_bytes\": {f16_len}, \"f16_ratio\": {ratio:.4}, \"resident_bytes\": {mem_bytes}, \"mem_budget_bytes\": {budget}, \"f16_forecast_drift\": {drift:.3e}}}\n",
        windows.len(),
    ));
    json.push_str("}\n");
    let out = std::env::var("STOD_CITY_OUT").unwrap_or_else(|_| "results/BENCH_city.json".into());
    if let Some(parent) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(parent).expect("create artifact dir");
    }
    std::fs::write(&out, &json).expect("write city artifact");
    println!("wrote {out}");
    println!("city gates passed");
}

fn main() {
    // Modes that bring their own data short-circuit before the shared
    // NYC dataset build.
    if std::env::var("M").is_ok_and(|m| m.contains("city")) {
        run_city_bench();
        return;
    }
    if std::env::var("M").is_ok_and(|m| m.contains("serve_load")) {
        run_serve_load_bench();
        return;
    }
    if std::env::var("M").is_ok_and(|m| m.contains("adapt")) {
        run_adapt_bench();
        return;
    }
    let ds = build_dataset(Dataset::Nyc, Scale::Small, 11);
    let split = standard_split(&ds, 3, 1);
    let n = ds.num_regions();
    let k = ds.spec.num_buckets;
    let epochs: usize = std::env::var("E")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    let lr: f32 = std::env::var("LR")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3e-3);
    let dropout: f32 = std::env::var("DO")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.2);
    let tc = TrainConfig {
        epochs,
        batch_size: 16,
        schedule: StepDecay {
            initial: lr,
            decay: 0.8,
            every: 5,
        },
        verbose: true,
        dropout,
        ..TrainConfig::default()
    };
    let t0 = std::time::Instant::now();
    let train_end = split.train.iter().map(|w| w.t_end + w.h + 1).max().unwrap();
    let nh = NaiveHistograms::fit(&ds, train_end);
    let r = evaluate_predictor(&nh, &ds, &split.test);
    println!("NH  EMD {:.4}", r.per_step[0][2]);
    let which = std::env::var("M").unwrap_or_else(|_| "af".into());
    if which.contains("parallel") {
        run_parallel_bench(&ds, &split);
        return;
    }
    if which.contains("obs") {
        run_obs_bench(&ds, &split);
        return;
    }
    if which.contains("oracle") {
        use stod_traffic::speed::{SpeedField, SpeedParams};
        use stod_traffic::{OdDataset, Window};
        // Rebuild the latent field exactly as build_dataset(Nyc, Small, 11) does.
        let city = {
            let mut c = stod_traffic::CityModel::grid(8, 2, 0.7);
            c.name = "nyc-small".into();
            c
        };
        let field = SpeedField::simulate(&city, 48, 480, 11, SpeedParams::default());
        struct Oracle<'a> {
            field: &'a SpeedField,
            k: usize,
        }
        impl stod_baselines::HistogramPredictor for Oracle<'_> {
            fn name(&self) -> &str {
                "oracle"
            }
            fn predict(
                &self,
                ds: &OdDataset,
                o: usize,
                d: usize,
                w: &Window,
                step: usize,
            ) -> Vec<f32> {
                let t = w.target_indices()[step];
                let mut rng = stod_tensor::rng::Rng64::new((o * 1000 + d) as u64);
                let mut h = vec![0.0f32; self.k];
                for _ in 0..400 {
                    let v = self.field.sample_trip_speed(o, d, t, &mut rng);
                    h[ds.spec.bucket_of(v)] += 1.0 / 400.0;
                }
                h
            }
        }
        let oracle = Oracle { field: &field, k };
        let r = evaluate_predictor(&oracle, &ds, &split.test);
        println!(
            "ORACLE EMD {:.4}  KL {:.4}",
            r.per_step[0][2], r.per_step[0][0]
        );
    }
    if which.contains("mr") {
        let m = MrModel::fit(&ds, train_end, Default::default(), 23);
        let r = evaluate_predictor(&m, &ds, &split.test);
        println!("MR  EMD {:.4}", r.per_step[0][2]);
    }
    if which.contains("fc") {
        let mut m = FcModel::new(n, k, Default::default(), 23);
        println!("-- FC --");
        train(&mut m, &ds, &split.train, Some(&split.val), &tc);
        let r = evaluate(&m, &ds, &split.test, 32);
        println!("FC  EMD {:.4}", r.per_step[0][2]);
    }
    if which.contains("var") {
        let m = VarModel::fit(&ds, train_end, Default::default());
        let r = evaluate_predictor(&m, &ds, &split.test);
        println!("VAR EMD {:.4}", r.per_step[0][2]);
    }
    if which.contains("bf") {
        let enc: usize = std::env::var("ENC")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(32);
        let hid: usize = std::env::var("HID")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(48);
        let rank: usize = std::env::var("RANK")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(5);
        let lam: f32 = std::env::var("LAM")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1e-4);
        let mut m = BfModel::new(
            n,
            k,
            BfConfig {
                encode_dim: enc,
                gru_hidden: hid,
                rank,
                lambda_r: lam,
                lambda_c: lam,
                ..BfConfig::default()
            },
            23,
        );
        println!("-- BF --");
        train(&mut m, &ds, &split.train, Some(&split.val), &tc);
        let r = evaluate(&m, &ds, &split.test, 32);
        println!("BF  EMD {:.4}  ({:?})", r.per_step[0][2], t0.elapsed());
    }
    if which.contains("af") {
        let t1 = std::time::Instant::now();
        let lam: f32 = std::env::var("LAM")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1e-4);
        let rh: usize = std::env::var("RH")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(16);
        let mut m = AfModel::new(
            &ds.city.centroids(),
            k,
            AfConfig {
                lambda_r: lam,
                lambda_c: lam,
                rnn_hidden: rh,
                ..AfConfig::default()
            },
            23,
        );
        println!("-- AF --");
        train(&mut m, &ds, &split.train, Some(&split.val), &tc);
        let r = evaluate(&m, &ds, &split.test, 32);
        println!("AF  EMD {:.4}  ({:?})", r.per_step[0][2], t1.elapsed());
    }
}
