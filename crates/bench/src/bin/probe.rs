//! Dev probe: convergence of the deep models on the small NYC dataset.
use stod_baselines::*;
use stod_bench::*;
use stod_core::*;
use stod_nn::optim::StepDecay;

fn main() {
    let ds = build_dataset(Dataset::Nyc, Scale::Small, 11);
    let split = standard_split(&ds, 3, 1);
    let n = ds.num_regions();
    let k = ds.spec.num_buckets;
    let epochs: usize = std::env::var("E")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    let lr: f32 = std::env::var("LR")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3e-3);
    let dropout: f32 = std::env::var("DO")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.2);
    let tc = TrainConfig {
        epochs,
        batch_size: 16,
        schedule: StepDecay {
            initial: lr,
            decay: 0.8,
            every: 5,
        },
        verbose: true,
        dropout,
        ..TrainConfig::default()
    };
    let t0 = std::time::Instant::now();
    let train_end = split.train.iter().map(|w| w.t_end + w.h + 1).max().unwrap();
    let nh = NaiveHistograms::fit(&ds, train_end);
    let r = evaluate_predictor(&nh, &ds, &split.test);
    println!("NH  EMD {:.4}", r.per_step[0][2]);
    let which = std::env::var("M").unwrap_or_else(|_| "af".into());
    if which.contains("oracle") {
        use stod_traffic::speed::{SpeedField, SpeedParams};
        use stod_traffic::{OdDataset, Window};
        // Rebuild the latent field exactly as build_dataset(Nyc, Small, 11) does.
        let city = {
            let mut c = stod_traffic::CityModel::grid(8, 2, 0.7);
            c.name = "nyc-small".into();
            c
        };
        let field = SpeedField::simulate(&city, 48, 480, 11, SpeedParams::default());
        struct Oracle<'a> {
            field: &'a SpeedField,
            k: usize,
        }
        impl stod_baselines::HistogramPredictor for Oracle<'_> {
            fn name(&self) -> &str {
                "oracle"
            }
            fn predict(
                &self,
                ds: &OdDataset,
                o: usize,
                d: usize,
                w: &Window,
                step: usize,
            ) -> Vec<f32> {
                let t = w.target_indices()[step];
                let mut rng = stod_tensor::rng::Rng64::new((o * 1000 + d) as u64);
                let mut h = vec![0.0f32; self.k];
                for _ in 0..400 {
                    let v = self.field.sample_trip_speed(o, d, t, &mut rng);
                    h[ds.spec.bucket_of(v)] += 1.0 / 400.0;
                }
                h
            }
        }
        let oracle = Oracle { field: &field, k };
        let r = evaluate_predictor(&oracle, &ds, &split.test);
        println!(
            "ORACLE EMD {:.4}  KL {:.4}",
            r.per_step[0][2], r.per_step[0][0]
        );
    }
    if which.contains("mr") {
        let m = MrModel::fit(&ds, train_end, Default::default(), 23);
        let r = evaluate_predictor(&m, &ds, &split.test);
        println!("MR  EMD {:.4}", r.per_step[0][2]);
    }
    if which.contains("fc") {
        let mut m = FcModel::new(n, k, Default::default(), 23);
        println!("-- FC --");
        train(&mut m, &ds, &split.train, Some(&split.val), &tc);
        let r = evaluate(&m, &ds, &split.test, 32);
        println!("FC  EMD {:.4}", r.per_step[0][2]);
    }
    if which.contains("var") {
        let m = VarModel::fit(&ds, train_end, Default::default());
        let r = evaluate_predictor(&m, &ds, &split.test);
        println!("VAR EMD {:.4}", r.per_step[0][2]);
    }
    if which.contains("bf") {
        let enc: usize = std::env::var("ENC")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(32);
        let hid: usize = std::env::var("HID")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(48);
        let rank: usize = std::env::var("RANK")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(5);
        let lam: f32 = std::env::var("LAM")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1e-4);
        let mut m = BfModel::new(
            n,
            k,
            BfConfig {
                encode_dim: enc,
                gru_hidden: hid,
                rank,
                lambda_r: lam,
                lambda_c: lam,
                ..BfConfig::default()
            },
            23,
        );
        println!("-- BF --");
        train(&mut m, &ds, &split.train, Some(&split.val), &tc);
        let r = evaluate(&m, &ds, &split.test, 32);
        println!("BF  EMD {:.4}  ({:?})", r.per_step[0][2], t0.elapsed());
    }
    if which.contains("af") {
        let t1 = std::time::Instant::now();
        let lam: f32 = std::env::var("LAM")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1e-4);
        let rh: usize = std::env::var("RH")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(16);
        let mut m = AfModel::new(
            &ds.city.centroids(),
            k,
            AfConfig {
                lambda_r: lam,
                lambda_c: lam,
                rnn_hidden: rh,
                ..AfConfig::default()
            },
            23,
        );
        println!("-- AF --");
        train(&mut m, &ds, &split.train, Some(&split.val), &tc);
        let r = evaluate(&m, &ds, &split.test, 32);
        println!("AF  EMD {:.4}  ({:?})", r.per_step[0][2], t1.elapsed());
    }
}
