//! The bench-regression gate: compares fresh `BENCH_obs.json` artifacts
//! against the committed baseline and fails CI on wall-time regressions.
//!
//! Modes:
//!
//! * `bench_gate <current...> <baseline>` — full gate. The last path is
//!   the baseline; every earlier path is one probe run, and the gate
//!   compares the *element-wise minimum* of their span totals (best-of-N
//!   is the standard defence against scheduler noise — `scripts/verify.sh
//!   --bench` runs the probe twice and passes both). The gate refuses to
//!   compare artifacts whose headers disagree on `threads` or `scale`
//!   (that is a config mismatch, not a regression), requires the span
//!   trees and counters to match the baseline exactly, and fails when any
//!   span's best total regressed more than 25% over the baseline. Spans
//!   whose baseline total is under the 50 ms noise floor are reported but
//!   never fail the gate.
//! * `bench_gate --bless <baseline> <current...>` — min-merges the
//!   current runs and writes them as the new baseline (span paths, counts
//!   and best totals plus the header; timing-free fields are dropped).
//! * `bench_gate --trees-only <a> <b>` — structural comparison only:
//!   span paths + counts and counter values must match exactly. Used to
//!   prove run-to-run span-tree stability, where wall times legitimately
//!   differ.
//!
//! Exit code 0 = pass, 1 = gate failure, 2 = usage/parse error.

use stod_bench::jsonv::{parse, Jv};

/// Spans whose baseline total is below this never fail the wall-time
/// gate: at small durations (one fsync, one forward pass) scheduler and
/// page-cache noise dwarfs any real regression.
const NOISE_FLOOR_NS: u64 = 50_000_000;

/// Maximum tolerated wall-time growth of a span vs. the baseline.
const MAX_REGRESSION: f64 = 0.25;

/// One parsed bench artifact, reduced to what the gate compares.
struct Artifact {
    path: String,
    threads: Option<u64>,
    scale: Option<String>,
    rev: String,
    host_cores: u64,
    /// `(path, count, total_ns)` per span, in artifact order.
    spans: Vec<(String, u64, u64)>,
    /// `(name, value)` per counter, in artifact order.
    counters: Vec<(String, u64)>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let argv: Vec<&str> = args.iter().map(String::as_str).collect();
    let code = match argv[..] {
        ["--trees-only", a, b] => trees_only(a, b),
        ["--bless", out, ref currents @ ..] if !currents.is_empty() => bless(out, currents),
        [ref currents @ .., baseline] if !currents.is_empty() => gate(currents, baseline),
        _ => {
            eprintln!(
                "usage: bench_gate <current.json...> <baseline.json>\n\
                 \u{20}      bench_gate --bless <baseline.json> <current.json...>\n\
                 \u{20}      bench_gate --trees-only <a.json> <b.json>"
            );
            2
        }
    };
    std::process::exit(code);
}

fn load(path: &str) -> Result<Artifact, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = parse(&src).map_err(|e| format!("cannot parse {path}: {e}"))?;
    let obs = doc.get("obs").unwrap_or(&doc);
    let spans = obs
        .get("spans")
        .and_then(Jv::as_arr)
        .map(|spans| {
            spans
                .iter()
                .filter_map(|s| {
                    Some((
                        s.get("path")?.as_str()?.to_string(),
                        s.get("count")?.as_u64()?,
                        s.get("total_ns")?.as_u64()?,
                    ))
                })
                .collect()
        })
        .unwrap_or_default();
    let counters = obs
        .get("counters")
        .and_then(Jv::as_arr)
        .map(|counters| {
            counters
                .iter()
                .filter_map(|c| {
                    Some((
                        c.get("name")?.as_str()?.to_string(),
                        c.get("value")?.as_u64()?,
                    ))
                })
                .collect()
        })
        .unwrap_or_default();
    Ok(Artifact {
        path: path.to_string(),
        threads: doc.get("threads").and_then(Jv::as_u64),
        scale: doc.get("scale").and_then(Jv::as_str).map(str::to_string),
        rev: doc
            .get("rev")
            .and_then(Jv::as_str)
            .unwrap_or("unknown")
            .to_string(),
        host_cores: doc.get("host_cores").and_then(Jv::as_u64).unwrap_or(1),
        spans,
        counters,
    })
}

/// Structural equality of two artifacts: identical span trees (paths +
/// counts) and identical counters. Returns the failure list.
fn structural_diff(a: &Artifact, b: &Artifact) -> Vec<String> {
    let mut failures = Vec::new();
    if a.spans.is_empty() {
        failures.push(format!("{} has an empty span tree", a.path));
    }
    for (path, count, _) in &b.spans {
        match a.spans.iter().find(|(p, _, _)| p == path) {
            None => failures.push(format!("span {path:?} present in {} only", b.path)),
            Some((_, c, _)) if c != count => failures.push(format!(
                "span {path:?} count drifted: {c} in {} vs {count} in {}",
                a.path, b.path
            )),
            Some(_) => {}
        }
    }
    for (path, _, _) in &a.spans {
        if !b.spans.iter().any(|(p, _, _)| p == path) {
            failures.push(format!("span {path:?} present in {} only", a.path));
        }
    }
    for (name, value) in &b.counters {
        match a.counters.iter().find(|(n, _)| n == name) {
            None => failures.push(format!("counter {name:?} present in {} only", b.path)),
            Some((_, v)) if v != value => failures.push(format!(
                "counter {name:?} drifted: {v} in {} vs {value} in {}",
                a.path, b.path
            )),
            Some(_) => {}
        }
    }
    for (name, _) in &a.counters {
        if !b.counters.iter().any(|(n, _)| n == name) {
            failures.push(format!("counter {name:?} present in {} only", a.path));
        }
    }
    failures
}

/// `threads` and `scale` must match; comparing across them is a config
/// mismatch, not a regression.
fn header_diff(a: &Artifact, b: &Artifact) -> Vec<String> {
    let mut failures = Vec::new();
    if a.threads != b.threads {
        failures.push(format!(
            "header mismatch on threads: {:?} in {} vs {:?} in {} \
             (config drift — re-bless the baseline at the new config)",
            a.threads, a.path, b.threads, b.path
        ));
    }
    if a.scale != b.scale {
        failures.push(format!(
            "header mismatch on scale: {:?} in {} vs {:?} in {} \
             (config drift — re-bless the baseline at the new config)",
            a.scale, a.path, b.scale, b.path
        ));
    }
    failures
}

/// Min-merges probe runs: identical structure required, per-span totals
/// become the element-wise minimum (best-of-N).
fn min_merge(mut runs: Vec<Artifact>) -> Result<Artifact, Vec<String>> {
    let mut merged = runs.remove(0);
    for run in &runs {
        let mut failures = header_diff(&merged, run);
        failures.extend(structural_diff(&merged, run));
        if !failures.is_empty() {
            return Err(failures);
        }
        for (path, _, total) in &mut merged.spans {
            if let Some((_, _, t)) = run.spans.iter().find(|(p, _, _)| p == path) {
                *total = (*total).min(*t);
            }
        }
    }
    Ok(merged)
}

fn report_failures(failures: &[String], rebless_hint: bool) -> i32 {
    for f in failures {
        eprintln!("bench_gate: FAIL: {f}");
    }
    eprintln!("bench_gate: {} failure(s)", failures.len());
    if rebless_hint {
        eprintln!(
            "bench_gate: if the change is intentional, re-bless with: \
             scripts/bench_gate.sh --bless"
        );
    }
    1
}

fn trees_only(a_path: &str, b_path: &str) -> i32 {
    let (a, b) = match (load(a_path), load(b_path)) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_gate: {e}");
            return 2;
        }
    };
    let failures = structural_diff(&a, &b);
    if failures.is_empty() {
        println!("bench_gate: PASS (span tree + counters match across runs)");
        0
    } else {
        report_failures(&failures, false)
    }
}

fn gate(current_paths: &[&str], baseline_path: &str) -> i32 {
    let runs: Result<Vec<Artifact>, String> = current_paths.iter().map(|p| load(p)).collect();
    let (runs, baseline) = match (runs, load(baseline_path)) {
        (Ok(r), Ok(b)) => (r, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_gate: {e}");
            return 2;
        }
    };
    let current = match min_merge(runs) {
        Ok(c) => c,
        Err(failures) => return report_failures(&failures, false),
    };
    let mut failures = header_diff(&current, &baseline);
    failures.extend(structural_diff(&current, &baseline));
    if !failures.is_empty() {
        return report_failures(&failures, true);
    }

    println!(
        "bench_gate: baseline rev {} vs current rev {} ({} run(s), best-of totals)",
        baseline.rev,
        current.rev,
        current_paths.len()
    );
    for (path, _, base_ns) in &baseline.spans {
        let Some((_, _, cur_ns)) = current.spans.iter().find(|(p, _, _)| p == path) else {
            continue; // unreachable after structural_diff, defensive
        };
        let ratio = *cur_ns as f64 / (*base_ns).max(1) as f64;
        let verdict = if *base_ns < NOISE_FLOOR_NS {
            "under noise floor, not gated"
        } else if ratio > 1.0 + MAX_REGRESSION {
            failures.push(format!(
                "span {path:?} regressed {:.0}%: {:.2} ms -> {:.2} ms",
                (ratio - 1.0) * 100.0,
                *base_ns as f64 / 1e6,
                *cur_ns as f64 / 1e6
            ));
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "  {path:<56} {:>9.2} ms -> {:>9.2} ms  ({:+.1}%)  {verdict}",
            *base_ns as f64 / 1e6,
            *cur_ns as f64 / 1e6,
            (ratio - 1.0) * 100.0
        );
    }
    if failures.is_empty() {
        println!("bench_gate: PASS (no gated span regressed beyond 25%)");
        0
    } else {
        report_failures(&failures, true)
    }
}

fn bless(out_path: &str, current_paths: &[&str]) -> i32 {
    let runs: Result<Vec<Artifact>, String> = current_paths.iter().map(|p| load(p)).collect();
    let runs = match runs {
        Ok(r) => r,
        Err(e) => {
            eprintln!("bench_gate: {e}");
            return 2;
        }
    };
    let merged = match min_merge(runs) {
        Ok(m) => m,
        Err(failures) => return report_failures(&failures, false),
    };
    if merged.spans.is_empty() {
        eprintln!("bench_gate: refusing to bless an empty span tree");
        return 1;
    }
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"rev\": \"{}\", \"threads\": {}, \"scale\": \"{}\", \"host_cores\": {},\n",
        merged.rev.replace(['"', '\\'], "?"),
        merged.threads.unwrap_or(1),
        merged.scale.as_deref().unwrap_or("small"),
        merged.host_cores
    ));
    json.push_str(&format!(
        "  \"note\": \"min-merged over {} probe run(s); gated fields only\",\n",
        current_paths.len()
    ));
    json.push_str("  \"obs\": {\n    \"spans\": [\n");
    for (i, (path, count, total)) in merged.spans.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"path\": \"{path}\", \"count\": {count}, \"total_ns\": {total}}}{}\n",
            if i + 1 < merged.spans.len() { "," } else { "" }
        ));
    }
    json.push_str("    ],\n    \"counters\": [\n");
    for (i, (name, value)) in merged.counters.iter().enumerate() {
        json.push_str(&format!(
            "      {{\"name\": \"{name}\", \"value\": {value}}}{}\n",
            if i + 1 < merged.counters.len() {
                ","
            } else {
                ""
            }
        ));
    }
    json.push_str("    ]\n  }\n}\n");
    if let Some(parent) = std::path::Path::new(out_path).parent() {
        if let Err(e) = std::fs::create_dir_all(parent) {
            eprintln!("bench_gate: cannot create {parent:?}: {e}");
            return 2;
        }
    }
    match std::fs::write(out_path, &json) {
        Ok(()) => {
            println!(
                "bench_gate: blessed {} span(s), {} counter(s) into {out_path}",
                merged.spans.len(),
                merged.counters.len()
            );
            0
        }
        Err(e) => {
            eprintln!("bench_gate: cannot write {out_path}: {e}");
            2
        }
    }
}
