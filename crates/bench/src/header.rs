//! The shared provenance header stamped into every `results/BENCH_*.json`
//! artifact.
//!
//! A bench number without its context is a trap: a regression gate that
//! compares a 4-thread paper-scale run against a 1-thread small-scale
//! baseline "finds" a 4× regression that is really a config mismatch.
//! Every probe therefore stamps the same four fields — git revision,
//! kernel thread count, dataset scale, host cores — through this one
//! helper, and `bench_gate` refuses to compare artifacts whose headers
//! disagree on the fields that change the numbers.

use crate::Scale;

/// Provenance of one bench artifact: where the code came from and how the
/// run was configured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchHeader {
    /// Short git revision of the working tree (`unknown` outside a repo).
    pub rev: String,
    /// Kernel worker threads the run used (`stod_tensor::par::num_threads`).
    pub threads: usize,
    /// Dataset scale (`small`, `paper` or `city`).
    pub scale: &'static str,
    /// Host cores available to the run (context, not compared).
    pub host_cores: usize,
}

impl BenchHeader {
    /// Collects the header for the current process and `scale`.
    pub fn collect(scale: Scale) -> BenchHeader {
        BenchHeader {
            rev: git_short_rev(),
            threads: stod_tensor::par::num_threads(),
            scale: match scale {
                Scale::Small => "small",
                Scale::Paper => "paper",
                Scale::City => "city",
            },
            host_cores: std::thread::available_parallelism().map_or(1, usize::from),
        }
    }

    /// The header as JSON object fields (no surrounding braces, no
    /// trailing comma), ready to splice into an artifact's top level.
    pub fn json_fields(&self) -> String {
        format!(
            "\"rev\": \"{}\", \"threads\": {}, \"scale\": \"{}\", \"host_cores\": {}",
            self.rev.replace(['"', '\\'], "?"),
            self.threads,
            self.scale,
            self.host_cores
        )
    }
}

/// `git rev-parse --short HEAD`, or `unknown` when git or the repo is
/// unavailable (benches must run from an exported tarball too).
fn git_short_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_fields_are_well_formed_json_fragment() {
        let h = BenchHeader::collect(Scale::Small);
        let js = format!("{{{}}}", h.json_fields());
        let v = crate::jsonv::parse(&js).expect("header must parse as JSON");
        assert_eq!(v.get("scale").and_then(|s| s.as_str()), Some("small"));
        assert!(v.get("threads").and_then(|t| t.as_u64()).unwrap() >= 1);
        assert!(v.get("host_cores").and_then(|c| c.as_u64()).unwrap() >= 1);
        let rev = v.get("rev").and_then(|r| r.as_str()).unwrap();
        assert!(!rev.is_empty());
    }
}
