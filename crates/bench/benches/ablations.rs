//! Design ablations D1–D4 of DESIGN.md — the component-wise evidence
//! behind the paper's architecture choices:
//!
//! * **D2** — spatial (GCNN) factorization vs FC factorization,
//! * **D3** — CNRNN (graph-conv GRU) forecaster vs plain GRU,
//! * **D4** — Dirichlet vs Frobenius factor regularization,
//! * full AF and BF as the reference points (BF = both ablations at once
//!   plus Frobenius reg, which also covers D1's shared pipeline).

use stod_bench::{bench_train_config, build_dataset, print_row, print_sep, Dataset, Scale};
use stod_core::{evaluate, train, AfConfig, AfModel, BfConfig, BfModel, OdForecaster};
use stod_metrics::Metric;

fn main() {
    let scale = Scale::from_env();
    let (s, h) = (6usize, 1usize);
    println!("# Ablations (NYC-like, s = {s}, h = {h}, {scale:?} scale)\n");
    let ds = build_dataset(Dataset::Nyc, scale, 11);
    let split = stod_bench::standard_split(&ds, s, h);
    let k = ds.spec.num_buckets;
    let tc = bench_train_config(41);

    let variants: Vec<(&str, AfConfig)> = vec![
        ("AF (full)", AfConfig::default()),
        (
            "AF w/o spatial factorization (D2)",
            AfConfig {
                fc_factorization: true,
                ..AfConfig::default()
            },
        ),
        (
            "AF w/o graph RNN (D3)",
            AfConfig {
                plain_rnn: true,
                ..AfConfig::default()
            },
        ),
        (
            "AF w/ Frobenius reg (D4)",
            AfConfig {
                frobenius_reg: true,
                ..AfConfig::default()
            },
        ),
    ];

    print_row(&[
        "Variant".into(),
        "KL".into(),
        "JS".into(),
        "EMD".into(),
        "#weights".into(),
    ]);
    print_sep(5);
    let mut results = Vec::new();
    for (name, cfg) in variants {
        let mut af = AfModel::new(&ds.city.centroids(), k, cfg, 41);
        let weights = af.num_weights();
        train(&mut af, &ds, &split.train, None, &tc);
        let r = evaluate(&af, &ds, &split.test, 32);
        print_row(&[
            name.into(),
            format!("{:.4}", r.per_step[0][0]),
            format!("{:.4}", r.per_step[0][1]),
            format!("{:.4}", r.per_step[0][2]),
            format!("{weights}"),
        ]);
        results.push((name, r.per_step[0][2]));
    }
    // BF with the attention decoder (paper §VII outlook).
    let mut bf_attn = BfModel::new(
        ds.num_regions(),
        k,
        BfConfig {
            attention: true,
            ..BfConfig::default()
        },
        41,
    );
    let attn_weights = bf_attn.num_weights();
    train(&mut bf_attn, &ds, &split.train, None, &tc);
    let r = evaluate(&bf_attn, &ds, &split.test, 32);
    print_row(&[
        "BF + attention (§VII outlook)".into(),
        format!("{:.4}", r.per_step[0][0]),
        format!("{:.4}", r.per_step[0][1]),
        format!("{:.4}", r.per_step[0][2]),
        format!("{attn_weights}"),
    ]);

    // BF reference (≈ all three ablations at once).
    let mut bf = BfModel::new(ds.num_regions(), k, BfConfig::default(), 41);
    let bf_weights = bf.num_weights();
    train(&mut bf, &ds, &split.train, None, &tc);
    let r = evaluate(&bf, &ds, &split.test, 32);
    print_row(&[
        "BF (reference)".into(),
        format!("{:.4}", r.per_step[0][0]),
        format!("{:.4}", r.per_step[0][1]),
        format!("{:.4}", r.per_step[0][2]),
        format!("{bf_weights}"),
    ]);

    println!();
    let full = results[0].1;
    for (name, emd) in &results[1..] {
        let delta = 100.0 * (emd - full) / full.max(1e-12);
        println!("{name}: EMD {emd:.4} ({delta:+.1}% vs full AF {full:.4})");
    }
    let _ = Metric::ALL;
}
