//! Reproduces **Table II**: overall forecast accuracy (KL / JS / EMD, each
//! at h = 1, 2, 3 steps ahead) for all seven methods on both datasets, at
//! s = 3 and s = 6 historical intervals.
//!
//! Paper observations to preserve (§VI-B.1):
//!  (1) deep methods beat the shallow baselines,
//!  (2) BF beats the baselines in most settings,
//!  (3) AF is best everywhere,
//!  (4) NYC scores better than CD,
//!  (5) accuracy degrades as h grows,
//!  (6) AF at s = 3 is at least as good as at s = 6.

use stod_bench::{
    build_dataset, print_row, print_sep, run_method, standard_split, Dataset, Scale, METHODS,
};
use stod_metrics::Metric;

fn main() {
    let scale = Scale::from_env();
    let horizon = 3;
    println!("# Table II — overall accuracy ({scale:?} scale)\n");

    // results[(dataset, s)][method] = per-step metric means
    type MethodBlock = Vec<(String, Vec<[f64; 3]>)>;
    let mut summaries: Vec<(String, MethodBlock)> = Vec::new();

    for s in [3usize, 6] {
        for which in [Dataset::Nyc, Dataset::Chengdu] {
            let ds = build_dataset(which, scale, 11);
            let split = standard_split(&ds, s, horizon);
            println!("## {} (s = {s})\n", which.name());
            let mut header = vec!["Method".to_string()];
            for m in Metric::ALL {
                for h in 1..=horizon {
                    header.push(format!("{} h={h}", m.name()));
                }
            }
            print_row(&header);
            print_sep(header.len());
            let mut block = Vec::new();
            for method in METHODS {
                let report = run_method(method, &ds, &split, 23);
                let mut row = vec![method.to_string()];
                for (mi, _) in Metric::ALL.iter().enumerate() {
                    for h in 0..horizon {
                        row.push(format!("{:.4}", report.per_step[h][mi]));
                    }
                }
                print_row(&row);
                block.push((method.to_string(), report.per_step.clone()));
            }
            println!();
            summaries.push((format!("{} s={s}", which.name()), block));
        }
    }

    // Check the paper's headline orderings on EMD at h=1.
    println!("## Qualitative checks (EMD, h = 1)\n");
    for (label, block) in &summaries {
        let emd = |name: &str| -> f64 {
            block
                .iter()
                .find(|(m, _)| m == name)
                .map(|(_, p)| p[0][2])
                .unwrap_or(f64::NAN)
        };
        let af = emd("AF");
        let bf = emd("BF");
        let shallow_best = ["NH", "GP", "VAR"]
            .iter()
            .map(|m| emd(m))
            .fold(f64::MAX, f64::min);
        println!(
            "{label}: AF {af:.4} {} BF {bf:.4}; best shallow {shallow_best:.4} — AF best: {}",
            if af <= bf { "<=" } else { ">" },
            af <= bf && af <= shallow_best,
        );
        // Horizon degradation for AF.
        if let Some((_, p)) = block.iter().find(|(m, _)| m == "AF") {
            println!(
                "  AF EMD by horizon: h1 {:.4}, h2 {:.4}, h3 {:.4} (monotone degradation: {})",
                p[0][2],
                p[1][2],
                p[2][2],
                p[0][2] <= p[1][2] && p[1][2] <= p[2][2]
            );
        }
    }
}
