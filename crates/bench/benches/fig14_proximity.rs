//! Reproduces **Figure 14**: AF accuracy on the Chengdu-like dataset when
//! sweeping the proximity-matrix parameters α (14a) and σ (14b).
//!
//! Paper observation to preserve: AF is insensitive to both parameters —
//! proximity matrices are a robust way to capture spatial correlation.

use stod_bench::{bench_train_config, build_dataset, print_row, print_sep, Dataset, Scale};
use stod_core::{evaluate, train, AfConfig, AfModel};
use stod_graph::ProximityParams;
use stod_metrics::Metric;

fn run_af(alpha: f32, sigma: f32, seed: u64) -> [f64; 3] {
    let scale = Scale::from_env();
    let ds = build_dataset(Dataset::Chengdu, scale, 11);
    let split = stod_bench::standard_split(&ds, 6, 1);
    let cfg = AfConfig {
        proximity: ProximityParams { sigma, alpha },
        ..AfConfig::default()
    };
    let mut af = AfModel::new(&ds.city.centroids(), ds.spec.num_buckets, cfg, seed);
    train(&mut af, &ds, &split.train, None, &bench_train_config(seed));
    let r = evaluate(&af, &ds, &split.test, 32);
    r.per_step[0]
}

fn spread(values: &[f64]) -> f64 {
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    (max - min) / min.max(1e-12)
}

fn main() {
    println!("# Figure 14 — effect of proximity parameters on AF (CD)\n");

    println!("## Figure 14(a) — varying α (σ = 1.0)\n");
    print_row(&["alpha".into(), "KL".into(), "JS".into(), "EMD".into()]);
    print_sep(4);
    let alphas = [0.01f32, 0.1, 0.3];
    let mut emds = Vec::new();
    for &a in &alphas {
        let m = run_af(a, 1.0, 37);
        print_row(&[
            format!("{a}"),
            format!("{:.4}", m[0]),
            format!("{:.4}", m[1]),
            format!("{:.4}", m[2]),
        ]);
        emds.push(m[2]);
    }
    println!(
        "\nrelative EMD spread over α: {:.1}%\n",
        100.0 * spread(&emds)
    );

    println!("## Figure 14(b) — varying σ (α = 0.1)\n");
    print_row(&["sigma (km)".into(), "KL".into(), "JS".into(), "EMD".into()]);
    print_sep(4);
    let sigmas = [0.5f32, 1.0, 3.0];
    let mut emds = Vec::new();
    for &s in &sigmas {
        let m = run_af(0.1, s, 37);
        print_row(&[
            format!("{s}"),
            format!("{:.4}", m[0]),
            format!("{:.4}", m[1]),
            format!("{:.4}", m[2]),
        ]);
        emds.push(m[2]);
    }
    println!(
        "\nrelative EMD spread over σ: {:.1}%",
        100.0 * spread(&emds)
    );
    println!("\nPaper claim: AF is insensitive to σ and α (small spreads).");
    let _ = Metric::ALL; // metric order documented by the header
}
