//! Reproduces **Figure 7**: sparseness of the (simulated) original and
//! preprocessed data — overall OD-pair coverage vs per-15-minute-interval
//! coverage, for both datasets.
//!
//! The paper's NYC set covers 65 % of taxizone pairs overall yet is far
//! sparser per interval; the simulation reproduces that overall-vs-
//! interval gap.

use stod_bench::{build_dataset, print_row, print_sep, Dataset, Scale};
use stod_traffic::stats::{data_share_by_time_of_day, sparseness};

fn main() {
    let scale = Scale::from_env();
    println!("# Figure 7 — data sparseness ({scale:?} scale)\n");
    print_row(&[
        "Data".into(),
        "pair coverage (all data)".into(),
        "mean interval coverage".into(),
        "min".into(),
        "max".into(),
        "observed cells".into(),
    ]);
    print_sep(6);
    for which in [Dataset::Nyc, Dataset::Chengdu] {
        let ds = build_dataset(which, scale, 11);
        let r = sparseness(&ds);
        print_row(&[
            which.name().into(),
            format!("{:.1}%", 100.0 * r.overall_pair_coverage),
            format!("{:.1}%", 100.0 * r.mean_interval_coverage),
            format!("{:.1}%", 100.0 * r.min_interval_coverage),
            format!("{:.1}%", 100.0 * r.max_interval_coverage),
            format!("{}/{}", r.observed_cells, r.total_cells),
        ]);
    }

    println!("\n## Data share per 3-hour bin (the bars of Figures 8–10)\n");
    print_row(&[
        "Data".into(),
        "0-3".into(),
        "3-6".into(),
        "6-9".into(),
        "9-12".into(),
        "12-15".into(),
        "15-18".into(),
        "18-21".into(),
        "21-24".into(),
    ]);
    print_sep(9);
    for which in [Dataset::Nyc, Dataset::Chengdu] {
        let ds = build_dataset(which, scale, 11);
        let shares = data_share_by_time_of_day(&ds);
        let mut row = vec![which.name().to_string()];
        row.extend(shares.iter().map(|s| format!("{:.1}%", 100.0 * s)));
        print_row(&row);
    }
    println!(
        "\nExpected shape: CD shows ~0% before 06:00 (no night data, §VI-B.2); both peak at rush hours."
    );
}
