//! Criterion micro-benchmarks of the computational kernels: matmul,
//! Chebyshev graph convolution (forward + backward), one GCGRU step, the
//! recovery product, EMD/KL, histogram construction and trip simulation.
//!
//! These quantify where a training step's time goes and guard against
//! performance regressions in the kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use stod_graph::{proximity_matrix, scaled_laplacian, ProximityParams};
use stod_metrics::{emd, kl_divergence};
use stod_nn::layers::{ChebyConv, GcGruCell};
use stod_nn::{ParamStore, Tape};
use stod_tensor::rng::Rng64;
use stod_tensor::{matmul, Tensor};
use stod_traffic::{CityModel, HistogramSpec, OdDataset, SimConfig};

fn bench_matmul(c: &mut Criterion) {
    let mut rng = Rng64::new(1);
    let a = Tensor::randn(&[128, 128], 1.0, &mut rng);
    let b = Tensor::randn(&[128, 128], 1.0, &mut rng);
    c.bench_function("matmul_128x128", |bench| {
        bench.iter(|| black_box(matmul(black_box(&a), black_box(&b))))
    });
}

fn lap(n: usize) -> Tensor {
    let centroids: Vec<(f64, f64)> = (0..n)
        .map(|i| ((i % 8) as f64 * 0.7, (i / 8) as f64 * 0.7))
        .collect();
    scaled_laplacian(&proximity_matrix(&centroids, ProximityParams::default()))
}

fn bench_cheby_forward_backward(c: &mut Criterion) {
    let n = 32;
    let mut store = ParamStore::new();
    let mut rng = Rng64::new(2);
    let conv = ChebyConv::new(&mut store, "gc", lap(n), 3, 7, 16, &mut rng);
    let x0 = Tensor::randn(&[16, n, 7], 1.0, &mut rng);
    c.bench_function("cheby_conv_forward_b16_n32", |bench| {
        bench.iter(|| {
            let mut tape = Tape::new();
            let x = tape.constant(x0.clone());
            black_box(conv.apply(&mut tape, &store, x))
        })
    });
    c.bench_function("cheby_conv_train_step_b16_n32", |bench| {
        bench.iter(|| {
            let mut tape = Tape::new();
            let x = tape.constant(x0.clone());
            let y = conv.apply(&mut tape, &store, x);
            let sq = tape.mul(y, y);
            let loss = tape.sum_all(sq);
            black_box(tape.backward(loss))
        })
    });
}

fn bench_gcgru_step(c: &mut Criterion) {
    let n = 32;
    let mut store = ParamStore::new();
    let mut rng = Rng64::new(3);
    let cell = GcGruCell::new(&mut store, "g", lap(n), 2, 35, 16, &mut rng);
    let x0 = Tensor::randn(&[16, n, 35], 1.0, &mut rng);
    c.bench_function("gcgru_step_b16_n32", |bench| {
        bench.iter(|| {
            let mut tape = Tape::new();
            let x = tape.constant(x0.clone());
            let h = cell.zero_state(&mut tape, 16);
            black_box(cell.step(&mut tape, &store, x, h))
        })
    });
}

fn bench_recovery(c: &mut Criterion) {
    let mut rng = Rng64::new(4);
    let r = Tensor::randn(&[16, 32, 5, 7], 1.0, &mut rng);
    let cc = Tensor::randn(&[16, 5, 32, 7], 1.0, &mut rng);
    c.bench_function("recovery_b16_n32_r5_k7", |bench| {
        bench.iter(|| {
            let mut tape = Tape::new();
            let rv = tape.constant(r.clone());
            let cv = tape.constant(cc.clone());
            black_box(stod_core::recovery::recover(&mut tape, rv, cv, None))
        })
    });
}

fn bench_metrics(c: &mut Criterion) {
    let a = [0.1f32, 0.2, 0.3, 0.15, 0.1, 0.1, 0.05];
    let b = [0.05f32, 0.15, 0.25, 0.2, 0.15, 0.1, 0.1];
    c.bench_function("emd_k7", |bench| {
        bench.iter(|| black_box(emd(black_box(&a), black_box(&b))))
    });
    c.bench_function("kl_k7", |bench| {
        bench.iter(|| black_box(kl_divergence(black_box(&a), black_box(&b))))
    });
}

fn bench_histogram_build(c: &mut Criterion) {
    let spec = HistogramSpec::paper();
    let mut rng = Rng64::new(5);
    let speeds: Vec<f64> = (0..64).map(|_| rng.uniform(0.0, 21.0)).collect();
    c.bench_function("histogram_build_64_trips", |bench| {
        bench.iter(|| black_box(spec.build(black_box(&speeds))))
    });
}

fn bench_dataset_generation(c: &mut Criterion) {
    c.bench_function("simulate_one_day_16_regions", |bench| {
        bench.iter(|| {
            let cfg = SimConfig {
                num_days: 1,
                intervals_per_day: 48,
                trips_per_interval: 200.0,
                ..SimConfig::small(7)
            };
            black_box(OdDataset::generate(CityModel::small(16), &cfg))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets =
    bench_matmul,
    bench_cheby_forward_backward,
    bench_gcgru_step,
    bench_recovery,
    bench_metrics,
    bench_histogram_build,
    bench_dataset_generation
}
criterion_main!(benches);
