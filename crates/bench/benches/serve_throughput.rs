//! Serving throughput: requests/sec through the `stod-serve` broker,
//! batched vs. unbatched.
//!
//! * **batched** — concurrent clients ask about different OD pairs of the
//!   *same* forecast key `(t_end, horizon)`, so the broker collapses them
//!   into one model invocation per key and serves the rest from the
//!   in-flight computation or the interval cache.
//! * **unbatched** — every request targets a *distinct* key, so each one
//!   pays a full model forward pass; this is what a serving layer without
//!   micro-batching would do for a burst of per-pair queries.
//!
//! The ratio between the two is the direct win of micro-batching. A plain
//! wall-clock harness (not criterion) because the quantity of interest is
//! aggregate requests/sec under concurrency, not per-call latency.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use stod_baselines::NaiveHistograms;
use stod_core::BfConfig;
use stod_nn::ParamStore;
use stod_serve::{
    Broker, BrokerConfig, FeatureStore, ForecastRequest, ModelConfig, ModelKind, Registry,
    ServeStats,
};
use stod_traffic::{CityModel, OdDataset, SimConfig};

const N: usize = 8;
const LOOKBACK: usize = 4;
const HORIZON: usize = 2;
const CLIENTS: &[usize] = &[1, 4, 8];
const REQUESTS_PER_CLIENT: usize = 200;

fn build_stack(ds: &OdDataset) -> Broker {
    let stats = Arc::new(ServeStats::new());
    let config = ModelConfig {
        kind: ModelKind::Bf(BfConfig {
            encode_dim: 16,
            gru_hidden: 16,
            ..BfConfig::default()
        }),
        centroids: ds.city.centroids(),
        num_buckets: ds.spec.num_buckets,
    };
    let registry = Arc::new(Registry::new(config.clone(), Arc::clone(&stats)));
    let model = config.build(1);
    let v = registry
        .register_store(ParamStore::from_bytes(model.params().to_bytes()).unwrap())
        .unwrap();
    registry.promote(v).unwrap();
    let features = Arc::new(FeatureStore::new(N, ds.spec, ds.num_intervals()));
    for (t, tensor) in ds.tensors.iter().enumerate() {
        features.insert_tensor(t, tensor.clone());
    }
    let fallback = NaiveHistograms::fit(ds, ds.num_intervals());
    Broker::new(
        registry,
        features,
        fallback,
        stats,
        BrokerConfig {
            workers: 2,
            lookback: LOOKBACK,
            cache_capacity: 64,
            ..BrokerConfig::default()
        },
    )
}

/// Fires `clients × REQUESTS_PER_CLIENT` requests and returns
/// (requests/sec, model invocations); `key_of` yields the `t_end` for the
/// i-th request of client `c`.
fn measure(
    broker: &Broker,
    clients: usize,
    key_of: &(impl Fn(usize, usize) -> usize + Sync),
) -> (f64, u64) {
    let invocations_before = broker.stats().snapshot().model_invocations;
    let served = AtomicUsize::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let served = &served;
            scope.spawn(move || {
                for i in 0..REQUESTS_PER_CLIENT {
                    let fc = broker.forecast(ForecastRequest {
                        origin: (c + i) % N,
                        dest: (c + 2 * i + 1) % N,
                        t_end: key_of(c, i),
                        horizon: HORIZON,
                        step: i % HORIZON,
                        deadline: Duration::from_secs(30),
                    });
                    assert_eq!(fc.histogram.len(), 7);
                    served.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let total = served.load(Ordering::Relaxed);
    let invocations = broker.stats().snapshot().model_invocations - invocations_before;
    (total as f64 / elapsed, invocations)
}

fn main() {
    let sim = SimConfig {
        num_days: 2,
        intervals_per_day: 48,
        trips_per_interval: 150.0,
        ..SimConfig::small(31)
    };
    let ds = OdDataset::generate(CityModel::small(N), &sim);
    let max_t = ds.num_intervals() - 1;
    println!(
        "serve_throughput: N={N} regions, lookback={LOOKBACK}, horizon={HORIZON}, \
         {REQUESTS_PER_CLIENT} requests/client\n"
    );
    println!(
        "{:<10} {:>12} {:>12} {:>14} {:>14}",
        "clients", "batched r/s", "unbat. r/s", "batched invoc", "unbat. invoc"
    );
    for &clients in CLIENTS {
        // Batched: every request in a burst shares one key; bursts walk
        // through the intervals so each burst needs one fresh invocation.
        let broker = build_stack(&ds);
        let (batched_rps, batched_inv) = measure(&broker, clients, &|_c, i| {
            LOOKBACK + (i / 8) % (max_t - LOOKBACK)
        });
        // Unbatched: consecutive requests use distinct keys (and the burst
        // pattern never revisits one within the cache window), so every
        // request is its own forward pass.
        let broker = build_stack(&ds);
        let (unbatched_rps, unbatched_inv) = measure(&broker, clients, &|c, i| {
            LOOKBACK + (c * REQUESTS_PER_CLIENT + i) % (max_t - LOOKBACK)
        });
        println!(
            "{clients:<10} {batched_rps:>12.0} {unbatched_rps:>12.0} {batched_inv:>14} {unbatched_inv:>14}"
        );
    }
    println!("\nbatched collapses concurrent same-key requests into one model invocation;");
    println!("unbatched pays one forward pass per request.");
}
