//! Reproduces **Figures 8, 9, 10**: forecast accuracy (EMD / KL / JS) per
//! 3-hour time-of-day bin for FC, BF and AF, together with the per-bin
//! data-share bars, for both datasets (h = 1, s = 6 as in §VI-B.2).
//!
//! Paper observations to preserve: AF and BF beat FC in almost all bins;
//! AF is best overall; bins with little data score worst.

use stod_baselines::{fc::FcConfig, FcModel};
use stod_bench::{bench_train_config, build_dataset, print_row, print_sep, Dataset, Scale};
use stod_core::{evaluate, train, AfConfig, AfModel, BfConfig, BfModel, EvalReport};
use stod_metrics::Metric;
use stod_traffic::stats::data_share_by_time_of_day;

fn main() {
    let scale = Scale::from_env();
    let (s, h) = (6usize, 1usize);
    println!("# Figures 8–10 — accuracy by time of day (s = {s}, h = {h}, {scale:?} scale)\n");

    for which in [Dataset::Nyc, Dataset::Chengdu] {
        let ds = build_dataset(which, scale, 11);
        let split = stod_bench::standard_split(&ds, s, h);
        let n = ds.num_regions();
        let k = ds.spec.num_buckets;
        let tc = bench_train_config(29);

        let mut fc = FcModel::new(n, k, FcConfig::default(), 29);
        train(&mut fc, &ds, &split.train, None, &tc);
        let fc_report = evaluate(&fc, &ds, &split.test, 32);

        let mut bf = BfModel::new(n, k, BfConfig::default(), 29);
        train(&mut bf, &ds, &split.train, None, &tc);
        let bf_report = evaluate(&bf, &ds, &split.test, 32);

        let mut af = AfModel::new(&ds.city.centroids(), k, AfConfig::default(), 29);
        train(&mut af, &ds, &split.train, None, &tc);
        let af_report = evaluate(&af, &ds, &split.test, 32);

        let shares = data_share_by_time_of_day(&ds);
        for (fig, metric) in [(8, Metric::Emd), (9, Metric::Kl), (10, Metric::Js)] {
            println!(
                "## Figure {fig}{} — {} on {}\n",
                if which == Dataset::Nyc { "(a)" } else { "(b)" },
                metric.name(),
                which.name()
            );
            print_row(&[
                "3h bin".into(),
                "FC".into(),
                "BF".into(),
                "AF".into(),
                "data share".into(),
            ]);
            print_sep(5);
            let mi = Metric::ALL
                .iter()
                .position(|m| *m == metric)
                .expect("metric");
            let rows = |r: &EvalReport| -> Vec<(String, f64)> {
                r.by_time[mi]
                    .rows()
                    .map(|(l, m, _)| (l.to_string(), m))
                    .collect()
            };
            let (fr, br, ar) = (rows(&fc_report), rows(&bf_report), rows(&af_report));
            let mut af_wins = 0usize;
            let mut bins_with_data = 0usize;
            for i in 0..fr.len() {
                let any = !fr[i].1.is_nan() || !br[i].1.is_nan() || !ar[i].1.is_nan();
                if !any {
                    continue;
                }
                bins_with_data += 1;
                if ar[i].1 <= fr[i].1 && ar[i].1 <= br[i].1 {
                    af_wins += 1;
                }
                print_row(&[
                    fr[i].0.clone(),
                    format!("{:.4}", fr[i].1),
                    format!("{:.4}", br[i].1),
                    format!("{:.4}", ar[i].1),
                    format!("{:.1}%", 100.0 * shares[i]),
                ]);
            }
            println!("\nAF best in {af_wins}/{bins_with_data} populated bins.\n");
        }
    }
}
