//! Reproduces **Table I**: hyper-parameter settings and weight counts of
//! the three deep models (FC, BF, AF) on both datasets.
//!
//! The paper's observation to preserve: although AF is architecturally the
//! most complex model, it uses the **fewest** weight parameters, because
//! graph convolutions share filters across regions while FC-style models
//! scale with `N·N'·K`.

use stod_baselines::{fc::FcConfig, FcModel};
use stod_bench::{build_dataset, print_row, print_sep, Dataset, Scale};
use stod_core::{AfConfig, AfModel, BfConfig, BfModel, OdForecaster};

fn main() {
    let scale = Scale::from_env();
    println!("# Table I — model configurations and weight counts ({scale:?} scale)\n");
    print_row(&[
        "Data".into(),
        "Model".into(),
        "Configuration".into(),
        "#Weights".into(),
    ]);
    print_sep(4);

    let mut af_weights = Vec::new();
    let mut others = Vec::new();
    for which in [Dataset::Nyc, Dataset::Chengdu] {
        let ds = build_dataset(which, scale, 7);
        let n = ds.num_regions();
        let k = ds.spec.num_buckets;
        let l = n * n * k;

        let fc_cfg = FcConfig::default();
        let fc = FcModel::new(n, k, fc_cfg, 1);
        print_row(&[
            which.name().into(),
            "FC".into(),
            format!(
                "FC_{} – GRU_{} – FC_{l}",
                fc_cfg.encode_dim, fc_cfg.gru_hidden
            ),
            format!("{}", fc.num_weights()),
        ]);
        others.push(fc.num_weights());

        let bf_cfg = BfConfig::default();
        let bf = BfModel::new(n, k, bf_cfg, 1);
        print_row(&[
            which.name().into(),
            "BF".into(),
            format!(
                "2× (FC_{} – GRU_{} – FC_{})",
                bf_cfg.encode_dim,
                bf_cfg.gru_hidden,
                n * bf_cfg.rank * k
            ),
            format!("{}", bf.num_weights()),
        ]);
        others.push(bf.num_weights());

        let af_cfg = AfConfig::default();
        let af = AfModel::new(&ds.city.centroids(), k, af_cfg.clone(), 1);
        let stages: Vec<String> = af_cfg
            .stages
            .iter()
            .map(|st| {
                format!(
                    "GC^{{{}x{}}}–P{}",
                    st.filters,
                    st.order,
                    1 << st.pool_levels
                )
            })
            .collect();
        print_row(&[
            which.name().into(),
            "AF".into(),
            format!(
                "2× ({} – CNRNN^{{{}x{}}} r={})",
                stages.join("–"),
                af_cfg.rnn_hidden,
                af_cfg.rnn_order,
                af_cfg.rank
            ),
            format!("{}", af.num_weights()),
        ]);
        af_weights.push(af.num_weights());
    }

    let min_other = *others.iter().min().expect("nonempty");
    let max_af = *af_weights.iter().max().expect("nonempty");
    println!();
    if max_af < min_other {
        println!(
            "Paper claim holds: AF uses the fewest weights (max {max_af}) despite \
             the most complex architecture (FC/BF min {min_other})."
        );
    } else {
        println!(
            "NOTE: at this scale AF ({max_af}) is not strictly smallest \
             (FC/BF min {min_other}); the gap grows with N as FC/BF scale with N²K."
        );
    }
}
