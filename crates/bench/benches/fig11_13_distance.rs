//! Reproduces **Figures 11, 12, 13**: forecast accuracy (EMD / KL / JS)
//! per OD-distance group (six 0.5 km groups up to 3 km) for FC, BF and AF
//! on both datasets (h = 1, s = 6 as in §VI-B.3).
//!
//! Paper observations to preserve: BF and AF beat FC at every distance;
//! AF beats BF by a clear margin; accuracy tends to degrade for the
//! longest (and sparsest) distance groups.

use stod_baselines::{fc::FcConfig, FcModel};
use stod_bench::{bench_train_config, build_dataset, print_row, print_sep, Dataset, Scale};
use stod_core::{evaluate, train, AfConfig, AfModel, BfConfig, BfModel, EvalReport};
use stod_metrics::Metric;
use stod_traffic::stats::data_share_by_distance;

fn main() {
    let scale = Scale::from_env();
    let (s, h) = (6usize, 1usize);
    println!("# Figures 11–13 — accuracy by OD distance (s = {s}, h = {h}, {scale:?} scale)\n");

    for which in [Dataset::Nyc, Dataset::Chengdu] {
        let ds = build_dataset(which, scale, 11);
        let split = stod_bench::standard_split(&ds, s, h);
        let n = ds.num_regions();
        let k = ds.spec.num_buckets;
        let tc = bench_train_config(31);

        let mut fc = FcModel::new(n, k, FcConfig::default(), 31);
        train(&mut fc, &ds, &split.train, None, &tc);
        let fc_report = evaluate(&fc, &ds, &split.test, 32);

        let mut bf = BfModel::new(n, k, BfConfig::default(), 31);
        train(&mut bf, &ds, &split.train, None, &tc);
        let bf_report = evaluate(&bf, &ds, &split.test, 32);

        let mut af = AfModel::new(&ds.city.centroids(), k, AfConfig::default(), 31);
        train(&mut af, &ds, &split.train, None, &tc);
        let af_report = evaluate(&af, &ds, &split.test, 32);

        let shares = data_share_by_distance(&ds);
        for (fig, metric) in [(11, Metric::Emd), (12, Metric::Kl), (13, Metric::Js)] {
            println!(
                "## Figure {fig}{} — {} on {}\n",
                if which == Dataset::Nyc { "(a)" } else { "(b)" },
                metric.name(),
                which.name()
            );
            print_row(&[
                "distance".into(),
                "FC".into(),
                "BF".into(),
                "AF".into(),
                "data share".into(),
            ]);
            print_sep(5);
            let mi = Metric::ALL
                .iter()
                .position(|m| *m == metric)
                .expect("metric");
            let rows = |r: &EvalReport| -> Vec<(String, f64)> {
                r.by_distance[mi]
                    .rows()
                    .map(|(l, m, _)| (l.to_string(), m))
                    .collect()
            };
            let (fr, br, ar) = (rows(&fc_report), rows(&bf_report), rows(&af_report));
            let mut af_wins = 0usize;
            let mut groups = 0usize;
            for i in 0..fr.len() {
                if fr[i].1.is_nan() && br[i].1.is_nan() && ar[i].1.is_nan() {
                    continue;
                }
                groups += 1;
                if ar[i].1 <= fr[i].1 && ar[i].1 <= br[i].1 {
                    af_wins += 1;
                }
                print_row(&[
                    fr[i].0.clone(),
                    format!("{:.4}", fr[i].1),
                    format!("{:.4}", br[i].1),
                    format!("{:.4}", ar[i].1),
                    format!("{:.1}%", 100.0 * shares[i]),
                ]);
            }
            println!("\nAF best in {af_wins}/{groups} populated distance groups.\n");
        }
    }
}
