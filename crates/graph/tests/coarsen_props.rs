//! Property tests for Graclus-style coarsening over randomized graphs:
//! the parent mapping must be a valid 1-or-2-child partition at every
//! level, total node weight (one unit per original node) must be
//! preserved all the way to the coarsest level, and the emitted pooling
//! order must stay consistent with the parent chain.

use stod_graph::coarsen_for_pooling;
use stod_tensor::rng::Rng64;
use stod_tensor::Tensor;

/// Random symmetric non-negative weight matrix with zero diagonal and
/// density ~`p`.
fn random_graph(n: usize, p: f64, rng: &mut Rng64) -> Tensor {
    let mut w = Tensor::zeros(&[n, n]);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.next_f64() < p {
                let v = rng.next_f32().abs() + 0.05;
                w.set(&[i, j], v);
                w.set(&[j, i], v);
            }
        }
    }
    w
}

#[test]
fn parent_mapping_is_valid_at_every_level() {
    let mut rng = Rng64::new(0xc0a12);
    for case in 0..200 {
        let n = 1 + rng.next_below(12);
        let levels = rng.next_below(4);
        let density = [0.0, 0.2, 0.5, 0.9][rng.next_below(4)];
        let w = random_graph(n, density, &mut rng);
        let c = coarsen_for_pooling(&w, levels);
        let ctx = format!("case {case}: n={n} levels={levels} density={density}");

        assert_eq!(c.parents.len(), levels, "{ctx}: one parent map per level");
        let mut level_size = n;
        for (l, parents) in c.parents.iter().enumerate() {
            assert_eq!(parents.len(), level_size, "{ctx}: level {l} node count");
            let m = parents.iter().copied().max().map_or(0, |x| x + 1);
            // Contiguous cluster ids with one or two children each: the
            // matching may only pair nodes, never build larger clusters
            // or leave a cluster empty.
            let mut sizes = vec![0usize; m];
            for &p in parents {
                assert!(p < m, "{ctx}: parent id out of range");
                sizes[p] += 1;
            }
            for (cl, &s) in sizes.iter().enumerate() {
                assert!(
                    s == 1 || s == 2,
                    "{ctx}: level {l} cluster {cl} has {s} children"
                );
            }
            // Total node weight is preserved: cluster sizes partition the
            // level's nodes.
            assert_eq!(sizes.iter().sum::<usize>(), level_size, "{ctx}: partition");
            level_size = m;
        }
        assert_eq!(c.pooled_len, level_size, "{ctx}: coarsest size");
        assert_eq!(c.coarse_w.dims(), &[level_size, level_size], "{ctx}");
    }
}

/// Composing the per-level parent maps assigns every original node to
/// exactly one coarsest cluster, and the sizes of those clusters sum to
/// `n` — total node weight is preserved end-to-end, with no cluster
/// exceeding the `2^levels` pooling window.
#[test]
fn composed_parents_preserve_total_node_weight() {
    let mut rng = Rng64::new(0xc0a13);
    for _ in 0..200 {
        let n = 1 + rng.next_below(12);
        let levels = 1 + rng.next_below(3);
        let w = random_graph(n, 0.4, &mut rng);
        let c = coarsen_for_pooling(&w, levels);

        let mut weight = vec![0usize; c.pooled_len];
        for node in 0..n {
            let mut cur = node;
            for parents in &c.parents {
                cur = parents[cur];
            }
            weight[cur] += 1;
        }
        assert_eq!(weight.iter().sum::<usize>(), n, "node weight not preserved");
        assert!(
            weight.iter().all(|&s| s >= 1 && s <= c.pool_size()),
            "cluster sizes {weight:?} exceed pool window {}",
            c.pool_size()
        );
    }
}

/// The pooling order agrees with the parent chain: the real nodes of
/// window `k` are exactly the original nodes whose composed parent is
/// cluster `k`.
#[test]
fn pooling_order_matches_composed_parents() {
    let mut rng = Rng64::new(0xc0a14);
    for _ in 0..100 {
        let n = 2 + rng.next_below(10);
        let levels = 1 + rng.next_below(3);
        let w = random_graph(n, 0.5, &mut rng);
        let c = coarsen_for_pooling(&w, levels);

        let coarsest_of =
            |node: usize| -> usize { c.parents.iter().fold(node, |cur, parents| parents[cur]) };
        assert_eq!(c.padded_len(), c.pooled_len * c.pool_size());
        for (k, window) in c.order.chunks(c.pool_size()).enumerate() {
            let mut real: Vec<usize> = window.iter().copied().filter(|&x| x < n).collect();
            let mut expect: Vec<usize> = (0..n).filter(|&node| coarsest_of(node) == k).collect();
            real.sort_unstable();
            expect.sort_unstable();
            assert_eq!(real, expect, "window {k} disagrees with parent chain");
        }
    }
}

/// Coarse edge weights are the sums of the fine inter-cluster weights —
/// mass moves between clusters, it is never created or destroyed (weights
/// inside a merged pair are absorbed, matching Dhillon et al.).
#[test]
fn coarse_weights_are_intercluster_sums() {
    let mut rng = Rng64::new(0xc0a15);
    for _ in 0..100 {
        let n = 2 + rng.next_below(10);
        let w = random_graph(n, 0.6, &mut rng);
        let c = coarsen_for_pooling(&w, 1);
        let parents = &c.parents[0];
        let m = c.pooled_len;
        let mut expect = Tensor::zeros(&[m, m]);
        for i in 0..n {
            for j in 0..n {
                if parents[i] != parents[j] {
                    let v = expect.at(&[parents[i], parents[j]]) + w.at(&[i, j]);
                    expect.set(&[parents[i], parents[j]], v);
                }
            }
        }
        for ci in 0..m {
            for cj in 0..m {
                let got = c.coarse_w.at(&[ci, cj]);
                let want = expect.at(&[ci, cj]);
                assert!(
                    (got - want).abs() <= 1e-5,
                    "coarse_w[{ci},{cj}] = {got}, expected {want}"
                );
            }
        }
    }
}
