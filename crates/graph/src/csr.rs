//! CSR builders for city-scale graphs.
//!
//! At `STOD_SCALE=city` (500–5000 regions) the dense `N×N` proximity and
//! Laplacian tensors stop being viable: N = 5000 means 100 MB per dense
//! matrix and `O(N²)` propagation per Cheby hop, while the thresholded
//! Gaussian kernel keeps each region's neighbourhood at a handful of
//! regions (~1% density at N = 1000 with the paper's σ = 1, α = 0.1).
//! This module builds the graph operators *directly* in CSR form —
//! the dense `N×N` intermediate is never materialised.
//!
//! # Equivalence with the dense builders
//!
//! Every builder here mirrors its dense counterpart's arithmetic
//! exactly on the stored entries:
//!
//! * degrees and power-iteration mat-vecs accumulate in ascending
//!   column order, where skipping a structural zero is the identity
//!   (adding `±0.0` to a finite accumulator), so degree sums, λ_max,
//!   and hence every scaled-Laplacian entry are **bitwise equal** to
//!   the dense path's values on the sparsity pattern;
//! * the dense path's *off-pattern* entries are signed zeros
//!   (`w.map(|x| -x)` turns `0.0` into `-0.0`), which CSR does not
//!   store — so whole-matrix comparisons are numeric (`==`), not
//!   bitwise, off the pattern;
//! * greedy coarsening visits candidates in the same order over the
//!   same non-zero entries, so the matching — and therefore pooling
//!   order, fake-slot layout, and coarse weights — is **identical**.
//!
//! The CSR property suite (`crates/graph/tests/csr_props.rs`) and the
//! `Spmm` conformance kernel pin these claims down.

use crate::proximity::ProximityParams;
use stod_tensor::rng::Rng64;
use stod_tensor::{CsrBuilder, CsrMatrix};

/// Builds the thresholded-Gaussian proximity matrix for `centroids`
/// directly in CSR form. Stored entries are bitwise equal to the dense
/// [`crate::proximity_matrix`]'s non-zeros: `(x−y)²` is sign-symmetric,
/// so computing each row independently matches the dense pair loop.
pub fn proximity_csr(centroids: &[(f64, f64)], params: ProximityParams) -> CsrMatrix {
    let n = centroids.len();
    assert!(params.sigma > 0.0, "sigma must be positive");
    assert!(
        (0.0..1.0).contains(&params.alpha),
        "alpha must be in [0, 1)"
    );
    let s2 = (params.sigma as f64) * (params.sigma as f64);
    let mut b = CsrBuilder::new(n);
    for i in 0..n {
        b.push_row((0..n).filter_map(|j| {
            if i == j {
                return None;
            }
            let dx = centroids[i].0 - centroids[j].0;
            let dy = centroids[i].1 - centroids[j].1;
            let v = (-(dx * dx + dy * dy) / s2).exp() as f32;
            (v >= params.alpha).then_some((j, v))
        }));
    }
    b.finish()
}

/// Combinatorial Laplacian `L = D − W` of a symmetric CSR weight
/// matrix. The diagonal is stored **explicitly** even when zero (an
/// isolated region still needs its `−1` in the scaled form). Degrees
/// are f32 sums over the stored entries in ascending column order —
/// bitwise the dense [`crate::laplacian`]'s all-columns sum, since the
/// skipped zeros are additive identities.
pub fn laplacian_csr(w: &CsrMatrix) -> CsrMatrix {
    let n = w.rows();
    assert_eq!(n, w.cols(), "weight matrix must be square");
    let mut b = CsrBuilder::new(n);
    for i in 0..n {
        let mut w_ii = 0.0f32;
        let degree: f32 = w
            .row(i)
            .map(|(j, v)| {
                if j == i {
                    w_ii = v;
                }
                v
            })
            .sum();
        let diag = degree - w_ii;
        let mut row: Vec<(usize, f32)> = w
            .row(i)
            .filter(|&(j, _)| j != i)
            .map(|(j, v)| (j, -v))
            .collect();
        let pos = row.partition_point(|&(j, _)| j < i);
        row.insert(pos, (i, diag));
        b.push_row(row);
    }
    b.finish()
}

/// Dominant eigenvalue of a symmetric CSR matrix by power iteration —
/// the same iteration as the dense
/// [`stod_tensor::linalg::power_iteration_lambda_max`] (seeded start
/// vector, per-row f64 accumulation in ascending column order), so the
/// result is bitwise equal to the dense path's on the same pattern.
pub fn power_iteration_lambda_max_csr(a: &CsrMatrix, iters: usize, seed: u64) -> f32 {
    let n = a.rows();
    assert_eq!(n, a.cols(), "power iteration needs a square matrix");
    if n == 0 {
        return 0.0;
    }
    let mut rng = Rng64::new(seed);
    let mut v: Vec<f64> = (0..n).map(|_| rng.next_gaussian()).collect();
    let mut lambda = 0.0f64;
    for _ in 0..iters {
        let w = a.matvec_f64(&v);
        let norm = w.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm < 1e-30 {
            return 0.0;
        }
        lambda = norm;
        for (vi, wi) in v.iter_mut().zip(w.iter()) {
            *vi = wi / norm;
        }
    }
    lambda as f32
}

/// Largest Laplacian eigenvalue, mirroring [`crate::laplacian::lambda_max`]
/// (200 iterations, the same fixed seed).
pub fn lambda_max_csr(l: &CsrMatrix) -> f32 {
    power_iteration_lambda_max_csr(l, 200, 0xC0FFEE)
}

/// Scaled Laplacian `L̃ = 2L/λ_max − I` in CSR form, spectrum in
/// `[−1, 1]`. Stored entries are bitwise equal to the dense
/// [`crate::scaled_laplacian`]'s values on the pattern; the result is
/// symmetric (input `w` symmetric ⇒ `L` symmetric ⇒ `L̃` symmetric),
/// which the sparse Cheby backward pass relies on.
pub fn scaled_laplacian_csr(w: &CsrMatrix) -> CsrMatrix {
    let l = laplacian_csr(w);
    let lmax = lambda_max_csr(&l).max(1e-6);
    let n = l.rows();
    let mut b = CsrBuilder::new(n);
    for i in 0..n {
        b.push_row(l.row(i).map(|(j, v)| {
            let scaled = 2.0 * v / lmax;
            (j, if j == i { scaled - 1.0 } else { scaled })
        }));
    }
    b.finish()
}

/// Dirichlet energy `xᵀLx` over a CSR Laplacian, mirroring the dense
/// [`crate::dirichlet_energy`] (f64 accumulation over the stored
/// entries in row-major, column-ascending order — the dense loop skips
/// zero `l_ij` explicitly, so the iteration orders coincide).
pub fn dirichlet_energy_csr(l: &CsrMatrix, x: &stod_tensor::Tensor) -> f32 {
    let n = l.rows();
    assert_eq!(x.dim(0), n, "signal node count mismatch");
    let f: usize = x.dims()[1..].iter().product::<usize>().max(1);
    let xd = x.data();
    let mut total = 0.0f64;
    for i in 0..n {
        for (j, lij) in l.row(i) {
            if lij == 0.0 {
                continue;
            }
            let mut dot = 0.0f64;
            for k in 0..f {
                dot += xd[i * f + k] as f64 * xd[j * f + k] as f64;
            }
            total += lij as f64 * dot;
        }
    }
    total as f32
}

/// Result of coarsening a CSR graph for pooling — the sparse analogue
/// of [`crate::Coarsening`], with the coarse weights kept in CSR form
/// so multi-stage factorizations never densify.
#[derive(Debug, Clone)]
pub struct CsrCoarsening {
    /// Number of real nodes in the original graph.
    pub num_nodes: usize,
    /// Number of binary coarsening levels applied.
    pub levels: usize,
    /// Slot → node map; the sentinel `num_nodes` marks a fake slot.
    pub order: Vec<usize>,
    /// Number of clusters after coarsening (= pooled output length).
    pub pooled_len: usize,
    /// Parent mapping of each matching round (level 0 = original graph).
    pub parents: Vec<Vec<usize>>,
    /// Weight matrix of the coarsened graph, CSR.
    pub coarse_w: CsrMatrix,
}

impl CsrCoarsening {
    /// Length of the padded, reordered node axis (`pooled_len · 2^levels`).
    pub fn padded_len(&self) -> usize {
        self.order.len()
    }

    /// Pooling window size (`2^levels`).
    pub fn pool_size(&self) -> usize {
        1 << self.levels
    }

    /// Number of fake (padding) slots.
    pub fn num_fake(&self) -> usize {
        self.order.iter().filter(|&&x| x == self.num_nodes).count()
    }
}

/// One round of greedy normalized-cut matching over CSR, identical to
/// the dense `match_level`: same f64 degrees, same ascending-degree
/// visit order, same ascending-column candidate scan with strict
/// `gain > best` tie-breaking, same accumulation order for the coarse
/// weights. Only the iteration *support* differs (stored entries vs.
/// all columns), and the skipped entries contribute nothing in either.
fn match_level_csr(w: &CsrMatrix) -> (Vec<usize>, CsrMatrix) {
    let n = w.rows();
    let degrees: Vec<f64> = (0..n)
        .map(|i| w.row(i).map(|(_, v)| v as f64).sum())
        .collect();
    let mut cluster = vec![usize::MAX; n];
    let mut next_cluster = 0usize;
    let mut visit: Vec<usize> = (0..n).collect();
    visit.sort_by(|&a, &b| degrees[a].total_cmp(&degrees[b]).then(a.cmp(&b)));
    for &i in &visit {
        if cluster[i] != usize::MAX {
            continue;
        }
        let mut best: Option<(usize, f64)> = None;
        for (j, v) in w.row(i) {
            if j == i || cluster[j] != usize::MAX {
                continue;
            }
            let wij = v as f64;
            if wij <= 0.0 {
                continue;
            }
            let gain = wij * (1.0 / degrees[i].max(1e-12) + 1.0 / degrees[j].max(1e-12));
            if best.is_none_or(|(_, g)| gain > g) {
                best = Some((j, gain));
            }
        }
        cluster[i] = next_cluster;
        if let Some((j, _)) = best {
            cluster[j] = next_cluster;
        }
        next_cluster += 1;
    }
    // Coarse weights: sum of inter-cluster weights, accumulated in the
    // dense path's row-major, column-ascending encounter order (a
    // BTreeMap keyed on (ci, cj) preserves per-key add order). Exactly
    // like the dense `match_level`, each coarse edge is summed once from
    // its upper-triangle contributions and mirrored — summing the two
    // orientations independently would visit the same addends in
    // different orders and leave the coarse matrix asymmetric in the
    // last ulp, which the bitwise-symmetric CSR Cheby filters reject.
    let m = next_cluster;
    let mut acc: std::collections::BTreeMap<(usize, usize), f32> = Default::default();
    for i in 0..n {
        for (j, v) in w.row(i) {
            let (ci, cj) = (cluster[i], cluster[j]);
            if ci < cj {
                *acc.entry((ci, cj)).or_insert(0.0) += v;
            }
        }
    }
    let mut mirrored: std::collections::BTreeMap<(usize, usize), f32> = Default::default();
    for (&(ci, cj), &v) in &acc {
        mirrored.insert((ci, cj), v);
        mirrored.insert((cj, ci), v);
    }
    let mut b = CsrBuilder::new(m);
    let mut it = mirrored.into_iter().peekable();
    for ci in 0..m {
        let mut row = Vec::new();
        while let Some(&((r, _), _)) = it.peek() {
            if r != ci {
                break;
            }
            let ((_, cj), v) = it.next().unwrap();
            row.push((cj, v));
        }
        b.push_row(row);
    }
    (cluster, b.finish())
}

/// Coarsens a CSR graph through `levels` rounds of binary matching —
/// the sparse analogue of [`crate::coarsen_for_pooling`], producing an
/// identical pooling order (see [`match_level_csr`]).
pub fn coarsen_for_pooling_csr(w: &CsrMatrix, levels: usize) -> CsrCoarsening {
    let n = w.rows();
    assert_eq!(n, w.cols(), "weight matrix must be square");
    if levels == 0 {
        return CsrCoarsening {
            num_nodes: n,
            levels: 0,
            order: (0..n).collect(),
            pooled_len: n,
            parents: Vec::new(),
            coarse_w: w.clone(),
        };
    }

    let mut children_per_level: Vec<Vec<Vec<usize>>> = Vec::with_capacity(levels);
    let mut parents: Vec<Vec<usize>> = Vec::with_capacity(levels);
    let mut current = w.clone();
    for _ in 0..levels {
        let (cluster, coarse) = match_level_csr(&current);
        let m = coarse.rows();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); m];
        for (node, &c) in cluster.iter().enumerate() {
            children[c].push(node);
        }
        children_per_level.push(children);
        parents.push(cluster);
        current = coarse;
    }

    let coarsest = children_per_level.last().expect("levels ≥ 1").len();
    let mut slots: Vec<Option<usize>> = (0..coarsest).map(Some).collect();
    for children in children_per_level.iter().rev() {
        let mut next = Vec::with_capacity(slots.len() * 2);
        for slot in &slots {
            match slot {
                None => {
                    next.push(None);
                    next.push(None);
                }
                Some(c) => {
                    let ch = &children[*c];
                    debug_assert!(!ch.is_empty() && ch.len() <= 2);
                    next.push(Some(ch[0]));
                    next.push(ch.get(1).copied());
                }
            }
        }
        slots = next;
    }

    let order: Vec<usize> = slots.into_iter().map(|s| s.unwrap_or(n)).collect();
    CsrCoarsening {
        num_nodes: n,
        levels,
        order,
        pooled_len: coarsest,
        parents,
        coarse_w: current,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{coarsen_for_pooling, laplacian, proximity_matrix, scaled_laplacian};

    fn centroids(n: usize) -> Vec<(f64, f64)> {
        // Jittered grid, same recipe as the AF tests.
        let side = (n as f64).sqrt().ceil() as usize;
        (0..n)
            .map(|i| {
                let (r, c) = (i / side, i % side);
                let jx = ((i * 7919 % 13) as f64 / 13.0 - 0.5) * 0.2;
                let jy = ((i * 104729 % 17) as f64 / 17.0 - 0.5) * 0.2;
                (c as f64 * 0.7 + jx, r as f64 * 0.7 + jy)
            })
            .collect()
    }

    #[test]
    fn proximity_csr_matches_dense_bitwise_on_pattern() {
        let c = centroids(40);
        let p = ProximityParams::default();
        let dense = proximity_matrix(&c, p);
        let csr = proximity_csr(&c, p);
        assert_eq!(CsrMatrix::from_dense(&dense), csr);
        assert!(csr.is_symmetric());
    }

    #[test]
    fn laplacian_csr_matches_dense() {
        let c = centroids(30);
        let w = proximity_matrix(&c, ProximityParams::default());
        let ld = laplacian(&w);
        let lc = laplacian_csr(&CsrMatrix::from_dense(&w));
        let back = lc.to_dense();
        for i in 0..30 {
            for j in 0..30 {
                // Dense off-pattern zeros are −0.0; compare numerically.
                assert_eq!(ld.at(&[i, j]), back.at(&[i, j]), "({i},{j})");
            }
        }
    }

    #[test]
    fn scaled_laplacian_csr_matches_dense_and_is_symmetric() {
        let c = centroids(30);
        let w = proximity_matrix(&c, ProximityParams::default());
        let sd = scaled_laplacian(&w);
        let sc = scaled_laplacian_csr(&CsrMatrix::from_dense(&w));
        assert!(sc.is_symmetric());
        let back = sc.to_dense();
        for i in 0..30 {
            for j in 0..30 {
                assert_eq!(sd.at(&[i, j]), back.at(&[i, j]), "({i},{j})");
            }
        }
    }

    #[test]
    fn scaled_laplacian_csr_edgeless_is_minus_identity() {
        let sc = scaled_laplacian_csr(&CsrMatrix::from_dense(&stod_tensor::Tensor::zeros(&[4, 4])));
        assert_eq!(sc.nnz(), 4);
        let d = sc.to_dense();
        for i in 0..4 {
            assert_eq!(d.at(&[i, i]), -1.0);
        }
    }

    #[test]
    fn coarsening_matches_dense_exactly() {
        let c = centroids(50);
        let w = proximity_matrix(&c, ProximityParams::default());
        for levels in 0..3 {
            let dd = coarsen_for_pooling(&w, levels);
            let ss = coarsen_for_pooling_csr(&CsrMatrix::from_dense(&w), levels);
            assert_eq!(dd.order, ss.order, "levels={levels}");
            assert_eq!(dd.pooled_len, ss.pooled_len);
            assert_eq!(dd.parents, ss.parents);
            assert_eq!(CsrMatrix::from_dense(&dd.coarse_w), ss.coarse_w);
        }
    }

    #[test]
    fn dirichlet_energy_csr_matches_dense() {
        let c = centroids(20);
        let w = proximity_matrix(&c, ProximityParams::default());
        let l = laplacian(&w);
        let lc = laplacian_csr(&CsrMatrix::from_dense(&w));
        let x = stod_tensor::Tensor::from_vec(
            &[20, 3],
            (0..60)
                .map(|i| ((i * 37 % 11) as f32 - 5.0) * 0.3)
                .collect(),
        );
        let a = crate::dirichlet_energy(&l, &x);
        let b = dirichlet_energy_csr(&lc, &x);
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
