//! # stod-graph
//!
//! The graph machinery behind the paper's advanced framework:
//!
//! * [`proximity`] — the thresholded-Gaussian *proximity matrix* `W`
//!   (§V-A.1) that captures spatial correlation among origin regions and
//!   among destination regions.
//! * [`laplacian`] — combinatorial Laplacian `L = D − W`, its scaled form
//!   `L̃ = 2L/λ_max − I` used by Cheby-Net filters, and the Dirichlet
//!   energy `xᵀLx` used by the Eq. 11 regularizers.
//! * [`cheby`] — plain (non-autodiff) Chebyshev basis computation, used by
//!   tests as a reference for the `stod-nn` layer.
//! * [`coarsen`] — Graclus-style greedy graph coarsening producing the
//!   cluster ordering that makes the paper's *geometric pooling* (§V-A.2)
//!   pool genuinely adjacent regions together.

pub mod cheby;
pub mod coarsen;
pub mod csr;
pub mod laplacian;
pub mod proximity;

pub use coarsen::{coarsen_for_pooling, Coarsening};
pub use csr::{
    coarsen_for_pooling_csr, dirichlet_energy_csr, lambda_max_csr, laplacian_csr, proximity_csr,
    scaled_laplacian_csr, CsrCoarsening,
};
pub use laplacian::{dirichlet_energy, laplacian, scaled_laplacian};
pub use proximity::{proximity_matrix, ProximityParams};
