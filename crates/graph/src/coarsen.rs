//! Graclus-style greedy graph coarsening (Dhillon et al.), used to order
//! regions so that the paper's *geometric pooling* (§V-A.2) pools spatially
//! adjacent regions together — the `(6, 1, 2, 3, 5, 4, 7, 8)` reordering of
//! the paper's running example.
//!
//! The algorithm repeatedly matches each unmatched node with the unmatched
//! neighbor maximizing the normalized-cut gain `w_ij · (1/d_i + 1/d_j)`.
//! After `levels` rounds every surviving cluster holds up to `2^levels`
//! original nodes; singleton merges are padded with *fake nodes* so that a
//! plain stride-`2^levels` pooling over the emitted ordering pools exactly
//! one cluster per window (Defferrard et al.'s construction).

use stod_tensor::Tensor;

/// Result of coarsening a graph for pooling.
#[derive(Debug, Clone)]
pub struct Coarsening {
    /// Number of real nodes in the original graph.
    pub num_nodes: usize,
    /// Number of binary coarsening levels applied.
    pub levels: usize,
    /// Slot → node map of length `padded_len()`. Real nodes appear exactly
    /// once; the sentinel value `num_nodes` marks a fake (zero-padded) slot.
    pub order: Vec<usize>,
    /// Number of clusters after coarsening (= pooled output length).
    pub pooled_len: usize,
    /// Parent mapping of each matching round: `parents[l][i]` is the
    /// cluster at level `l + 1` that node `i` of level `l` merged into
    /// (level 0 = the original graph). One entry per level; empty when
    /// `levels == 0`.
    pub parents: Vec<Vec<usize>>,
    /// Weight matrix of the coarsened graph (`pooled_len × pooled_len`),
    /// for stacking further graph convolutions after pooling.
    pub coarse_w: stod_tensor::Tensor,
}

impl Coarsening {
    /// Length of the padded, reordered node axis (`pooled_len · 2^levels`).
    pub fn padded_len(&self) -> usize {
        self.order.len()
    }

    /// Pooling window size (`2^levels`).
    pub fn pool_size(&self) -> usize {
        1 << self.levels
    }

    /// Number of fake (padding) slots.
    pub fn num_fake(&self) -> usize {
        self.order.iter().filter(|&&x| x == self.num_nodes).count()
    }

    /// Applies the reordering to a vector signal over the original nodes,
    /// filling fake slots with zero (reference implementation for tests;
    /// the autodiff path uses `pad_axis` + `index_select`).
    pub fn reorder_signal(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.num_nodes, "signal length mismatch");
        self.order
            .iter()
            .map(|&i| if i < self.num_nodes { x[i] } else { 0.0 })
            .collect()
    }
}

/// One round of greedy normalized-cut matching. Returns for each node its
/// cluster id and the coarse weight matrix.
fn match_level(w: &Tensor) -> (Vec<usize>, Tensor) {
    let n = w.dim(0);
    let degrees: Vec<f64> = (0..n)
        .map(|i| (0..n).map(|j| w.at(&[i, j]) as f64).sum())
        .collect();
    let mut cluster = vec![usize::MAX; n];
    let mut next_cluster = 0usize;
    // Deterministic visit order: ascending degree favours matching
    // peripheral nodes first (the Graclus heuristic).
    let mut visit: Vec<usize> = (0..n).collect();
    visit.sort_by(|&a, &b| degrees[a].total_cmp(&degrees[b]).then(a.cmp(&b)));
    for &i in &visit {
        if cluster[i] != usize::MAX {
            continue;
        }
        let mut best: Option<(usize, f64)> = None;
        for j in 0..n {
            if j == i || cluster[j] != usize::MAX {
                continue;
            }
            let wij = w.at(&[i, j]) as f64;
            if wij <= 0.0 {
                continue;
            }
            let gain = wij * (1.0 / degrees[i].max(1e-12) + 1.0 / degrees[j].max(1e-12));
            if best.is_none_or(|(_, g)| gain > g) {
                best = Some((j, gain));
            }
        }
        cluster[i] = next_cluster;
        if let Some((j, _)) = best {
            cluster[j] = next_cluster;
        }
        next_cluster += 1;
    }
    // Coarse weights: sum of inter-cluster weights. Each coarse edge is
    // accumulated once, from its upper-triangle contributions in
    // row-major encounter order, then mirrored — summing the two
    // orientations independently would visit the same addends in
    // different orders and leave the result asymmetric in the last ulp,
    // which the bitwise-symmetric CSR Cheby filters cannot tolerate.
    let m = next_cluster;
    let mut cw = Tensor::zeros(&[m, m]);
    for i in 0..n {
        for j in 0..n {
            let (ci, cj) = (cluster[i], cluster[j]);
            if ci < cj {
                let v = cw.at(&[ci, cj]) + w.at(&[i, j]);
                cw.set(&[ci, cj], v);
            }
        }
    }
    for ci in 0..m {
        for cj in (ci + 1)..m {
            cw.set(&[cj, ci], cw.at(&[ci, cj]));
        }
    }
    (cluster, cw)
}

/// Coarsens `w` through `levels` rounds of binary matching and emits the
/// padded pooling order.
///
/// # Panics
/// Panics if `w` is not square.
pub fn coarsen_for_pooling(w: &Tensor, levels: usize) -> Coarsening {
    assert_eq!(w.ndim(), 2, "weight matrix must be 2-D");
    let n = w.dim(0);
    assert_eq!(n, w.dim(1), "weight matrix must be square");
    if levels == 0 {
        return Coarsening {
            num_nodes: n,
            levels: 0,
            order: (0..n).collect(),
            pooled_len: n,
            parents: Vec::new(),
            coarse_w: w.clone(),
        };
    }

    // Run the matchings, remembering each level's children lists and the
    // raw parent maps (exposed for conformance/property tests).
    let mut children_per_level: Vec<Vec<Vec<usize>>> = Vec::with_capacity(levels);
    let mut parents: Vec<Vec<usize>> = Vec::with_capacity(levels);
    let mut current = w.clone();
    for _ in 0..levels {
        let (cluster, coarse) = match_level(&current);
        let m = coarse.dim(0);
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); m];
        for (node, &c) in cluster.iter().enumerate() {
            children[c].push(node);
        }
        children_per_level.push(children);
        parents.push(cluster);
        current = coarse;
    }

    // Expand slot assignments from the coarsest level down, inserting fake
    // slots where a cluster had a single child.
    let coarsest = children_per_level.last().expect("levels ≥ 1").len();
    let mut slots: Vec<Option<usize>> = (0..coarsest).map(Some).collect();
    for children in children_per_level.iter().rev() {
        let mut next = Vec::with_capacity(slots.len() * 2);
        for slot in &slots {
            match slot {
                None => {
                    next.push(None);
                    next.push(None);
                }
                Some(c) => {
                    let ch = &children[*c];
                    debug_assert!(!ch.is_empty() && ch.len() <= 2);
                    next.push(Some(ch[0]));
                    next.push(ch.get(1).copied());
                }
            }
        }
        slots = next;
    }

    let order: Vec<usize> = slots.into_iter().map(|s| s.unwrap_or(n)).collect();
    Coarsening {
        num_nodes: n,
        levels,
        order,
        pooled_len: coarsest,
        parents,
        coarse_w: current,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 2×4 grid graph: strong horizontal neighbors.
    fn grid_w() -> Tensor {
        let n = 8;
        let mut w = Tensor::zeros(&[n, n]);
        let idx = |r: usize, c: usize| r * 4 + c;
        for r in 0..2 {
            for c in 0..4 {
                if c + 1 < 4 {
                    w.set(&[idx(r, c), idx(r, c + 1)], 1.0);
                    w.set(&[idx(r, c + 1), idx(r, c)], 1.0);
                }
                if r + 1 < 2 {
                    w.set(&[idx(r, c), idx(r + 1, c)], 1.0);
                    w.set(&[idx(r + 1, c), idx(r, c)], 1.0);
                }
            }
        }
        w
    }

    #[test]
    fn every_real_node_appears_exactly_once() {
        let c = coarsen_for_pooling(&grid_w(), 2);
        let mut counts = [0usize; 8];
        for &o in &c.order {
            if o < 8 {
                counts[o] += 1;
            }
        }
        assert!(counts.iter().all(|&x| x == 1), "order = {:?}", c.order);
    }

    #[test]
    fn padded_length_matches_pool_arithmetic() {
        let c = coarsen_for_pooling(&grid_w(), 2);
        assert_eq!(c.padded_len(), c.pooled_len * c.pool_size());
        assert_eq!(c.pool_size(), 4);
        assert!(c.padded_len() >= 8);
    }

    #[test]
    fn zero_levels_is_identity() {
        let c = coarsen_for_pooling(&grid_w(), 0);
        assert_eq!(c.order, (0..8).collect::<Vec<_>>());
        assert_eq!(c.pooled_len, 8);
        assert_eq!(c.num_fake(), 0);
    }

    #[test]
    fn one_level_pairs_are_neighbors() {
        let w = grid_w();
        let c = coarsen_for_pooling(&w, 1);
        for pair in c.order.chunks(2) {
            let (a, b) = (pair[0], pair[1]);
            if a < 8 && b < 8 {
                assert!(
                    w.at(&[a, b]) > 0.0,
                    "pooled pair ({a},{b}) are not graph neighbors"
                );
            }
        }
    }

    #[test]
    fn reorder_signal_places_values_and_zeros() {
        let c = coarsen_for_pooling(&grid_w(), 1);
        let x: Vec<f32> = (0..8).map(|i| i as f32 + 1.0).collect();
        let r = c.reorder_signal(&x);
        assert_eq!(r.len(), c.padded_len());
        let sum: f32 = r.iter().sum();
        assert_eq!(sum, x.iter().sum::<f32>(), "fake slots must be zero");
    }

    #[test]
    fn edgeless_graph_all_singletons() {
        let c = coarsen_for_pooling(&Tensor::zeros(&[4, 4]), 1);
        // No matches possible: every cluster is a singleton + one fake.
        assert_eq!(c.pooled_len, 4);
        assert_eq!(c.num_fake(), 4);
    }

    #[test]
    fn deterministic() {
        let a = coarsen_for_pooling(&grid_w(), 2);
        let b = coarsen_for_pooling(&grid_w(), 2);
        assert_eq!(a.order, b.order);
    }

    #[test]
    fn two_levels_quadruple_cluster_connected() {
        // All four members of a window must lie in one connected component
        // of the original graph (they were merged through matchings).
        let w = grid_w();
        let c = coarsen_for_pooling(&w, 2);
        for window in c.order.chunks(4) {
            let real: Vec<usize> = window.iter().copied().filter(|&x| x < 8).collect();
            if real.len() <= 1 {
                continue;
            }
            // BFS within the window members over the original graph.
            let mut seen = vec![false; real.len()];
            seen[0] = true;
            let mut frontier = vec![real[0]];
            while let Some(u) = frontier.pop() {
                for (k, &v) in real.iter().enumerate() {
                    if !seen[k] && w.at(&[u, v]) > 0.0 {
                        seen[k] = true;
                        frontier.push(v);
                    }
                }
            }
            assert!(
                seen.iter().all(|&s| s),
                "window {:?} is not connected in the original graph",
                real
            );
        }
    }
}
