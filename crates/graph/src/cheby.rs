//! Reference (non-autodiff) Chebyshev basis computation — Eq. 5's
//! `T^(·) = [t₁ … t_S]` with `t₁ = x`, `t₂ = L̃·x`, `t_s = 2L̃·t_{s−1} −
//! t_{s−2}`. The `stod-nn` layer is validated against this implementation.

use stod_tensor::{matvec, Tensor};

/// Computes the Chebyshev basis of a node signal `x ∈ R^N` under the
/// scaled Laplacian `l ∈ R^{N×N}`, returning an `N×S` matrix whose columns
/// are `t_1 … t_S`.
///
/// # Panics
/// Panics if shapes disagree or `order == 0`.
pub fn cheby_basis(l: &Tensor, x: &Tensor, order: usize) -> Tensor {
    assert!(order >= 1, "order must be ≥ 1");
    assert_eq!(x.ndim(), 1, "signal must be a vector");
    let n = x.dim(0);
    assert_eq!(l.dims(), &[n, n], "Laplacian shape mismatch");
    let mut cols: Vec<Tensor> = Vec::with_capacity(order);
    cols.push(x.clone());
    if order >= 2 {
        cols.push(matvec(l, x));
    }
    for s in 2..order {
        let lt = matvec(l, &cols[s - 1]);
        let t = Tensor::from_vec(
            &[n],
            lt.data()
                .iter()
                .zip(cols[s - 2].data())
                .map(|(&a, &b)| 2.0 * a - b)
                .collect(),
        );
        cols.push(t);
    }
    // Arrange as N×S.
    let mut out = Tensor::zeros(&[n, order]);
    for (s, col) in cols.iter().enumerate() {
        for i in 0..n {
            out.set(&[i, s], col.at(&[i]));
        }
    }
    out
}

/// Applies one Chebyshev filter `g ∈ R^S` to the basis of `x`:
/// `y = T·g` (the inner product of Eq. 5 before summing over buckets).
pub fn cheby_filter(l: &Tensor, x: &Tensor, g: &Tensor) -> Tensor {
    let basis = cheby_basis(l, x, g.dim(0));
    matvec(&basis, g)
}

/// Computes [`cheby_basis`] for many independent signals, fanning the
/// signals across the [`stod_tensor::par`] pool.
///
/// The recurrence itself is sequential in `s`, but distinct signals (the
/// K buckets of the AF stack, or the channels of a feature matrix) are
/// independent — this is the "parallel over buckets" axis of Eq. 5.
/// Results are in input order and bitwise identical to calling
/// [`cheby_basis`] serially: each signal's basis is produced by the exact
/// same code on a single thread.
pub fn cheby_basis_multi(l: &Tensor, signals: &[Tensor], order: usize) -> Vec<Tensor> {
    let n = l.dim(0);
    let work = signals.len() * order * n * n;
    if signals.len() > 1 && stod_tensor::par::should_parallelize(work) {
        stod_tensor::par::map(signals.len(), |i| cheby_basis(l, &signals[i], order))
    } else {
        signals.iter().map(|x| cheby_basis(l, x, order)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laplacian::{laplacian, scaled_laplacian};

    fn path3_w() -> Tensor {
        Tensor::from_vec(&[3, 3], vec![0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0])
    }

    #[test]
    fn first_column_is_signal() {
        let lt = scaled_laplacian(&path3_w());
        let x = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]);
        let b = cheby_basis(&lt, &x, 3);
        for i in 0..3 {
            assert_eq!(b.at(&[i, 0]), x.at(&[i]));
        }
    }

    #[test]
    fn second_column_is_lx() {
        let lt = scaled_laplacian(&path3_w());
        let x = Tensor::from_vec(&[3], vec![1.0, 0.0, -1.0]);
        let b = cheby_basis(&lt, &x, 2);
        let lx = matvec(&lt, &x);
        for i in 0..3 {
            assert!((b.at(&[i, 1]) - lx.at(&[i])).abs() < 1e-6);
        }
    }

    #[test]
    fn recurrence_holds() {
        let lt = scaled_laplacian(&path3_w());
        let x = Tensor::from_vec(&[3], vec![0.5, -1.0, 2.0]);
        let b = cheby_basis(&lt, &x, 4);
        for s in 2..4 {
            let prev: Tensor = Tensor::from_vec(&[3], (0..3).map(|i| b.at(&[i, s - 1])).collect());
            let lt_prev = matvec(&lt, &prev);
            for i in 0..3 {
                let expect = 2.0 * lt_prev.at(&[i]) - b.at(&[i, s - 2]);
                assert!(
                    (b.at(&[i, s]) - expect).abs() < 1e-5,
                    "recurrence broken at s={s}"
                );
            }
        }
    }

    #[test]
    fn filter_with_e1_is_identity() {
        let lt = scaled_laplacian(&path3_w());
        let x = Tensor::from_vec(&[3], vec![3.0, 1.0, -2.0]);
        let g = Tensor::from_vec(&[3], vec![1.0, 0.0, 0.0]);
        let y = cheby_filter(&lt, &x, &g);
        assert!(y.approx_eq(&x, 1e-6));
    }

    #[test]
    fn multi_signal_basis_bitwise_matches_serial() {
        let lt = scaled_laplacian(&path3_w());
        let signals: Vec<Tensor> = (0..9)
            .map(|i| {
                Tensor::from_vec(
                    &[3],
                    vec![i as f32 * 0.3 - 1.0, (i as f32).sin(), 1.0 - i as f32 * 0.1],
                )
            })
            .collect();
        let serial =
            stod_tensor::par::with_forced_threads(1, || cheby_basis_multi(&lt, &signals, 5));
        for t in [2, 4] {
            let par =
                stod_tensor::par::with_forced_threads(t, || cheby_basis_multi(&lt, &signals, 5));
            assert_eq!(par, serial, "threads={t}");
        }
        // And each entry matches the single-signal reference.
        for (x, b) in signals.iter().zip(serial.iter()) {
            assert_eq!(b, &cheby_basis(&lt, x, 5));
        }
    }

    #[test]
    fn basis_values_stay_bounded() {
        // Chebyshev polynomials of a matrix with spectrum in [−1,1] applied
        // to a bounded signal stay bounded (|T_s| ≤ 1 on the spectrum).
        let lt = scaled_laplacian(&path3_w());
        let x = Tensor::from_vec(&[3], vec![1.0, 1.0, 1.0]);
        let b = cheby_basis(&lt, &x, 8);
        assert!(b.max() <= 3.0 && b.min() >= -3.0, "basis exploded: {:?}", b);
    }

    #[test]
    fn unscaled_laplacian_would_explode() {
        // Sanity check of *why* scaling matters: the same recurrence with
        // the raw Laplacian grows fast.
        let l = laplacian(&path3_w());
        let x = Tensor::from_vec(&[3], vec![1.0, 1.0, 1.0]);
        let raw = cheby_basis(&l, &x, 8);
        let scaled = cheby_basis(&scaled_laplacian(&path3_w()), &x, 8);
        assert!(
            raw.data().iter().map(|x| x.abs()).fold(0.0, f32::max)
                >= scaled.data().iter().map(|x| x.abs()).fold(0.0, f32::max)
        );
    }
}
