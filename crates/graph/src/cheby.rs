//! Reference (non-autodiff) Chebyshev basis computation — Eq. 5's
//! `T^(·) = [t₁ … t_S]` with `t₁ = x`, `t₂ = L̃·x`, `t_s = 2L̃·t_{s−1} −
//! t_{s−2}`. The `stod-nn` layer is validated against this implementation.

use stod_tensor::{matvec, Tensor};

/// Computes the Chebyshev basis of a node signal `x ∈ R^N` under the
/// scaled Laplacian `l ∈ R^{N×N}`, returning an `N×S` matrix whose columns
/// are `t_1 … t_S`.
///
/// # Panics
/// Panics if shapes disagree or `order == 0`.
pub fn cheby_basis(l: &Tensor, x: &Tensor, order: usize) -> Tensor {
    assert!(order >= 1, "order must be ≥ 1");
    assert_eq!(x.ndim(), 1, "signal must be a vector");
    let n = x.dim(0);
    assert_eq!(l.dims(), &[n, n], "Laplacian shape mismatch");
    let mut cols: Vec<Tensor> = Vec::with_capacity(order);
    cols.push(x.clone());
    if order >= 2 {
        cols.push(matvec(l, x));
    }
    for s in 2..order {
        let lt = matvec(l, &cols[s - 1]);
        let t = Tensor::from_vec(
            &[n],
            lt.data()
                .iter()
                .zip(cols[s - 2].data())
                .map(|(&a, &b)| 2.0 * a - b)
                .collect(),
        );
        cols.push(t);
    }
    // Arrange as N×S.
    let mut out = Tensor::zeros(&[n, order]);
    for (s, col) in cols.iter().enumerate() {
        for i in 0..n {
            out.set(&[i, s], col.at(&[i]));
        }
    }
    out
}

/// Applies one Chebyshev filter `g ∈ R^S` to the basis of `x`:
/// `y = T·g` (the inner product of Eq. 5 before summing over buckets).
pub fn cheby_filter(l: &Tensor, x: &Tensor, g: &Tensor) -> Tensor {
    let basis = cheby_basis(l, x, g.dim(0));
    matvec(&basis, g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::laplacian::{laplacian, scaled_laplacian};

    fn path3_w() -> Tensor {
        Tensor::from_vec(&[3, 3], vec![0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0])
    }

    #[test]
    fn first_column_is_signal() {
        let lt = scaled_laplacian(&path3_w());
        let x = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]);
        let b = cheby_basis(&lt, &x, 3);
        for i in 0..3 {
            assert_eq!(b.at(&[i, 0]), x.at(&[i]));
        }
    }

    #[test]
    fn second_column_is_lx() {
        let lt = scaled_laplacian(&path3_w());
        let x = Tensor::from_vec(&[3], vec![1.0, 0.0, -1.0]);
        let b = cheby_basis(&lt, &x, 2);
        let lx = matvec(&lt, &x);
        for i in 0..3 {
            assert!((b.at(&[i, 1]) - lx.at(&[i])).abs() < 1e-6);
        }
    }

    #[test]
    fn recurrence_holds() {
        let lt = scaled_laplacian(&path3_w());
        let x = Tensor::from_vec(&[3], vec![0.5, -1.0, 2.0]);
        let b = cheby_basis(&lt, &x, 4);
        for s in 2..4 {
            let prev: Tensor = Tensor::from_vec(&[3], (0..3).map(|i| b.at(&[i, s - 1])).collect());
            let lt_prev = matvec(&lt, &prev);
            for i in 0..3 {
                let expect = 2.0 * lt_prev.at(&[i]) - b.at(&[i, s - 2]);
                assert!(
                    (b.at(&[i, s]) - expect).abs() < 1e-5,
                    "recurrence broken at s={s}"
                );
            }
        }
    }

    #[test]
    fn filter_with_e1_is_identity() {
        let lt = scaled_laplacian(&path3_w());
        let x = Tensor::from_vec(&[3], vec![3.0, 1.0, -2.0]);
        let g = Tensor::from_vec(&[3], vec![1.0, 0.0, 0.0]);
        let y = cheby_filter(&lt, &x, &g);
        assert!(y.approx_eq(&x, 1e-6));
    }

    #[test]
    fn basis_values_stay_bounded() {
        // Chebyshev polynomials of a matrix with spectrum in [−1,1] applied
        // to a bounded signal stay bounded (|T_s| ≤ 1 on the spectrum).
        let lt = scaled_laplacian(&path3_w());
        let x = Tensor::from_vec(&[3], vec![1.0, 1.0, 1.0]);
        let b = cheby_basis(&lt, &x, 8);
        assert!(b.max() <= 3.0 && b.min() >= -3.0, "basis exploded: {:?}", b);
    }

    #[test]
    fn unscaled_laplacian_would_explode() {
        // Sanity check of *why* scaling matters: the same recurrence with
        // the raw Laplacian grows fast.
        let l = laplacian(&path3_w());
        let x = Tensor::from_vec(&[3], vec![1.0, 1.0, 1.0]);
        let raw = cheby_basis(&l, &x, 8);
        let scaled = cheby_basis(&scaled_laplacian(&path3_w()), &x, 8);
        assert!(
            raw.data().iter().map(|x| x.abs()).fold(0.0, f32::max)
                >= scaled.data().iter().map(|x| x.abs()).fold(0.0, f32::max)
        );
    }
}
