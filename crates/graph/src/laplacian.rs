//! Graph Laplacians and the Dirichlet energy.

use stod_tensor::linalg::power_iteration_lambda_max;
use stod_tensor::Tensor;

/// Combinatorial Laplacian `L = D − W` of a symmetric weight matrix.
///
/// # Panics
/// Panics if `w` is not square.
pub fn laplacian(w: &Tensor) -> Tensor {
    assert_eq!(w.ndim(), 2, "weight matrix must be 2-D");
    let n = w.dim(0);
    assert_eq!(n, w.dim(1), "weight matrix must be square");
    let mut l = w.map(|x| -x);
    for i in 0..n {
        let degree: f32 = (0..n).map(|j| w.at(&[i, j])).sum();
        l.set(&[i, i], degree - w.at(&[i, i]));
    }
    l
}

/// Largest eigenvalue of the Laplacian via power iteration.
pub fn lambda_max(l: &Tensor) -> f32 {
    power_iteration_lambda_max(l, 200, 0xC0FFEE)
}

/// Scaled Laplacian `L̃ = 2L/λ_max − I` whose spectrum lies in `[−1, 1]`,
/// as required by the Chebyshev recurrence (§V-A.2).
///
/// For an edgeless graph (`λ_max = 0`) this degenerates to `−I`, which
/// keeps the Chebyshev basis well-defined.
pub fn scaled_laplacian(w: &Tensor) -> Tensor {
    let l = laplacian(w);
    let lmax = lambda_max(&l).max(1e-6);
    let n = l.dim(0);
    let mut lt = l.map(|x| 2.0 * x / lmax);
    for i in 0..n {
        let v = lt.at(&[i, i]) - 1.0;
        lt.set(&[i, i], v);
    }
    lt
}

/// Dirichlet energy `xᵀ·L·x = ½ Σ_ij W_ij (x_i − x_j)²` of a signal over
/// the graph nodes. For multi-feature signals `x ∈ R^{N×F}` the energies of
/// the feature columns are summed — the `‖·‖²_W` of the paper's Eq. 11.
///
/// # Panics
/// Panics if the node counts of `l` and `x` disagree.
pub fn dirichlet_energy(l: &Tensor, x: &Tensor) -> f32 {
    let n = l.dim(0);
    assert_eq!(x.dim(0), n, "signal node count mismatch");
    let f: usize = x.dims()[1..].iter().product::<usize>().max(1);
    let xd = x.data();
    let ld = l.data();
    let mut total = 0.0f64;
    for i in 0..n {
        for j in 0..n {
            let lij = ld[i * n + j] as f64;
            if lij == 0.0 {
                continue;
            }
            let mut dot = 0.0f64;
            for k in 0..f {
                dot += xd[i * f + k] as f64 * xd[j * f + k] as f64;
            }
            total += lij * dot;
        }
    }
    total as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path3() -> Tensor {
        Tensor::from_vec(&[3, 3], vec![0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0])
    }

    #[test]
    fn laplacian_rows_sum_to_zero() {
        let l = laplacian(&path3());
        for i in 0..3 {
            let row: f32 = (0..3).map(|j| l.at(&[i, j])).sum();
            assert!(row.abs() < 1e-6);
        }
    }

    #[test]
    fn laplacian_known_values() {
        let l = laplacian(&path3());
        assert_eq!(l.at(&[0, 0]), 1.0);
        assert_eq!(l.at(&[1, 1]), 2.0);
        assert_eq!(l.at(&[0, 1]), -1.0);
        assert_eq!(l.at(&[0, 2]), 0.0);
    }

    #[test]
    fn lambda_max_of_path3_is_three() {
        // Path graph P3 Laplacian eigenvalues: 0, 1, 3.
        let l = laplacian(&path3());
        assert!((lambda_max(&l) - 3.0).abs() < 1e-3);
    }

    #[test]
    fn scaled_laplacian_spectrum_bounded() {
        let lt = scaled_laplacian(&path3());
        // λ_max(L̃) = 2·3/3 − 1 = 1; power iteration on |λ| must give ≤ 1.
        let m = stod_tensor::linalg::power_iteration_lambda_max(&lt, 300, 7);
        assert!(m <= 1.0 + 1e-3, "scaled spectrum escaped [−1,1]: {m}");
    }

    #[test]
    fn scaled_laplacian_edgeless_graph() {
        let lt = scaled_laplacian(&Tensor::zeros(&[3, 3]));
        // Degenerates to −I.
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { -1.0 } else { 0.0 };
                assert!((lt.at(&[i, j]) - expect).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn dirichlet_energy_constant_signal_is_zero() {
        let l = laplacian(&path3());
        let x = Tensor::full(&[3], 5.0);
        assert!(dirichlet_energy(&l, &x).abs() < 1e-5);
    }

    #[test]
    fn dirichlet_energy_penalizes_roughness() {
        let l = laplacian(&path3());
        let smooth = Tensor::from_vec(&[3], vec![1.0, 1.1, 1.2]);
        let rough = Tensor::from_vec(&[3], vec![1.0, -1.0, 1.0]);
        assert!(dirichlet_energy(&l, &rough) > dirichlet_energy(&l, &smooth));
    }

    #[test]
    fn dirichlet_energy_matches_pairwise_formula() {
        let w = path3();
        let l = laplacian(&w);
        let x = Tensor::from_vec(&[3], vec![2.0, -1.0, 0.5]);
        let lhs = dirichlet_energy(&l, &x);
        let mut rhs = 0.0f32;
        for i in 0..3 {
            for j in 0..3 {
                rhs += 0.5 * w.at(&[i, j]) * (x.at(&[i]) - x.at(&[j])).powi(2);
            }
        }
        assert!((lhs - rhs).abs() < 1e-5);
    }

    #[test]
    fn dirichlet_energy_multifeature_sums_columns() {
        let l = laplacian(&path3());
        let x1 = Tensor::from_vec(&[3], vec![1.0, 0.0, 1.0]);
        let x2 = Tensor::from_vec(&[3], vec![0.0, 2.0, 0.0]);
        let both = Tensor::from_vec(&[3, 2], vec![1.0, 0.0, 0.0, 2.0, 1.0, 0.0]);
        let sum = dirichlet_energy(&l, &x1) + dirichlet_energy(&l, &x2);
        assert!((dirichlet_energy(&l, &both) - sum).abs() < 1e-4);
    }
}
