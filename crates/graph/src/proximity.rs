//! Proximity matrices (§V-A.1).
//!
//! Spatial correlation among regions is captured by a thresholded Gaussian
//! kernel over region-centroid distances — the construction of Shuman et
//! al. that the paper adopts via its reference [38]:
//!
//! ```text
//! W_ij = exp(−dist(i,j)² / σ²)   if i ≠ j and exp(·) ≥ α, else 0
//! ```
//!
//! `σ` controls the kernel bandwidth, `α` sparsifies the graph. Figure 14
//! of the paper sweeps both and finds the framework insensitive to them;
//! the `fig14_proximity` bench reproduces that sweep.

use stod_tensor::Tensor;

/// Parameters of the thresholded Gaussian proximity kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProximityParams {
    /// Kernel bandwidth σ (same unit as the supplied distances).
    pub sigma: f32,
    /// Sparsification threshold α ∈ [0, 1): weights below it become 0.
    pub alpha: f32,
}

impl Default for ProximityParams {
    fn default() -> Self {
        // Paper defaults (robust per Figure 14): σ = 1 km, α = 0.1.
        ProximityParams {
            sigma: 1.0,
            alpha: 0.1,
        }
    }
}

/// Builds the proximity matrix for regions located at `centroids`
/// (`(x, y)` pairs, distance = Euclidean).
///
/// The diagonal is zero (no self loops). The result is symmetric and
/// non-negative.
///
/// ```
/// use stod_graph::{proximity_matrix, ProximityParams};
///
/// let w = proximity_matrix(
///     &[(0.0, 0.0), (1.0, 0.0), (5.0, 0.0)],
///     ProximityParams { sigma: 1.0, alpha: 0.1 },
/// );
/// // Nearby regions are linked; the far region is cut off by α.
/// assert!(w.at(&[0, 1]) > 0.3);
/// assert_eq!(w.at(&[0, 2]), 0.0);
/// ```
pub fn proximity_matrix(centroids: &[(f64, f64)], params: ProximityParams) -> Tensor {
    let n = centroids.len();
    let mut w = Tensor::zeros(&[n, n]);
    assert!(params.sigma > 0.0, "sigma must be positive");
    assert!(
        (0.0..1.0).contains(&params.alpha),
        "alpha must be in [0, 1)"
    );
    let s2 = (params.sigma as f64) * (params.sigma as f64);
    for i in 0..n {
        for j in (i + 1)..n {
            let dx = centroids[i].0 - centroids[j].0;
            let dy = centroids[i].1 - centroids[j].1;
            let d2 = dx * dx + dy * dy;
            let v = (-d2 / s2).exp() as f32;
            if v >= params.alpha {
                w.set(&[i, j], v);
                w.set(&[j, i], v);
            }
        }
    }
    w
}

/// Mean degree (number of non-zero neighbors) of a proximity matrix —
/// useful to report graph sparsity in experiments.
pub fn mean_degree(w: &Tensor) -> f64 {
    let n = w.dim(0);
    if n == 0 {
        return 0.0;
    }
    let nnz = w.data().iter().filter(|&&x| x > 0.0).count();
    nnz as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_centroids(n: usize, spacing: f64) -> Vec<(f64, f64)> {
        (0..n).map(|i| (i as f64 * spacing, 0.0)).collect()
    }

    #[test]
    fn symmetric_zero_diagonal_nonnegative() {
        let w = proximity_matrix(&line_centroids(5, 0.5), ProximityParams::default());
        for i in 0..5 {
            assert_eq!(w.at(&[i, i]), 0.0);
            for j in 0..5 {
                assert_eq!(w.at(&[i, j]), w.at(&[j, i]));
                assert!(w.at(&[i, j]) >= 0.0);
            }
        }
    }

    #[test]
    fn closer_regions_weigh_more() {
        let w = proximity_matrix(&line_centroids(4, 0.5), ProximityParams::default());
        assert!(w.at(&[0, 1]) > w.at(&[0, 2]));
    }

    #[test]
    fn alpha_sparsifies() {
        let c = line_centroids(6, 0.8);
        let dense = proximity_matrix(
            &c,
            ProximityParams {
                sigma: 1.0,
                alpha: 0.0001,
            },
        );
        let sparse = proximity_matrix(
            &c,
            ProximityParams {
                sigma: 1.0,
                alpha: 0.5,
            },
        );
        assert!(mean_degree(&sparse) < mean_degree(&dense));
    }

    #[test]
    fn sigma_widens_neighborhood() {
        let c = line_centroids(6, 1.0);
        let narrow = proximity_matrix(
            &c,
            ProximityParams {
                sigma: 0.5,
                alpha: 0.1,
            },
        );
        let wide = proximity_matrix(
            &c,
            ProximityParams {
                sigma: 3.0,
                alpha: 0.1,
            },
        );
        assert!(mean_degree(&wide) > mean_degree(&narrow));
    }

    #[test]
    fn identical_centroids_get_weight_one() {
        let w = proximity_matrix(
            &[(0.0, 0.0), (0.0, 0.0)],
            ProximityParams {
                sigma: 1.0,
                alpha: 0.5,
            },
        );
        assert_eq!(w.at(&[0, 1]), 1.0);
    }

    #[test]
    #[should_panic(expected = "sigma must be positive")]
    fn zero_sigma_panics() {
        proximity_matrix(
            &[(0.0, 0.0)],
            ProximityParams {
                sigma: 0.0,
                alpha: 0.1,
            },
        );
    }
}
