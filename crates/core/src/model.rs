//! The `OdForecaster` trait shared by BF, AF and the deep baselines, which
//! lets one trainer and one evaluator drive every model.

use stod_nn::{ParamStore, Tape, Var};
use stod_tensor::rng::Rng64;
use stod_tensor::Tensor;

/// Forward-pass mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// Training: dropout active at the given probability.
    Train {
        /// Dropout probability applied by layers that support it.
        dropout: f32,
    },
    /// Evaluation: deterministic.
    Eval,
}

impl Mode {
    /// True during training.
    pub fn is_train(&self) -> bool {
        matches!(self, Mode::Train { .. })
    }

    /// Effective dropout probability (0 during evaluation).
    pub fn dropout(&self) -> f32 {
        match self {
            Mode::Train { dropout } => *dropout,
            Mode::Eval => 0.0,
        }
    }
}

/// Result of a model forward pass.
pub struct ModelOutput {
    /// One predicted full tensor per future step, each `[B, N, N', K]`,
    /// already recovered (softmaxed histograms per cell).
    pub predictions: Vec<Var>,
    /// Optional scalar regularization term (the λ_R‖R̂‖² + λ_C‖Ĉ‖² part of
    /// Eq. 4 / Eq. 11), to be *added* to the data loss.
    pub regularizer: Option<Var>,
}

/// A trainable stochastic-OD-matrix forecaster.
///
/// The `Send + Sync` bound is part of the contract: the trainer fans
/// minibatch shards across the [`stod_tensor::par`] pool, which requires
/// sharing `&dyn OdForecaster` between worker threads. `forward` takes
/// `&self`, so implementations are naturally thread-safe as long as they
/// avoid interior mutability (all current models are plain data).
pub trait OdForecaster: Send + Sync {
    /// Human-readable model name (used in experiment tables).
    fn name(&self) -> &str;

    /// The model's parameters.
    fn params(&self) -> &ParamStore;

    /// Mutable access to the parameters (for the optimizer).
    fn params_mut(&mut self) -> &mut ParamStore;

    /// Builds the forward computation for a batch of input steps (each
    /// `[B, N, N', K]`) and returns `horizon` predictions.
    fn forward(
        &self,
        tape: &mut Tape,
        inputs: &[Tensor],
        horizon: usize,
        mode: Mode,
        rng: &mut Rng64,
    ) -> ModelOutput;

    /// Like [`OdForecaster::forward`], but with the per-step Eq. 4 loss
    /// masks (`[B, N, N', K]`, one per horizon step) available so the
    /// recovery stage can skip empty `(o, d)` cells. The contract: the
    /// masked loss and all parameter gradients are **bitwise identical**
    /// to [`OdForecaster::forward`]'s — only predictions at masked cells
    /// may differ (they are uniform on the sparse path). The default
    /// implementation ignores the masks; factorization models override it.
    fn forward_masked(
        &self,
        tape: &mut Tape,
        inputs: &[Tensor],
        horizon: usize,
        mode: Mode,
        rng: &mut Rng64,
        masks: &[Tensor],
    ) -> ModelOutput {
        let _ = masks;
        self.forward(tape, inputs, horizon, mode, rng)
    }

    /// Total number of scalar weights (the `#weights` column of Table I).
    fn num_weights(&self) -> usize {
        self.params().num_weights()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_accessors() {
        let t = Mode::Train { dropout: 0.3 };
        assert!(t.is_train());
        assert!((t.dropout() - 0.3).abs() < 1e-9);
        assert!(!Mode::Eval.is_train());
        assert_eq!(Mode::Eval.dropout(), 0.0);
    }
}
