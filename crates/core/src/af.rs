//! The Advanced Framework (§V, Algorithm 2): dual-stage graph-convolutional
//! recurrent forecasting.
//!
//! Stage 1 — **spatial factorization** (§V-A): each input tensor is sliced
//! by origin; the resulting `(N' destinations × K buckets)` matrices are
//! treated as node signals on the *destination proximity graph* and pushed
//! through Cheby-Net convolutions (Eq. 5) interleaved with geometric
//! pooling over a Graclus coarsening order (Eq. 6). The symmetric
//! procedure over the *origin proximity graph* yields the destination
//! factor. A final linear projection over the pooled-cluster axis sets the
//! factorization rank β.
//!
//! Stage 2 — **spatio-temporal forecasting** (§V-B): two CNRNNs
//! (graph-convolutional GRUs, Eqs. 7–10) forecast the factor sequences on
//! their respective graphs.
//!
//! Recovery is shared with BF; the Eq. 11 loss regularizes the predicted
//! factors with the Dirichlet norm `‖·‖²_W` of their graph.
//!
//! The `fc_factorization`, `plain_rnn` and `frobenius_reg` switches in
//! [`AfConfig`] disable one ingredient at a time — the D2/D3/D4 ablations
//! of DESIGN.md.

use crate::config::AfConfig;
use crate::model::{Mode, ModelOutput, OdForecaster};
use crate::recovery::{recover, recover_masked};
use std::sync::Arc;
use stod_graph::{
    coarsen_for_pooling, coarsen_for_pooling_csr, laplacian_csr, proximity_csr, proximity_matrix,
    scaled_laplacian, scaled_laplacian_csr,
};
use stod_nn::layers::{csr_propagate, ChebyConv, ChebyFilter, GcGruSeq2Seq, GruSeq2Seq, Linear};
use stod_nn::{ParamId, ParamStore, Tape, Var};
use stod_tensor::rng::Rng64;
use stod_tensor::{CsrMatrix, Tensor};

/// A proximity graph in whichever representation the configured
/// [`crate::GraphMode`] picked. Both arms build the same Laplacians,
/// coarsenings and Cheby filters — the CSR ones are proven equivalent to
/// dense in `stod-graph`'s tests — so the choice changes memory and
/// speed, not semantics.
#[derive(Clone)]
enum Adjacency {
    Dense(Tensor),
    Csr(CsrMatrix),
}

impl Adjacency {
    fn num_nodes(&self) -> usize {
        match self {
            Adjacency::Dense(w) => w.dim(0),
            Adjacency::Csr(w) => w.rows(),
        }
    }

    /// The scaled Laplacian as a Cheby filter in matching representation.
    fn scaled_laplacian_filter(&self) -> ChebyFilter {
        match self {
            Adjacency::Dense(w) => ChebyFilter::from(scaled_laplacian(w)),
            Adjacency::Csr(w) => ChebyFilter::from(Arc::new(scaled_laplacian_csr(w))),
        }
    }

    /// Graclus-style coarsening: (node order, pool window, coarse graph).
    fn coarsen(&self, levels: usize) -> (Vec<usize>, usize, Adjacency) {
        match self {
            Adjacency::Dense(w) => {
                let c = coarsen_for_pooling(w, levels);
                (c.order.clone(), c.pool_size(), Adjacency::Dense(c.coarse_w))
            }
            Adjacency::Csr(w) => {
                let c = coarsen_for_pooling_csr(w, levels);
                (c.order.clone(), c.pool_size(), Adjacency::Csr(c.coarse_w))
            }
        }
    }
}

/// An unscaled graph Laplacian for the Eq. 11 Dirichlet regularizer.
enum Laplacian {
    Dense(Tensor),
    Csr(Arc<CsrMatrix>),
}

/// One graph-convolution + pooling stage of the spatial factorization.
struct SpatialStage {
    conv: ChebyConv,
    /// Reordering of the node axis; entries equal to `in_nodes` select the
    /// appended zero row (fake pooling slots).
    order: Vec<usize>,
    /// Pooling window (2^levels); 1 disables pooling.
    pool: usize,
}

/// A complete factorization path (used twice: R side and C side).
enum Factorization {
    /// GCNN stages + rank projection (the real AF).
    Spatial {
        stages: Vec<SpatialStage>,
        project: Linear,
        pooled_nodes: usize,
    },
    /// FC bottleneck (ablation D2), mirroring BF's factorization.
    Fc { enc: Linear, dec: Linear },
}

/// A factor-sequence forecaster.
#[allow(clippy::large_enum_variant)] // one instance per model; boxing buys nothing
enum Forecaster {
    /// CNRNN over the factor's graph (the real AF).
    Graph(GcGruSeq2Seq),
    /// Plain GRU over flattened factors (ablation D3).
    Plain(GruSeq2Seq),
}

/// The Advanced Framework model.
pub struct AfModel {
    store: ParamStore,
    num_regions: usize,
    num_buckets: usize,
    cfg: AfConfig,
    r_fact: Factorization,
    c_fact: Factorization,
    r_rnn: Forecaster,
    c_rnn: Forecaster,
    /// Unscaled Laplacian of the origin graph (Dirichlet regularizer).
    origin_l: Laplacian,
    /// Unscaled Laplacian of the destination graph.
    dest_l: Laplacian,
    /// Origin-, destination- and bucket-wise recovery logit biases.
    bias_o: ParamId,
    bias_d: ParamId,
    bias_k: ParamId,
}

impl AfModel {
    /// Builds an AF model over the given region centroids (km).
    ///
    /// Origin and destination proximity graphs are both derived from the
    /// centroids with the configured (σ, α); they coincide when origins and
    /// destinations share one partition, as in both of the paper's
    /// datasets, but the two code paths stay separate as in the paper.
    pub fn new(centroids: &[(f64, f64)], num_buckets: usize, cfg: AfConfig, seed: u64) -> AfModel {
        let n = centroids.len();
        assert!(n >= 2, "need at least two regions");
        let mut store = ParamStore::new();
        let mut rng = Rng64::new(seed);

        let (origin_w, origin_l) = if cfg.graph.is_sparse(n) {
            let w = proximity_csr(centroids, cfg.proximity);
            let l = Laplacian::Csr(Arc::new(laplacian_csr(&w)));
            (Adjacency::Csr(w), l)
        } else {
            let w = proximity_matrix(centroids, cfg.proximity);
            let l = Laplacian::Dense(stod_graph::laplacian(&w));
            (Adjacency::Dense(w), l)
        };
        let dest_w = origin_w.clone();
        let dest_l = match &origin_l {
            Laplacian::Dense(l) => Laplacian::Dense(l.clone()),
            Laplacian::Csr(l) => Laplacian::Csr(Arc::clone(l)),
        };

        // R side convolves over the destination graph (§V-A: a slice per
        // origin holds costs to all destinations); C side over the origin
        // graph.
        let r_fact = Self::build_factorization(
            &mut store,
            "af.fact_r",
            &dest_w,
            n,
            num_buckets,
            &cfg,
            &mut rng,
        );
        let c_fact = Self::build_factorization(
            &mut store,
            "af.fact_c",
            &origin_w,
            n,
            num_buckets,
            &cfg,
            &mut rng,
        );

        let feat = cfg.rank * num_buckets;
        let r_rnn = if cfg.plain_rnn {
            Forecaster::Plain(GruSeq2Seq::new(
                &mut store,
                "af.rnn_r",
                n * feat,
                cfg.rnn_hidden.max(8),
                &mut rng,
            ))
        } else {
            Forecaster::Graph(GcGruSeq2Seq::new(
                &mut store,
                "af.rnn_r",
                origin_w.scaled_laplacian_filter(),
                cfg.rnn_order,
                feat,
                cfg.rnn_hidden,
                &mut rng,
            ))
        };
        let c_rnn = if cfg.plain_rnn {
            Forecaster::Plain(GruSeq2Seq::new(
                &mut store,
                "af.rnn_c",
                n * feat,
                cfg.rnn_hidden.max(8),
                &mut rng,
            ))
        } else {
            Forecaster::Graph(GcGruSeq2Seq::new(
                &mut store,
                "af.rnn_c",
                dest_w.scaled_laplacian_filter(),
                cfg.rnn_order,
                feat,
                cfg.rnn_hidden,
                &mut rng,
            ))
        };

        let bias_o = store.register("af.bias_o", Tensor::zeros(&[n, 1, num_buckets]));
        let bias_d = store.register("af.bias_d", Tensor::zeros(&[1, n, num_buckets]));
        let bias_k = store.register("af.bias_k", Tensor::zeros(&[num_buckets]));

        AfModel {
            store,
            num_regions: n,
            num_buckets,
            cfg,
            r_fact,
            c_fact,
            r_rnn,
            c_rnn,
            origin_l,
            dest_l,
            bias_o,
            bias_d,
            bias_k,
        }
    }

    /// Builds the `[N, N', K]` recovery bias from its factorized parts.
    fn recovery_bias(&self, tape: &mut Tape) -> Var {
        let bo = tape.param(&self.store, self.bias_o);
        let bd = tape.param(&self.store, self.bias_d);
        let bk = tape.param(&self.store, self.bias_k);
        let od = tape.add(bo, bd);
        tape.add(od, bk)
    }

    /// Builds one factorization path over graph `w` (the graph of the
    /// dimension being convolved, i.e. the *other* dimension's proximity).
    fn build_factorization(
        store: &mut ParamStore,
        prefix: &str,
        w: &Adjacency,
        num_regions: usize,
        num_buckets: usize,
        cfg: &AfConfig,
        rng: &mut Rng64,
    ) -> Factorization {
        if cfg.fc_factorization {
            let l = num_regions * num_regions * num_buckets;
            let out = num_regions * cfg.rank * num_buckets;
            let enc = Linear::new(store, &format!("{prefix}.enc"), l, 32, rng);
            let dec = Linear::new(store, &format!("{prefix}.dec"), 32, out, rng);
            return Factorization::Fc { enc, dec };
        }
        let mut stages = Vec::with_capacity(cfg.stages.len());
        let mut cur_w = w.clone();
        let mut in_feat = num_buckets;
        for (i, st) in cfg.stages.iter().enumerate() {
            // Last stage keeps Q = K so factors retain per-bucket slices.
            let filters = if i + 1 == cfg.stages.len() {
                num_buckets
            } else {
                st.filters
            };
            let conv = ChebyConv::new(
                store,
                &format!("{prefix}.gc{i}"),
                cur_w.scaled_laplacian_filter(),
                st.order,
                in_feat,
                filters,
                rng,
            );
            let (order, pool, coarse_w) = cur_w.coarsen(st.pool_levels);
            stages.push(SpatialStage { conv, order, pool });
            cur_w = coarse_w;
            in_feat = filters;
        }
        let pooled_nodes = cur_w.num_nodes();
        let project = Linear::new(
            store,
            &format!("{prefix}.rank_proj"),
            pooled_nodes,
            cfg.rank,
            rng,
        );
        Factorization::Spatial {
            stages,
            project,
            pooled_nodes,
        }
    }

    /// Applies one factorization path to slices `[Bslices, nodes, K]`,
    /// returning `[Bslices, rank, K]`.
    #[allow(clippy::too_many_arguments)] // private plumbing of one call site
    fn run_spatial(
        tape: &mut Tape,
        store: &ParamStore,
        stages: &[SpatialStage],
        project: &Linear,
        pooled_nodes: usize,
        rank: usize,
        x: Var,
        mode: Mode,
        rng: &mut Rng64,
    ) -> Var {
        let bs = tape.value(x).dim(0);
        let mut y = x;
        for st in stages {
            y = st.conv.apply(tape, store, y);
            y = tape.relu(y);
            y = tape.dropout(y, mode.dropout(), mode.is_train(), rng);
            if st.pool > 1 {
                // Append a zero row for fake slots, reorder per the
                // coarsening, then pool each cluster window.
                let feat = st.conv.out_feat();
                let zeros = tape.constant(Tensor::zeros(&[bs, 1, feat]));
                let padded = tape.concat(&[y, zeros], 1);
                let gathered = tape.index_select(padded, 1, &st.order);
                y = tape.max_pool_axis(gathered, 1, st.pool);
            }
        }
        // Rank projection over the pooled-cluster axis.
        let k = tape.value(y).dim(2);
        let perm = tape.permute(y, &[0, 2, 1]); // [Bs, K, m]
        let flat = tape.reshape(perm, &[bs * k, pooled_nodes]);
        let proj = project.apply(tape, store, flat); // [Bs·K, rank]
        let back = tape.reshape(proj, &[bs, k, rank]);
        tape.permute(back, &[0, 2, 1]) // [Bs, rank, K]
    }

    /// Factorizes one input step `[B, N, N', K]` into
    /// `R [B, N, β, K]` and `C [B, β, N', K]`.
    fn factorize(&self, tape: &mut Tape, x: Var, mode: Mode, rng: &mut Rng64) -> (Var, Var) {
        let dims = tape.value(x).dims().to_vec();
        let (b, n, nd, k) = (dims[0], dims[1], dims[2], dims[3]);
        let rank = self.cfg.rank;

        let r = match &self.r_fact {
            Factorization::Spatial {
                stages,
                project,
                pooled_nodes,
            } => {
                // Slice by origin: nodes = destinations.
                let slices = tape.reshape(x, &[b * n, nd, k]);
                let f = Self::run_spatial(
                    tape,
                    &self.store,
                    stages,
                    project,
                    *pooled_nodes,
                    rank,
                    slices,
                    mode,
                    rng,
                );
                tape.reshape(f, &[b, n, rank, k])
            }
            Factorization::Fc { enc, dec } => {
                let flat = tape.reshape(x, &[b, n * nd * k]);
                let h = enc.apply(tape, &self.store, flat);
                let h = tape.tanh(h);
                let h = tape.dropout(h, mode.dropout(), mode.is_train(), rng);
                let out = dec.apply(tape, &self.store, h);
                tape.reshape(out, &[b, n, rank, k])
            }
        };

        let c = match &self.c_fact {
            Factorization::Spatial {
                stages,
                project,
                pooled_nodes,
            } => {
                // Slice by destination: nodes = origins.
                let xt = tape.permute(x, &[0, 2, 1, 3]); // [B, N', N, K]
                let slices = tape.reshape(xt, &[b * nd, n, k]);
                let f = Self::run_spatial(
                    tape,
                    &self.store,
                    stages,
                    project,
                    *pooled_nodes,
                    rank,
                    slices,
                    mode,
                    rng,
                );
                let f = tape.reshape(f, &[b, nd, rank, k]);
                tape.permute(f, &[0, 2, 1, 3]) // [B, β, N', K]
            }
            Factorization::Fc { enc, dec } => {
                let flat = tape.reshape(x, &[b, n * nd * k]);
                let h = enc.apply(tape, &self.store, flat);
                let h = tape.tanh(h);
                let h = tape.dropout(h, mode.dropout(), mode.is_train(), rng);
                let out = dec.apply(tape, &self.store, h);
                tape.reshape(out, &[b, rank, nd, k])
            }
        };
        (r, c)
    }

    /// Forecasts a factor sequence with the configured forecaster.
    ///
    /// `node_major` inputs are `[B, nodes, β·K]`.
    fn forecast(
        &self,
        tape: &mut Tape,
        which: &Forecaster,
        seq: &[Var],
        horizon: usize,
    ) -> Vec<Var> {
        match which {
            Forecaster::Graph(rnn) => rnn.forward(tape, &self.store, seq, horizon),
            Forecaster::Plain(rnn) => {
                let dims = tape.value(seq[0]).dims().to_vec();
                let (b, nodes, f) = (dims[0], dims[1], dims[2]);
                let flat: Vec<Var> = seq
                    .iter()
                    .map(|&v| tape.reshape(v, &[b, nodes * f]))
                    .collect();
                rnn.forward(tape, &self.store, &flat, horizon)
                    .into_iter()
                    .map(|v| tape.reshape(v, &[b, nodes, f]))
                    .collect()
            }
        }
    }

    /// Factor regularizer: Dirichlet energy on the factor's graph (Eq. 11)
    /// or plain Frobenius when ablated. `x` is `[B, nodes, F]`.
    fn factor_reg(&self, tape: &mut Tape, x: Var, laplacian: &Laplacian, lambda: f32) -> Var {
        let b = tape.value(x).dim(0) as f32;
        if self.cfg.frobenius_reg {
            let f = tape.frob_sq(x);
            return tape.scale(f, lambda / b);
        }
        // L is symmetric in both representations, so the CSR propagation
        // (whose backward multiplies by the same matrix, not its
        // transpose) computes the same gradient as the dense matmul.
        let lx = match laplacian {
            Laplacian::Dense(l) => {
                let lc = tape.constant(l.clone());
                tape.batched_matmul(lc, x)
            }
            Laplacian::Csr(m) => csr_propagate(tape, Arc::clone(m), x),
        };
        let xlx = tape.mul(x, lx);
        let e = tape.sum_all(xlx);
        // The Dirichlet energy of a PSD Laplacian is non-negative; numerical
        // noise can dip below zero, which relu clips before scaling.
        let e = tape.relu(e);
        tape.scale(e, lambda / b)
    }

    /// Configured rank β.
    pub fn rank(&self) -> usize {
        self.cfg.rank
    }

    /// The model's configuration.
    pub fn config(&self) -> &AfConfig {
        &self.cfg
    }
}

impl OdForecaster for AfModel {
    fn name(&self) -> &str {
        "AF"
    }

    fn params(&self) -> &ParamStore {
        &self.store
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn forward(
        &self,
        tape: &mut Tape,
        inputs: &[Tensor],
        horizon: usize,
        mode: Mode,
        rng: &mut Rng64,
    ) -> ModelOutput {
        self.forward_impl(tape, inputs, horizon, mode, rng, None)
    }

    fn forward_masked(
        &self,
        tape: &mut Tape,
        inputs: &[Tensor],
        horizon: usize,
        mode: Mode,
        rng: &mut Rng64,
        masks: &[Tensor],
    ) -> ModelOutput {
        self.forward_impl(tape, inputs, horizon, mode, rng, Some(masks))
    }
}

impl AfModel {
    fn forward_impl(
        &self,
        tape: &mut Tape,
        inputs: &[Tensor],
        horizon: usize,
        mode: Mode,
        rng: &mut Rng64,
        masks: Option<&[Tensor]>,
    ) -> ModelOutput {
        assert!(!inputs.is_empty(), "AF needs at least one input step");
        let dims = inputs[0].dims().to_vec();
        assert_eq!(dims.len(), 4, "inputs must be [B, N, N', K]");
        let (b, n, nd, k) = (dims[0], dims[1], dims[2], dims[3]);
        assert_eq!(n, self.num_regions, "region count mismatch");
        assert_eq!(k, self.num_buckets, "bucket count mismatch");
        let rank = self.cfg.rank;
        let feat = rank * k;

        // Stage 1: spatial factorization of every historical step, arranged
        // as node-major sequences for the CNRNNs.
        let mut r_seq = Vec::with_capacity(inputs.len());
        let mut c_seq = Vec::with_capacity(inputs.len());
        for t in inputs {
            let x = tape.constant(t.clone());
            let (r, c) = self.factorize(tape, x, mode, rng);
            // R [B, N, β, K] → [B, N, β·K] on the origin graph.
            r_seq.push(tape.reshape(r, &[b, n, feat]));
            // C [B, β, N', K] → [B, N', β·K] on the destination graph.
            let ct = tape.permute(c, &[0, 2, 1, 3]);
            c_seq.push(tape.reshape(ct, &[b, nd, feat]));
        }

        // Stage 2: spatio-temporal forecasting.
        let r_future = self.forecast(tape, &self.r_rnn, &r_seq, horizon);
        let c_future = self.forecast(tape, &self.c_rnn, &c_seq, horizon);

        // Recovery + Eq. 11 regularizers.
        let bias = self.recovery_bias(tape);
        let mut predictions = Vec::with_capacity(horizon);
        let mut reg: Option<Var> = None;
        for (j, (rv, cv)) in r_future.into_iter().zip(c_future).enumerate() {
            let r_reg = self.factor_reg(tape, rv, &self.origin_l, self.cfg.lambda_r);
            let c_reg = self.factor_reg(tape, cv, &self.dest_l, self.cfg.lambda_c);
            let step_reg = tape.add(r_reg, c_reg);
            reg = Some(match reg {
                Some(acc) => tape.add(acc, step_reg),
                None => step_reg,
            });
            let r4 = tape.reshape(rv, &[b, n, rank, k]);
            let c4 = {
                let c3 = tape.reshape(cv, &[b, nd, rank, k]);
                tape.permute(c3, &[0, 2, 1, 3])
            };
            // Recovery skips empty OD cells when the step's loss mask is
            // available (bitwise-identical loss and gradients).
            predictions.push(match masks.and_then(|m| m.get(j)) {
                Some(mask) => recover_masked(tape, r4, c4, Some(bias), mask),
                None => recover(tape, r4, c4, Some(bias)),
            });
        }
        ModelOutput {
            predictions,
            regularizer: reg,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn centroids(n: usize) -> Vec<(f64, f64)> {
        // Compact jittered grid, ~0.7 km spacing.
        let cols = (n as f64).sqrt().ceil() as usize;
        (0..n)
            .map(|i| ((i % cols) as f64 * 0.7, (i / cols) as f64 * 0.7))
            .collect()
    }

    fn toy_inputs(b: usize, n: usize, k: usize, steps: usize, seed: u64) -> Vec<Tensor> {
        let mut rng = Rng64::new(seed);
        (0..steps)
            .map(|_| {
                let mut t = Tensor::zeros(&[b, n, n, k]);
                for bi in 0..b {
                    for o in 0..n {
                        for d in 0..n {
                            if rng.next_f64() < 0.5 {
                                let bucket = rng.next_below(k);
                                t.set(&[bi, o, d, bucket], 1.0);
                            }
                        }
                    }
                }
                t
            })
            .collect()
    }

    #[test]
    fn forward_shapes_and_distributions() {
        let model = AfModel::new(&centroids(6), 7, AfConfig::default(), 1);
        let mut tape = Tape::new();
        let mut rng = Rng64::new(2);
        let inputs = toy_inputs(2, 6, 7, 3, 11);
        let out = model.forward(&mut tape, &inputs, 2, Mode::Eval, &mut rng);
        assert_eq!(out.predictions.len(), 2);
        for p in &out.predictions {
            let v = tape.value(*p);
            assert_eq!(v.dims(), &[2, 6, 6, 7]);
            let sums = stod_tensor::sum_axis(v, 3, false);
            for &s in sums.data() {
                assert!((s - 1.0).abs() < 1e-4, "cell sums to {s}");
            }
        }
        let reg = tape.value(out.regularizer.unwrap()).item();
        assert!(reg >= 0.0 && reg.is_finite(), "Dirichlet reg = {reg}");
    }

    #[test]
    fn ablations_construct_and_run() {
        for (fc, plain, frob) in [
            (true, false, false),
            (false, true, false),
            (false, false, true),
        ] {
            let cfg = AfConfig {
                fc_factorization: fc,
                plain_rnn: plain,
                frobenius_reg: frob,
                ..AfConfig::default()
            };
            let model = AfModel::new(&centroids(5), 7, cfg, 3);
            let mut tape = Tape::new();
            let mut rng = Rng64::new(4);
            let inputs = toy_inputs(2, 5, 7, 3, 13);
            let out = model.forward(&mut tape, &inputs, 1, Mode::Eval, &mut rng);
            assert_eq!(tape.value(out.predictions[0]).dims(), &[2, 5, 5, 7]);
            assert!(tape.value(out.predictions[0]).all_finite());
        }
    }

    #[test]
    fn gradients_reach_every_parameter() {
        let model = AfModel::new(&centroids(5), 7, AfConfig::default(), 5);
        let inputs = toy_inputs(2, 5, 7, 3, 17);
        let mut tape = Tape::new();
        let mut rng = Rng64::new(0);
        let out = model.forward(
            &mut tape,
            &inputs,
            2,
            Mode::Train { dropout: 0.0 },
            &mut rng,
        );
        let target = Tensor::zeros(&[2, 5, 5, 7]);
        let mask = Tensor::ones(&[2, 5, 5, 7]);
        let mut loss = tape.masked_sq_err(out.predictions[0], &target, &mask);
        let l1 = tape.masked_sq_err(out.predictions[1], &target, &mask);
        loss = tape.add(loss, l1);
        if let Some(reg) = out.regularizer {
            loss = tape.add(loss, reg);
        }
        let grads = tape.backward(loss);
        let mut missing = Vec::new();
        for (id, name, _) in model.params().iter() {
            if grads.get(id).is_none() {
                missing.push(name.to_string());
            }
        }
        assert!(
            missing.is_empty(),
            "no gradient for parameters: {missing:?}"
        );
    }

    /// Forcing the CSR representation at a small N must reproduce the
    /// dense model: same parameter layout, same Eval forward (up to
    /// accumulation-order noise between blocked GEMM and CSR spmm), and
    /// gradients reaching every parameter.
    #[test]
    fn sparse_mode_matches_dense_model() {
        use crate::config::GraphMode;
        let mk = |graph| {
            AfModel::new(
                &centroids(6),
                7,
                AfConfig {
                    graph,
                    ..AfConfig::default()
                },
                9,
            )
        };
        let dense = mk(GraphMode::Dense);
        let sparse = mk(GraphMode::Sparse);

        // Identical layout and identical initial weights (the RNG draws
        // don't depend on the filter representation).
        let d: Vec<_> = dense.params().iter().collect();
        let s: Vec<_> = sparse.params().iter().collect();
        assert_eq!(d.len(), s.len());
        for ((_, dn, dv), (_, sn, sv)) in d.iter().zip(&s) {
            assert_eq!(dn, sn);
            assert_eq!(dv.data(), sv.data(), "weights differ at {dn}");
        }

        let inputs = toy_inputs(2, 6, 7, 3, 23);
        let run = |model: &AfModel| {
            let mut tape = Tape::new();
            let mut rng = Rng64::new(0);
            let out = model.forward(&mut tape, &inputs, 2, Mode::Eval, &mut rng);
            let preds: Vec<Tensor> = out
                .predictions
                .iter()
                .map(|&p| tape.value(p).clone())
                .collect();
            let reg = tape.value(out.regularizer.unwrap()).item();
            (preds, reg)
        };
        let (dp, dr) = run(&dense);
        let (sp, sr) = run(&sparse);
        assert!((dr - sr).abs() <= 1e-5 * dr.abs().max(1.0), "{dr} vs {sr}");
        for (a, b) in dp.iter().zip(&sp) {
            let worst = a
                .data()
                .iter()
                .zip(b.data())
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f32, f32::max);
            assert!(worst <= 1e-4, "sparse forward drifted {worst} from dense");
        }
    }

    #[test]
    fn sparse_mode_gradients_reach_every_parameter() {
        use crate::config::GraphMode;
        let model = AfModel::new(
            &centroids(6),
            7,
            AfConfig {
                graph: GraphMode::Sparse,
                ..AfConfig::default()
            },
            5,
        );
        let inputs = toy_inputs(2, 6, 7, 3, 17);
        let mut tape = Tape::new();
        let mut rng = Rng64::new(0);
        let out = model.forward(
            &mut tape,
            &inputs,
            1,
            Mode::Train { dropout: 0.0 },
            &mut rng,
        );
        let target = Tensor::zeros(&[2, 6, 6, 7]);
        let mask = Tensor::ones(&[2, 6, 6, 7]);
        let mut loss = tape.masked_sq_err(out.predictions[0], &target, &mask);
        if let Some(reg) = out.regularizer {
            loss = tape.add(loss, reg);
        }
        let grads = tape.backward(loss);
        for (id, name, _) in model.params().iter() {
            assert!(grads.get(id).is_some(), "no gradient for {name}");
        }
    }

    #[test]
    fn fewer_weights_than_bf_at_paper_shape() {
        // Table I's observation: AF uses the fewest weights of the deep
        // models despite being the most complex architecture.
        let n = 20;
        let af = AfModel::new(&centroids(n), 7, AfConfig::default(), 1);
        let bf = crate::bf::BfModel::new(n, 7, crate::config::BfConfig::default(), 1);
        assert!(
            af.num_weights() < bf.num_weights(),
            "AF {} vs BF {}",
            af.num_weights(),
            bf.num_weights()
        );
    }

    #[test]
    fn eval_deterministic() {
        let model = AfModel::new(&centroids(5), 7, AfConfig::default(), 6);
        let inputs = toy_inputs(1, 5, 7, 3, 19);
        let run = |seed: u64| {
            let mut tape = Tape::new();
            let mut rng = Rng64::new(seed);
            let out = model.forward(&mut tape, &inputs, 1, Mode::Eval, &mut rng);
            tape.value(out.predictions[0]).clone()
        };
        assert_eq!(run(1), run(2));
    }
}
