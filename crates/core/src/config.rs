//! Hyper-parameter configurations, including presets mirroring the paper's
//! Table I.

use stod_graph::ProximityParams;
use stod_nn::optim::StepDecay;

/// Configuration of the Basic Framework (§IV).
#[derive(Debug, Clone, Copy)]
pub struct BfConfig {
    /// Factorization rank β (Table I: r = 5).
    pub rank: usize,
    /// Bottleneck width of the factorization encoder. The paper's Table I
    /// encodes the flattened tensor through a very small FC before the
    /// GRU; a direct `l → N·β·K` map would need tens of millions of
    /// weights at N = 67.
    pub encode_dim: usize,
    /// GRU hidden size of the two factor forecasters.
    pub gru_hidden: usize,
    /// Factor-regularization weights λ_R and λ_C of Eq. 4.
    pub lambda_r: f32,
    /// See `lambda_r`.
    pub lambda_c: f32,
    /// Use an attention-based decoder (the paper's §VII outlook) instead
    /// of the plain seq2seq GRU.
    pub attention: bool,
}

impl Default for BfConfig {
    fn default() -> Self {
        // λ selected on the validation set (§VI-A.5); larger values
        // over-smooth the recovered factors and cost accuracy.
        BfConfig {
            rank: 5,
            encode_dim: 64,
            gru_hidden: 64,
            lambda_r: 1e-6,
            lambda_c: 1e-6,
            attention: false,
        }
    }
}

/// How the AF represents its proximity graphs and Chebyshev filters.
///
/// City-scale graphs (σ-thresholded Gaussian proximity) are sparse:
/// at N = 1000 with the default (σ, α) only ~1% of entries survive the
/// threshold, so CSR propagation beats dense matmul by the fill factor.
/// Dense stays the default for the paper's N ≤ 67 datasets where the
/// [N, N] tensors are trivially small.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphMode {
    /// Pick per city size: CSR once `n >= GraphMode::AUTO_SPARSE_AT`.
    Auto,
    /// Dense `[N, N]` tensors everywhere (the original code path).
    Dense,
    /// CSR sparse matrices for proximity, Laplacians, coarsening and
    /// Cheby filters.
    Sparse,
}

impl GraphMode {
    /// Region count at which [`GraphMode::Auto`] switches to CSR.
    pub const AUTO_SPARSE_AT: usize = 256;

    /// Whether a city with `n` regions uses the sparse representation.
    pub fn is_sparse(self, n: usize) -> bool {
        match self {
            GraphMode::Auto => n >= GraphMode::AUTO_SPARSE_AT,
            GraphMode::Dense => false,
            GraphMode::Sparse => true,
        }
    }
}

/// One graph-convolution + pooling stage of the AF factorization
/// (the paper's `GC^{Q×S}` – `P_p` notation).
#[derive(Debug, Clone, Copy)]
pub struct GcStage {
    /// Number of filters Q.
    pub filters: usize,
    /// Chebyshev order S (filter size).
    pub order: usize,
    /// Pooling levels after the convolution (pool size = 2^levels).
    pub pool_levels: usize,
}

/// Configuration of the Advanced Framework (§V) with ablation switches.
#[derive(Debug, Clone)]
pub struct AfConfig {
    /// Factorization rank β after the projection that follows the last
    /// pooling stage (Table I: r = 5).
    pub rank: usize,
    /// Graph convolution stages of the spatial factorization. The last
    /// stage's filter count is forced to K at construction (the paper sets
    /// `Q = K` at the end so factors keep one slice per bucket).
    pub stages: Vec<GcStage>,
    /// Chebyshev order of the CNRNN gates.
    pub rnn_order: usize,
    /// Hidden features per node of the CNRNN.
    pub rnn_hidden: usize,
    /// Proximity-matrix parameters (σ, α) for both graphs.
    pub proximity: ProximityParams,
    /// Factor-regularization weights λ_R and λ_C of Eq. 11.
    pub lambda_r: f32,
    /// See `lambda_r`.
    pub lambda_c: f32,
    /// Ablation D2: use a plain FC factorization instead of GCNN+pooling.
    pub fc_factorization: bool,
    /// Ablation D3: use a plain GRU instead of the CNRNN forecaster.
    pub plain_rnn: bool,
    /// Ablation D4: use Frobenius instead of Dirichlet regularization.
    pub frobenius_reg: bool,
    /// Dense vs CSR graph representation (default: by city size).
    pub graph: GraphMode,
}

impl Default for AfConfig {
    fn default() -> Self {
        AfConfig {
            rank: 5,
            stages: vec![
                GcStage {
                    filters: 16,
                    order: 3,
                    pool_levels: 1,
                },
                GcStage {
                    filters: 7,
                    order: 3,
                    pool_levels: 1,
                },
            ],
            rnn_order: 2,
            rnn_hidden: 16,
            proximity: ProximityParams::default(),
            // λ selected on the validation set, as in §VI-A.5.
            lambda_r: 1e-6,
            lambda_c: 1e-6,
            fc_factorization: false,
            plain_rnn: false,
            frobenius_reg: false,
            graph: GraphMode::Auto,
        }
    }
}

impl AfConfig {
    /// A configuration shaped like the paper's NYC column of Table I:
    /// `GC^{32×8}_4 – P4 – GC^{32×4}_2` then 2-layer CNRNN with 32 filters
    /// of size 4 (scaled-down filter counts keep CPU training tractable).
    pub fn paper_nyc() -> AfConfig {
        AfConfig {
            stages: vec![
                GcStage {
                    filters: 32,
                    order: 4,
                    pool_levels: 2,
                },
                GcStage {
                    filters: 32,
                    order: 2,
                    pool_levels: 1,
                },
            ],
            rnn_order: 4,
            rnn_hidden: 32,
            ..AfConfig::default()
        }
    }
}

/// Training hyper-parameters (§VI-A.5).
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Minibatch size (windows per step).
    pub batch_size: usize,
    /// Learning-rate schedule; the paper uses 0.001 decayed ×0.8 every 5
    /// epochs.
    pub schedule: StepDecay,
    /// Dropout probability (paper: 0.2).
    pub dropout: f32,
    /// Global-norm gradient clip.
    pub clip_norm: f32,
    /// Random seed for shuffling and dropout.
    pub seed: u64,
    /// Print one progress line per epoch.
    pub verbose: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 12,
            batch_size: 16,
            schedule: StepDecay::paper(),
            dropout: 0.2,
            clip_norm: 5.0,
            seed: 42,
            verbose: false,
        }
    }
}

impl TrainConfig {
    /// A fast configuration for unit tests.
    pub fn fast_test() -> TrainConfig {
        TrainConfig {
            epochs: 3,
            batch_size: 8,
            schedule: StepDecay {
                initial: 5e-3,
                decay: 0.9,
                every: 2,
            },
            dropout: 0.0,
            ..TrainConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let bf = BfConfig::default();
        assert_eq!(bf.rank, 5);
        assert!(bf.encode_dim > 0 && bf.gru_hidden > 0);
        let af = AfConfig::default();
        assert!(!af.stages.is_empty());
        assert!(af.rnn_order >= 1);
        let tc = TrainConfig::default();
        assert!((tc.schedule.initial - 1e-3).abs() < 1e-9);
        assert!((tc.dropout - 0.2).abs() < 1e-9);
    }

    #[test]
    fn graph_mode_auto_switches_at_threshold() {
        assert!(!GraphMode::Auto.is_sparse(GraphMode::AUTO_SPARSE_AT - 1));
        assert!(GraphMode::Auto.is_sparse(GraphMode::AUTO_SPARSE_AT));
        assert!(!GraphMode::Dense.is_sparse(usize::MAX));
        assert!(GraphMode::Sparse.is_sparse(2));
        assert_eq!(AfConfig::default().graph, GraphMode::Auto);
    }

    #[test]
    fn paper_nyc_preset_matches_table1_shape() {
        let af = AfConfig::paper_nyc();
        assert_eq!(af.stages.len(), 2);
        assert_eq!(af.stages[0].order, 4);
        assert_eq!(af.stages[0].pool_levels, 2); // P4
        assert_eq!(af.rnn_hidden, 32);
    }
}
