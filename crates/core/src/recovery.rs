//! Recovery (§IV-D): turning predicted factor tensors back into full OD
//! stochastic speed tensors.
//!
//! Given `R̂ ∈ R^{B×N×β×K}` and `Ĉ ∈ R^{B×β×N'×K}`, each speed bucket `k`
//! is recovered independently as the rank-β product `M̂_k = R̂_k · Ĉ_k`,
//! and a softmax across the bucket dimension turns every `(o, d)` cell
//! into a valid histogram (Eq. 3).

use stod_nn::{Tape, Var};

/// Multiplies factor tensors per bucket and normalizes with a softmax.
///
/// * `r` — `[B, N, β, K]`
/// * `c` — `[B, β, N', K]`
/// * `bias` — optional logit offset, broadcastable to `[B, N, N', K]`
///   (e.g. `[N, N', K]`). Matrix-factorization bias terms are the standard
///   complement to a low-rank product: without them, `softmax(R·C)` starts
///   at the uniform distribution and must spend its rank budget on
///   marginal bucket structure before it can model dynamics.
///
/// Returns `[B, N, N', K]` with `Σ_k out[b,o,d,k] = 1` for every cell.
///
/// # Panics
/// Panics when the shapes are inconsistent.
pub fn recover(tape: &mut Tape, r: Var, c: Var, bias: Option<Var>) -> Var {
    let rd = tape.value(r).dims().to_vec();
    let cd = tape.value(c).dims().to_vec();
    assert_eq!(rd.len(), 4, "R factor must be [B, N, β, K], got {rd:?}");
    assert_eq!(cd.len(), 4, "C factor must be [B, β, N', K], got {cd:?}");
    let (b, n, beta, k) = (rd[0], rd[1], rd[2], rd[3]);
    let (bc, beta_c, n_dest, kc) = (cd[0], cd[1], cd[2], cd[3]);
    assert_eq!(b, bc, "batch mismatch");
    assert_eq!(beta, beta_c, "rank mismatch");
    assert_eq!(k, kc, "bucket mismatch");

    // Rearrange to per-bucket stacks: [B, K, N, β] and [B, K, β, N'].
    // The B·K independent rank-β products below are the hot loop; the
    // batched matmul distributes them over the stod_tensor::par pool
    // (forward and backward), bitwise identically to serial execution.
    let r_perm = tape.permute(r, &[0, 3, 1, 2]);
    let c_perm = tape.permute(c, &[0, 3, 1, 2]);
    let r_flat = tape.reshape(r_perm, &[b * k, n, beta]);
    let c_flat = tape.reshape(c_perm, &[b * k, beta, n_dest]);
    let prod = tape.batched_matmul(r_flat, c_flat); // [B·K, N, N']
    let prod = tape.reshape(prod, &[b, k, n, n_dest]);
    let mut logits = tape.permute(prod, &[0, 2, 3, 1]); // [B, N, N', K]
    if let Some(bias) = bias {
        logits = tape.add(logits, bias);
    }
    tape.softmax(logits, 3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stod_tensor::rng::Rng64;
    use stod_tensor::{sum_axis, Tensor};

    #[test]
    fn output_is_per_cell_distribution() {
        let mut tape = Tape::new();
        let mut rng = Rng64::new(0);
        let r = tape.leaf(Tensor::randn(&[2, 4, 3, 5], 1.0, &mut rng));
        let c = tape.leaf(Tensor::randn(&[2, 3, 6, 5], 1.0, &mut rng));
        let m = recover(&mut tape, r, c, None);
        let v = tape.value(m);
        assert_eq!(v.dims(), &[2, 4, 6, 5]);
        let sums = sum_axis(v, 3, false);
        for &s in sums.data() {
            assert!((s - 1.0).abs() < 1e-5, "cell histogram sums to {s}");
        }
        assert!(v.data().iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn rank_one_factors_give_expected_argmax() {
        // R puts weight on bucket 0 for origin 0 and bucket 1 for origin 1;
        // with uniform C the recovered histograms should follow.
        let mut tape = Tape::new();
        let mut r = Tensor::zeros(&[1, 2, 1, 2]);
        r.set(&[0, 0, 0, 0], 3.0); // origin 0 → bucket 0 strong
        r.set(&[0, 1, 0, 1], 3.0); // origin 1 → bucket 1 strong
        let c = Tensor::ones(&[1, 1, 2, 2]);
        let rv = tape.leaf(r);
        let cv = tape.leaf(c);
        let m = recover(&mut tape, rv, cv, None);
        let v = tape.value(m);
        assert!(v.at(&[0, 0, 0, 0]) > v.at(&[0, 0, 0, 1]));
        assert!(v.at(&[0, 1, 0, 1]) > v.at(&[0, 1, 0, 0]));
    }

    #[test]
    fn gradients_flow_through_recovery() {
        stod_nn::gradcheck::assert_grad_ok(
            &[
                Tensor::randn(&[1, 2, 2, 3], 0.5, &mut Rng64::new(1)),
                Tensor::randn(&[1, 2, 2, 3], 0.5, &mut Rng64::new(2)),
            ],
            |t, v| {
                let m = recover(t, v[0], v[1], None);
                let target = Tensor::zeros(&[1, 2, 2, 3]);
                let mask = Tensor::ones(&[1, 2, 2, 3]);
                t.masked_sq_err(m, &target, &mask)
            },
        );
    }

    #[test]
    fn bias_shifts_distributions() {
        let mut tape = Tape::new();
        let r = tape.leaf(Tensor::zeros(&[1, 2, 2, 3]));
        let c = tape.leaf(Tensor::zeros(&[1, 2, 2, 3]));
        let mut b = Tensor::zeros(&[2, 2, 3]);
        // Push all cells towards bucket 2.
        for o in 0..2 {
            for d in 0..2 {
                b.set(&[o, d, 2], 3.0);
            }
        }
        let bias = tape.leaf(b);
        let m = recover(&mut tape, r, c, Some(bias));
        let v = tape.value(m);
        for o in 0..2 {
            for d in 0..2 {
                assert!(v.at(&[0, o, d, 2]) > 0.8, "bias must dominate zero factors");
            }
        }
    }

    #[test]
    #[should_panic(expected = "rank mismatch")]
    fn mismatched_rank_panics() {
        let mut tape = Tape::new();
        let r = tape.leaf(Tensor::zeros(&[1, 2, 3, 4]));
        let c = tape.leaf(Tensor::zeros(&[1, 2, 2, 4]));
        recover(&mut tape, r, c, None);
    }
}
