//! Recovery (§IV-D): turning predicted factor tensors back into full OD
//! stochastic speed tensors.
//!
//! Given `R̂ ∈ R^{B×N×β×K}` and `Ĉ ∈ R^{B×β×N'×K}`, each speed bucket `k`
//! is recovered independently as the rank-β product `M̂_k = R̂_k · Ĉ_k`,
//! and a softmax across the bucket dimension turns every `(o, d)` cell
//! into a valid histogram (Eq. 3).

use stod_nn::{Tape, Var};
use stod_tensor::ops::gemm;
use stod_tensor::{par, Tensor};

/// Multiplies factor tensors per bucket and normalizes with a softmax.
///
/// * `r` — `[B, N, β, K]`
/// * `c` — `[B, β, N', K]`
/// * `bias` — optional logit offset, broadcastable to `[B, N, N', K]`
///   (e.g. `[N, N', K]`). Matrix-factorization bias terms are the standard
///   complement to a low-rank product: without them, `softmax(R·C)` starts
///   at the uniform distribution and must spend its rank budget on
///   marginal bucket structure before it can model dynamics.
///
/// Returns `[B, N, N', K]` with `Σ_k out[b,o,d,k] = 1` for every cell.
///
/// # Panics
/// Panics when the shapes are inconsistent.
pub fn recover(tape: &mut Tape, r: Var, c: Var, bias: Option<Var>) -> Var {
    let rd = tape.value(r).dims().to_vec();
    let cd = tape.value(c).dims().to_vec();
    assert_eq!(rd.len(), 4, "R factor must be [B, N, β, K], got {rd:?}");
    assert_eq!(cd.len(), 4, "C factor must be [B, β, N', K], got {cd:?}");
    let (b, n, beta, k) = (rd[0], rd[1], rd[2], rd[3]);
    let (bc, beta_c, n_dest, kc) = (cd[0], cd[1], cd[2], cd[3]);
    assert_eq!(b, bc, "batch mismatch");
    assert_eq!(beta, beta_c, "rank mismatch");
    assert_eq!(k, kc, "bucket mismatch");

    // Rearrange to per-bucket stacks: [B, K, N, β] and [B, K, β, N'].
    // The B·K independent rank-β products below are the hot loop; the
    // batched matmul distributes them over the stod_tensor::par pool
    // (forward and backward), bitwise identically to serial execution.
    let r_perm = tape.permute(r, &[0, 3, 1, 2]);
    let c_perm = tape.permute(c, &[0, 3, 1, 2]);
    let r_flat = tape.reshape(r_perm, &[b * k, n, beta]);
    let c_flat = tape.reshape(c_perm, &[b * k, beta, n_dest]);
    let prod = tape.batched_matmul(r_flat, c_flat); // [B·K, N, N']
    let prod = tape.reshape(prod, &[b, k, n, n_dest]);
    let mut logits = tape.permute(prod, &[0, 2, 3, 1]); // [B, N, N', K]
    if let Some(bias) = bias {
        logits = tape.add(logits, bias);
    }
    tape.softmax(logits, 3)
}

/// Observed-cell fraction below which [`recover_masked`] takes the
/// cell-skipping sparse path; denser masks fall back to the blocked dense
/// pipeline, whose batched GEMM amortizes better than per-cell dots.
pub const SPARSE_DENSITY_CUTOFF: f32 = 0.5;

/// Mask-aware recovery: like [`recover`], but skips OD cells that are
/// empty in `mask` (the Eq. 4 loss zeroes them out anyway).
///
/// `mask` is the loss mask, `[B, N, N', K]` or `[B, N, N']`; a cell is
/// *observed* when any of its entries is non-zero. Observed cells are
/// computed bitwise identically to the dense path (see
/// [`recover_sparse`]); empty cells get the uniform histogram `1/K`, and
/// — matching Eq. 4's gradient — contribute exactly nothing to any
/// gradient. Because the dense path's masked-cell contributions are exact
/// `±0.0` terms that cannot flip an accumulator's bits, the *loss and all
/// parameter gradients are bitwise identical* between the two paths, so
/// routing training through this function never changes a trajectory.
///
/// Falls back to [`recover`] when the mask is dense (observed fraction
/// `>= SPARSE_DENSITY_CUTOFF`), where the blocked GEMM wins.
pub fn recover_masked(tape: &mut Tape, r: Var, c: Var, bias: Option<Var>, mask: &Tensor) -> Var {
    let cells = cell_mask(tape, r, mask);
    let observed = cells.iter().filter(|&&m| m).count();
    if (observed as f32) >= SPARSE_DENSITY_CUTOFF * cells.len() as f32 {
        return recover(tape, r, c, bias);
    }
    recover_sparse(tape, r, c, bias, &cells)
}

/// Collapses the loss mask to one boolean per `(b, o, d)` cell.
fn cell_mask(tape: &Tape, r: Var, mask: &Tensor) -> Vec<bool> {
    let rd = tape.value(r).dims();
    assert_eq!(rd.len(), 4, "R factor must be [B, N, β, K]");
    let (b, n, k) = (rd[0], rd[1], rd[3]);
    let md = mask.dims();
    match md.len() {
        3 => {
            assert_eq!(md, &[b, n, md[2]], "cell mask must be [B, N, N']");
            mask.data().iter().map(|&x| x != 0.0).collect()
        }
        4 => {
            assert_eq!(md[0], b, "mask batch");
            assert_eq!(md[1], n, "mask origins");
            assert_eq!(md[3], k, "mask buckets");
            mask.data()
                .chunks_exact(k)
                .map(|lane| lane.iter().any(|&x| x != 0.0))
                .collect()
        }
        _ => panic!("mask must be [B, N, N'] or [B, N, N', K], got {md:?}"),
    }
}

/// The sparse-skip recovery kernel: always takes the per-cell path.
///
/// `cells` holds one flag per `(b, o, d)` in row-major order. Exposed
/// (rather than private to [`recover_masked`]) so the equivalence property
/// tests can force the sparse path regardless of density.
///
/// # Bitwise equivalence to the dense path
///
/// Per observed cell, forward logits are single dot products over β; the
/// dense pipeline computes them inside `batched_matmul`, whose per-element
/// accumulation is either one FMA chain (blocked) or a zero-skipping
/// multiply-add loop (naive), selected by shape via
/// [`gemm::uses_blocked`]. This kernel mirrors that decision per product
/// shape and reproduces the exact chain with strided dots, then replicates
/// the softmax lane algorithm, so observed outputs match bit for bit. The
/// backward pass mirrors the dense backward chain the same way (softmax
/// backward, then the two transposed products), accumulating only observed
/// terms: the skipped terms are `±0.0` in the dense chain, and IEEE-754
/// addition of `±0.0` to a running sum that starts at `+0.0` can never
/// change its bits, so gradients also match bit for bit.
pub fn recover_sparse(tape: &mut Tape, r: Var, c: Var, bias: Option<Var>, cells: &[bool]) -> Var {
    let rd = tape.value(r).dims().to_vec();
    let cd = tape.value(c).dims().to_vec();
    assert_eq!(rd.len(), 4, "R factor must be [B, N, β, K], got {rd:?}");
    assert_eq!(cd.len(), 4, "C factor must be [B, β, N', K], got {cd:?}");
    let (b, n, beta, k) = (rd[0], rd[1], rd[2], rd[3]);
    let (bc, beta_c, nd, kc) = (cd[0], cd[1], cd[2], cd[3]);
    assert_eq!(b, bc, "batch mismatch");
    assert_eq!(beta, beta_c, "rank mismatch");
    assert_eq!(k, kc, "bucket mismatch");
    assert_eq!(cells.len(), b * n * nd, "cell mask length");
    if let Some(bias) = bias {
        assert_eq!(
            tape.value(bias).dims(),
            &[n, nd, k],
            "sparse recovery bias must be [N, N', K]"
        );
    }

    let value = {
        let rv = tape.value(r).data();
        let cv = tape.value(c).data();
        let bv = bias.map(|bv| tape.value(bv).data().to_vec());
        sparse_forward(rv, cv, bv.as_deref(), cells, b, n, beta, nd, k)
    };

    let cells_owned: Vec<bool> = cells.to_vec();
    let parents: Vec<Var> = match bias {
        Some(bv) => vec![r, c, bv],
        None => vec![r, c],
    };
    tape.custom_op(
        value,
        &parents,
        Box::new(move |g, ps, y, needs| {
            sparse_backward(g, ps, y, needs, &cells_owned, b, n, beta, nd, k)
        }),
    )
}

/// Forward kernel: per observed cell, the rank-β logit dot, bias add and
/// softmax lane; empty cells get the uniform `1/K` histogram. Cells are
/// independent, so fanning `(b, o)` rows across the pool is bitwise-safe.
#[allow(clippy::too_many_arguments)]
fn sparse_forward(
    rv: &[f32],
    cv: &[f32],
    bv: Option<&[f32]>,
    cells: &[bool],
    b: usize,
    n: usize,
    beta: usize,
    nd: usize,
    k: usize,
) -> Tensor {
    // Flavor of the dense per-bucket product R̂_k · Ĉ_k (items are N×β
    // times β×N').
    let fwd_fma = gemm::uses_blocked(n, beta, nd);
    let observed = cells.iter().filter(|&&m| m).count();
    let mut out = stod_tensor::arena::alloc_raw(b * n * nd * k);
    let uniform = 1.0 / k as f32;
    let row_work = 2 * observed.div_ceil(b * n) * beta * k + 5 * k;
    let run_row = |row: usize, lane_out: &mut [f32]| {
        let (bi, o) = (row / n, row % n);
        for d in 0..nd {
            let lanes = &mut lane_out[d * k..(d + 1) * k];
            if !cells[(bi * n + o) * nd + d] {
                lanes.fill(uniform);
                continue;
            }
            // logit[k] = Σ_β r[b,o,β,k] · c[b,β,d,k]
            let r_base = (bi * n + o) * beta * k;
            let c_base = (bi * beta * nd + d) * k;
            for ki in 0..k {
                let a = &rv[r_base + ki..];
                let bb = &cv[c_base + ki..];
                let mut logit = if fwd_fma {
                    gemm::dot_fma_strided(a, k, bb, nd * k, beta)
                } else {
                    gemm::dot_naive_strided(a, k, bb, nd * k, beta)
                };
                if let Some(bv) = bv {
                    logit += bv[(o * nd + d) * k + ki];
                }
                lanes[ki] = logit;
            }
            softmax_lane(lanes);
        }
    };
    if b * n > 1 && par::should_parallelize(b * n * row_work) {
        par::for_each_row_chunk(&mut out, b * n, nd * k, |rows, chunk| {
            for (i, row) in rows.clone().enumerate() {
                run_row(row, &mut chunk[i * nd * k..(i + 1) * nd * k]);
            }
        });
    } else {
        for row in 0..b * n {
            run_row(row, &mut out[row * nd * k..(row + 1) * nd * k]);
        }
    }
    Tensor::from_vec(&[b, n, nd, k], out)
}

/// Replicates one lane of `stod_tensor::ops::softmax::softmax` bitwise:
/// max-subtract, f32 `exp`, f64 partition sum, multiply by `1/(z as f32)`.
fn softmax_lane(lane: &mut [f32]) {
    let mut mx = f32::NEG_INFINITY;
    for &x in lane.iter() {
        mx = mx.max(x);
    }
    let mut z = 0.0f64;
    for x in lane.iter_mut() {
        let e = (*x - mx).exp();
        *x = e;
        z += e as f64;
    }
    let inv = 1.0 / z as f32;
    for x in lane.iter_mut() {
        *x *= inv;
    }
}

/// Backward kernel mirroring the dense chain over observed cells only.
#[allow(clippy::too_many_arguments)]
fn sparse_backward(
    g: &Tensor,
    ps: &[&Tensor],
    y: &Tensor,
    needs: &[bool],
    cells: &[bool],
    b: usize,
    n: usize,
    beta: usize,
    nd: usize,
    k: usize,
) -> Vec<Option<Tensor>> {
    let rv = ps[0].data();
    let cv = ps[1].data();
    let gv = g.data();
    let yv = y.data();

    // dl = softmax backward per observed lane: y ⊙ (g − Σ_k g⊙y), exactly
    // as the dense softmax node computes it (f32 sum over k ascending).
    let mut dl = stod_tensor::arena::alloc_filled(b * n * nd * k, 0.0);
    for (cell, &obs) in cells.iter().enumerate() {
        if !obs {
            continue;
        }
        let base = cell * k;
        let mut s = 0.0f32;
        for ki in 0..k {
            s += gv[base + ki] * yv[base + ki];
        }
        for ki in 0..k {
            dl[base + ki] = yv[base + ki] * (gv[base + ki] - s);
        }
    }

    // Flavors of the two dense backward products (see batched_matmul's
    // backward closure): dR uses g·Cᵀ items of shape N×N'×β, dC uses
    // Rᵀ·g items of shape β×N×N'.
    let dr_fma = gemm::uses_blocked(n, nd, beta);
    let dc_fma = gemm::uses_blocked(beta, n, nd);

    let dr = needs[0].then(|| {
        let mut dr = stod_tensor::arena::alloc_filled(b * n * beta * k, 0.0);
        for bi in 0..b {
            for o in 0..n {
                let row_cells = &cells[(bi * n + o) * nd..(bi * n + o + 1) * nd];
                if row_cells.iter().all(|&m| !m) {
                    continue;
                }
                for bt in 0..beta {
                    for ki in 0..k {
                        // dr[b,o,β,k] = Σ_{d obs} dl[b,o,d,k] · c[b,β,d,k]
                        let dl_base = ((bi * n + o) * nd) * k + ki;
                        let c_base = ((bi * beta + bt) * nd) * k + ki;
                        let mut acc = 0.0f32;
                        for (d, &obs) in row_cells.iter().enumerate() {
                            if !obs {
                                continue;
                            }
                            let a = dl[dl_base + d * k];
                            let bb = cv[c_base + d * k];
                            if dr_fma {
                                acc = a.mul_add(bb, acc);
                            } else if a != 0.0 {
                                acc += a * bb;
                            }
                        }
                        dr[((bi * n + o) * beta + bt) * k + ki] = acc;
                    }
                }
            }
        }
        Tensor::from_vec(&[b, n, beta, k], dr)
    });

    let dc = needs[1].then(|| {
        let mut dc = stod_tensor::arena::alloc_filled(b * beta * nd * k, 0.0);
        for bi in 0..b {
            for d in 0..nd {
                let any = (0..n).any(|o| cells[(bi * n + o) * nd + d]);
                if !any {
                    continue;
                }
                for bt in 0..beta {
                    for ki in 0..k {
                        // dc[b,β,d,k] = Σ_{o obs} r[b,o,β,k] · dl[b,o,d,k]
                        let r_base = (bi * n * beta + bt) * k + ki;
                        let dl_base = (bi * n * nd + d) * k + ki;
                        let mut acc = 0.0f32;
                        for o in 0..n {
                            if !cells[(bi * n + o) * nd + d] {
                                continue;
                            }
                            let a = rv[r_base + o * beta * k];
                            let bb = dl[dl_base + o * nd * k];
                            if dc_fma {
                                acc = a.mul_add(bb, acc);
                            } else if a != 0.0 {
                                acc += a * bb;
                            }
                        }
                        dc[((bi * beta + bt) * nd + d) * k + ki] = acc;
                    }
                }
            }
        }
        Tensor::from_vec(&[b, beta, nd, k], dc)
    });

    let mut grads = vec![dr, dc];
    if needs.len() > 2 {
        let dbias = needs[2].then(|| {
            // dbias[o,d,k] = Σ_b dl[b,o,d,k] (ascending b, f32, exactly
            // like the dense broadcast-add reduction).
            let mut db = stod_tensor::arena::alloc_filled(n * nd * k, 0.0);
            for bi in 0..b {
                for (cell, &obs) in cells[bi * n * nd..(bi + 1) * n * nd].iter().enumerate() {
                    if !obs {
                        continue;
                    }
                    let src = (bi * n * nd + cell) * k;
                    let dst = cell * k;
                    for ki in 0..k {
                        db[dst + ki] += dl[src + ki];
                    }
                }
            }
            Tensor::from_vec(&[n, nd, k], db)
        });
        grads.push(dbias);
    }
    stod_tensor::arena::recycle(dl);
    grads
}

#[cfg(test)]
mod tests {
    use super::*;
    use stod_tensor::rng::Rng64;
    use stod_tensor::{sum_axis, Tensor};

    #[test]
    fn output_is_per_cell_distribution() {
        let mut tape = Tape::new();
        let mut rng = Rng64::new(0);
        let r = tape.leaf(Tensor::randn(&[2, 4, 3, 5], 1.0, &mut rng));
        let c = tape.leaf(Tensor::randn(&[2, 3, 6, 5], 1.0, &mut rng));
        let m = recover(&mut tape, r, c, None);
        let v = tape.value(m);
        assert_eq!(v.dims(), &[2, 4, 6, 5]);
        let sums = sum_axis(v, 3, false);
        for &s in sums.data() {
            assert!((s - 1.0).abs() < 1e-5, "cell histogram sums to {s}");
        }
        assert!(v.data().iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn rank_one_factors_give_expected_argmax() {
        // R puts weight on bucket 0 for origin 0 and bucket 1 for origin 1;
        // with uniform C the recovered histograms should follow.
        let mut tape = Tape::new();
        let mut r = Tensor::zeros(&[1, 2, 1, 2]);
        r.set(&[0, 0, 0, 0], 3.0); // origin 0 → bucket 0 strong
        r.set(&[0, 1, 0, 1], 3.0); // origin 1 → bucket 1 strong
        let c = Tensor::ones(&[1, 1, 2, 2]);
        let rv = tape.leaf(r);
        let cv = tape.leaf(c);
        let m = recover(&mut tape, rv, cv, None);
        let v = tape.value(m);
        assert!(v.at(&[0, 0, 0, 0]) > v.at(&[0, 0, 0, 1]));
        assert!(v.at(&[0, 1, 0, 1]) > v.at(&[0, 1, 0, 0]));
    }

    #[test]
    fn gradients_flow_through_recovery() {
        stod_nn::gradcheck::assert_grad_ok(
            &[
                Tensor::randn(&[1, 2, 2, 3], 0.5, &mut Rng64::new(1)),
                Tensor::randn(&[1, 2, 2, 3], 0.5, &mut Rng64::new(2)),
            ],
            |t, v| {
                let m = recover(t, v[0], v[1], None);
                let target = Tensor::zeros(&[1, 2, 2, 3]);
                let mask = Tensor::ones(&[1, 2, 2, 3]);
                t.masked_sq_err(m, &target, &mask)
            },
        );
    }

    #[test]
    fn bias_shifts_distributions() {
        let mut tape = Tape::new();
        let r = tape.leaf(Tensor::zeros(&[1, 2, 2, 3]));
        let c = tape.leaf(Tensor::zeros(&[1, 2, 2, 3]));
        let mut b = Tensor::zeros(&[2, 2, 3]);
        // Push all cells towards bucket 2.
        for o in 0..2 {
            for d in 0..2 {
                b.set(&[o, d, 2], 3.0);
            }
        }
        let bias = tape.leaf(b);
        let m = recover(&mut tape, r, c, Some(bias));
        let v = tape.value(m);
        for o in 0..2 {
            for d in 0..2 {
                assert!(v.at(&[0, o, d, 2]) > 0.8, "bias must dominate zero factors");
            }
        }
    }

    #[test]
    #[should_panic(expected = "rank mismatch")]
    fn mismatched_rank_panics() {
        let mut tape = Tape::new();
        let r = tape.leaf(Tensor::zeros(&[1, 2, 3, 4]));
        let c = tape.leaf(Tensor::zeros(&[1, 2, 2, 4]));
        recover(&mut tape, r, c, None);
    }
}
