//! Batching: turning dataset windows into the stacked tensors the models
//! consume.

use stod_tensor::{stack, Tensor};
use stod_traffic::{OdDataset, Window};

/// A batch of forecasting samples.
///
/// * `inputs[i]` — the `i`-th historical step, shape `[B, N, N', K]`.
/// * `targets[j]` / `masks[j]` — the `j`-th future step's ground truth
///   (`[B, N, N', K]`) and bucket-broadcast observation mask Ω.
pub struct Batch {
    /// Historical input steps, oldest first (length `s`).
    pub inputs: Vec<Tensor>,
    /// Future target steps (length `h`).
    pub targets: Vec<Tensor>,
    /// Observation masks Ω per target step (length `h`).
    pub masks: Vec<Tensor>,
    /// The windows that produced this batch, in row order.
    pub windows: Vec<Window>,
}

impl Batch {
    /// Batch size `B`.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// True when the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Total number of observed target cells (for loss normalization).
    pub fn observed_cells(&self) -> f32 {
        self.masks.iter().map(|m| m.sum()).sum::<f32>().max(1.0)
    }
}

/// Builds a batch from a set of windows (all sharing the same `(s, h)`).
///
/// # Panics
/// Panics on an empty window list or mixed `(s, h)` settings.
pub fn make_batch(ds: &OdDataset, windows: &[Window]) -> Batch {
    assert!(!windows.is_empty(), "empty batch");
    let (s, h) = (windows[0].s, windows[0].h);
    assert!(
        windows.iter().all(|w| w.s == s && w.h == h),
        "all windows in a batch must share (s, h)"
    );
    let mut inputs = Vec::with_capacity(s);
    for step in 0..s {
        let slices: Vec<&Tensor> = windows
            .iter()
            .map(|w| &ds.tensors[w.input_indices()[step]].data)
            .collect();
        inputs.push(stack(&slices, 0));
    }
    let mut targets = Vec::with_capacity(h);
    let mut masks = Vec::with_capacity(h);
    let mask_cache: Vec<Tensor> = windows
        .iter()
        .flat_map(|w| w.target_indices())
        .map(|t| ds.tensors[t].mask_over_buckets())
        .collect();
    for step in 0..h {
        let tgt: Vec<&Tensor> = windows
            .iter()
            .map(|w| &ds.tensors[w.target_indices()[step]].data)
            .collect();
        targets.push(stack(&tgt, 0));
        let msk: Vec<&Tensor> = (0..windows.len())
            .map(|b| &mask_cache[b * h + step])
            .collect();
        masks.push(stack(&msk, 0));
    }
    Batch {
        inputs,
        targets,
        masks,
        windows: windows.to_vec(),
    }
}

/// Splits windows into shuffled minibatches of at most `batch_size`.
pub fn minibatches(
    windows: &[Window],
    batch_size: usize,
    rng: &mut stod_tensor::rng::Rng64,
) -> Vec<Vec<Window>> {
    assert!(batch_size >= 1, "batch size must be ≥ 1");
    let mut shuffled = windows.to_vec();
    rng.shuffle(&mut shuffled);
    shuffled
        .chunks(batch_size)
        .map(<[Window]>::to_vec)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stod_tensor::rng::Rng64;
    use stod_traffic::{CityModel, SimConfig};

    fn ds() -> OdDataset {
        let cfg = SimConfig {
            num_days: 1,
            intervals_per_day: 16,
            trips_per_interval: 80.0,
            ..SimConfig::small(2)
        };
        OdDataset::generate(CityModel::small(5), &cfg)
    }

    #[test]
    fn batch_shapes() {
        let d = ds();
        let ws = d.windows(3, 2);
        let b = make_batch(&d, &ws[..4]);
        assert_eq!(b.len(), 4);
        assert_eq!(b.inputs.len(), 3);
        assert_eq!(b.targets.len(), 2);
        assert_eq!(b.inputs[0].dims(), &[4, 5, 5, 7]);
        assert_eq!(b.masks[1].dims(), &[4, 5, 5, 7]);
    }

    #[test]
    fn batch_rows_match_source_tensors() {
        let d = ds();
        let ws = d.windows(2, 1);
        let b = make_batch(&d, &ws[..3]);
        for (row, w) in b.windows.iter().enumerate() {
            let src = &d.tensors[w.input_indices()[1]].data;
            for o in 0..5 {
                for dd in 0..5 {
                    for k in 0..7 {
                        assert_eq!(
                            b.inputs[1].at(&[row, o, dd, k]),
                            src.at(&[o, dd, k]),
                            "row {row} mismatch"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn observed_cells_counts_mask() {
        let d = ds();
        let ws = d.windows(2, 1);
        let b = make_batch(&d, &ws[..2]);
        let expect: f32 = b
            .windows
            .iter()
            .map(|w| d.tensors[w.target_indices()[0]].num_observed() as f32 * 7.0)
            .sum();
        assert_eq!(b.observed_cells(), expect.max(1.0));
    }

    #[test]
    fn minibatches_partition_windows() {
        let d = ds();
        let ws = d.windows(3, 1);
        let mut rng = Rng64::new(0);
        let mbs = minibatches(&ws, 4, &mut rng);
        let total: usize = mbs.iter().map(Vec::len).sum();
        assert_eq!(total, ws.len());
        assert!(mbs.iter().all(|m| m.len() <= 4));
        // Every window appears exactly once.
        let mut seen: Vec<usize> = mbs.iter().flatten().map(|w| w.t_end).collect();
        seen.sort_unstable();
        let mut expect: Vec<usize> = ws.iter().map(|w| w.t_end).collect();
        expect.sort_unstable();
        assert_eq!(seen, expect);
    }

    #[test]
    #[should_panic(expected = "share (s, h)")]
    fn mixed_settings_panic() {
        let d = ds();
        let a = d.windows(2, 1)[0];
        let b = d.windows(3, 1)[0];
        make_batch(&d, &[a, b]);
    }
}
