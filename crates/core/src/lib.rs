//! # stod-core
//!
//! The paper's contribution: the **Basic Framework (BF)** and the
//! **Advanced Framework (AF)** for stochastic origin–destination matrix
//! forecasting.
//!
//! Both frameworks follow the Factorization → Forecasting → Recovery
//! pipeline of Figure 3:
//!
//! * [`bf::BfModel`] (§IV) factorizes each sparse tensor with
//!   fully-connected layers into an origin factor `R ∈ R^{N×β×K}` and a
//!   destination factor `C ∈ R^{β×N'×K}`, forecasts both factor sequences
//!   with sequence-to-sequence GRUs, and recovers full tensors by
//!   per-bucket factor multiplication followed by a softmax.
//! * [`af::AfModel`] (§V) upgrades both stages with spatial structure: the
//!   factorization uses Cheby-Net graph convolutions + geometric pooling
//!   over the *proximity graphs* of origin and destination regions, and
//!   the forecaster replaces the GRUs with CNRNNs (graph-convolutional
//!   GRUs). Its loss regularizes the predicted factors with the Dirichlet
//!   norm (Eq. 11). The AF struct exposes ablation switches
//!   (FC-factorization, plain GRU, Frobenius regularizer) used by the
//!   `ablations` bench.
//!
//! Supporting modules: [`batch`] (window → tensor batching), [`recovery`]
//! (the shared R·C + softmax recovery), [`model`] (the `OdForecaster`
//! trait), [`train`] (Adam + step-decay trainer), [`evaluate`]
//! (DisSim-based evaluation incl. the per-figure groupings) and
//! [`config`] (hyper-parameters incl. the Table I presets).

pub mod af;
pub mod batch;
pub mod bf;
pub mod checkpoint;
pub mod config;
pub mod evaluate;
pub mod model;
pub mod recovery;
pub mod train;

pub use af::AfModel;
pub use bf::BfModel;
pub use checkpoint::{CkptError, TrainCheckpoint};
pub use config::{AfConfig, BfConfig, GraphMode, TrainConfig};
pub use evaluate::{evaluate, EvalReport};
pub use model::{Mode, ModelOutput, OdForecaster};
pub use train::{
    fine_tune, fine_tune_resume, train, train_resume, train_robust, FaultPolicy, RobustConfig,
    TrainError, TrainReport,
};
