//! Crash-consistent training checkpoints.
//!
//! A [`TrainCheckpoint`] is a *complete* capture of the training loop —
//! model parameters, Adam moments and step count, the training RNG
//! (including its pending Box–Muller spare), the in-progress epoch's
//! shuffled window order and minibatch cursor, the partial-epoch loss
//! accumulator, the per-epoch report so far, and the fault counters.
//! Restoring it and continuing therefore reproduces the uninterrupted
//! run **bitwise**: same loss trajectory, same final weights, at any
//! `STOD_THREADS` (the trainer's shard reduction is already
//! schedule-independent).
//!
//! # On-disk format
//!
//! Version 1: magic `STCK`, version `u32`, the fields in declaration
//! order (little-endian; vectors as `u64` length + elements), then a
//! CRC-32 (IEEE) footer over everything before it. Files are written via
//! [`stod_faultline::io::atomic_write`] — write-tmp, fsync, rename — so a
//! crash, full disk, or interrupted syscall during a save can never
//! damage the previous checkpoint. Corruption on load surfaces as
//! [`CkptError::Checksum`], distinct from [`CkptError::Malformed`]
//! (wrong-format file) and [`CkptError::Io`].

use std::path::Path;
use stod_faultline::crc::crc32;
use stod_tensor::rng::RngState;
use stod_traffic::Window;

/// Why a checkpoint failed to load.
#[derive(Debug)]
pub enum CkptError {
    /// The file could not be read or written.
    Io(std::io::Error),
    /// The CRC-32 footer did not match — a bit-flip, truncation, or torn
    /// write corrupted the bytes.
    Checksum {
        /// CRC recorded in the footer.
        expected: u32,
        /// CRC recomputed over the payload.
        found: u32,
    },
    /// The bytes are structurally invalid (bad magic, version, or field
    /// encoding).
    Malformed(String),
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Io(e) => write!(f, "checkpoint io error: {e}"),
            CkptError::Checksum { expected, found } => write!(
                f,
                "checkpoint corrupt: crc {expected:#010x} recorded, {found:#010x} computed"
            ),
            CkptError::Malformed(d) => write!(f, "checkpoint malformed: {d}"),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<stod_nn::StoreError> for CkptError {
    fn from(e: stod_nn::StoreError) -> CkptError {
        match e {
            stod_nn::StoreError::Io(e) => CkptError::Io(e),
            stod_nn::StoreError::Checksum { expected, found } => {
                CkptError::Checksum { expected, found }
            }
            stod_nn::StoreError::Malformed(d) => CkptError::Malformed(d),
            // Training checkpoints are always full-precision f32; an f16
            // quantization failure can only come from the serving codec.
            stod_nn::StoreError::Unquantizable { name, value } => CkptError::Malformed(format!(
                "parameter {name} value {value} is not representable in f16"
            )),
        }
    }
}

/// A complete, resumable capture of the training loop. See the module
/// docs for the determinism contract.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainCheckpoint {
    /// 0-based epoch the cursor points into.
    pub epoch: u64,
    /// Next minibatch index within [`Self::order`]. When `order` is empty
    /// the checkpoint sits at the *start* of `epoch` (nothing of it run).
    pub next_mb: u64,
    /// The in-progress epoch's full shuffled window order; empty at an
    /// epoch boundary.
    pub order: Vec<Window>,
    /// Training RNG state, captured after the last completed step.
    pub rng: RngState,
    /// Optimizer steps completed so far.
    pub steps: u64,
    /// Partial-epoch loss accumulator (sum over completed minibatches).
    pub epoch_loss: f64,
    /// Minibatches accumulated into [`Self::epoch_loss`].
    pub batches: u64,
    /// Non-finite minibatches seen so far.
    pub nonfinite_batches: u64,
    /// Rollbacks performed so far.
    pub rollbacks: u64,
    /// Checkpoint saves that failed (training continued).
    pub ckpt_save_failures: u64,
    /// Best validation EMD so far, with the epoch it occurred in.
    pub best_val: Option<(u64, f64)>,
    /// Mean training loss of each completed epoch.
    pub epoch_losses: Vec<f32>,
    /// Validation EMD of each completed epoch (empty without a val set).
    pub val_emd: Vec<f64>,
    /// Learning rate of each started epoch.
    pub epoch_lrs: Vec<f32>,
    /// Serialized model parameters (`ParamStore::to_bytes`, with its own
    /// inner CRC).
    pub params: Vec<u8>,
    /// Serialized optimizer state (`Adam::state_to_bytes`).
    pub opt: Vec<u8>,
}

const MAGIC: &[u8; 4] = b"STCK";
const VERSION: u32 = 1;

impl TrainCheckpoint {
    /// Serializes the checkpoint (format version 1, CRC-32 footer).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64 + self.params.len() + self.opt.len());
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&self.epoch.to_le_bytes());
        buf.extend_from_slice(&self.next_mb.to_le_bytes());
        buf.extend_from_slice(&(self.order.len() as u64).to_le_bytes());
        for w in &self.order {
            for v in [w.t_end as u64, w.s as u64, w.h as u64] {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        for s in self.rng.s {
            buf.extend_from_slice(&s.to_le_bytes());
        }
        match self.rng.gauss_spare {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                buf.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        buf.extend_from_slice(&self.steps.to_le_bytes());
        buf.extend_from_slice(&self.epoch_loss.to_bits().to_le_bytes());
        for c in [
            self.batches,
            self.nonfinite_batches,
            self.rollbacks,
            self.ckpt_save_failures,
        ] {
            buf.extend_from_slice(&c.to_le_bytes());
        }
        match self.best_val {
            None => buf.push(0),
            Some((epoch, emd)) => {
                buf.push(1);
                buf.extend_from_slice(&epoch.to_le_bytes());
                buf.extend_from_slice(&emd.to_bits().to_le_bytes());
            }
        }
        buf.extend_from_slice(&(self.epoch_losses.len() as u64).to_le_bytes());
        for &l in &self.epoch_losses {
            buf.extend_from_slice(&l.to_bits().to_le_bytes());
        }
        buf.extend_from_slice(&(self.val_emd.len() as u64).to_le_bytes());
        for &v in &self.val_emd {
            buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        buf.extend_from_slice(&(self.epoch_lrs.len() as u64).to_le_bytes());
        for &l in &self.epoch_lrs {
            buf.extend_from_slice(&l.to_bits().to_le_bytes());
        }
        buf.extend_from_slice(&(self.params.len() as u64).to_le_bytes());
        buf.extend_from_slice(&self.params);
        buf.extend_from_slice(&(self.opt.len() as u64).to_le_bytes());
        buf.extend_from_slice(&self.opt);
        let crc = {
            let _span = stod_obs::span!("ckpt/crc");
            crc32(&buf)
        };
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Deserializes a checkpoint, verifying the CRC footer before any
    /// field is interpreted.
    pub fn from_bytes(bytes: &[u8]) -> Result<TrainCheckpoint, CkptError> {
        if bytes.len() < 12 {
            return Err(CkptError::Malformed(format!(
                "{} bytes is shorter than the fixed header + footer",
                bytes.len()
            )));
        }
        if &bytes[..4] != MAGIC {
            return Err(CkptError::Malformed("bad magic (not a checkpoint)".into()));
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != VERSION {
            return Err(CkptError::Malformed(format!(
                "unsupported checkpoint version {version}"
            )));
        }
        let body = &bytes[..bytes.len() - 4];
        let expected = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
        let found = {
            let _span = stod_obs::span!("ckpt/crc");
            crc32(body)
        };
        if expected != found {
            return Err(CkptError::Checksum { expected, found });
        }

        let mut cur = Cursor {
            bytes: body,
            pos: 8,
        };
        let epoch = cur.u64()?;
        let next_mb = cur.u64()?;
        let order_len = cur.u64()? as usize;
        if order_len > 1 << 28 {
            return Err(CkptError::Malformed(format!(
                "window order length {order_len} implausible"
            )));
        }
        let mut order = Vec::with_capacity(order_len);
        for _ in 0..order_len {
            order.push(Window {
                t_end: cur.u64()? as usize,
                s: cur.u64()? as usize,
                h: cur.u64()? as usize,
            });
        }
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = cur.u64()?;
        }
        let gauss_spare = match cur.u8()? {
            0 => None,
            1 => Some(f64::from_bits(cur.u64()?)),
            k => return Err(CkptError::Malformed(format!("bad rng spare flag {k}"))),
        };
        let steps = cur.u64()?;
        let epoch_loss = f64::from_bits(cur.u64()?);
        let batches = cur.u64()?;
        let nonfinite_batches = cur.u64()?;
        let rollbacks = cur.u64()?;
        let ckpt_save_failures = cur.u64()?;
        let best_val = match cur.u8()? {
            0 => None,
            1 => Some((cur.u64()?, f64::from_bits(cur.u64()?))),
            k => return Err(CkptError::Malformed(format!("bad best-val flag {k}"))),
        };
        let epoch_losses = cur.vec_f32()?;
        let val_emd = cur.vec_f64()?;
        let epoch_lrs = cur.vec_f32()?;
        let params = cur.vec_u8()?;
        let opt = cur.vec_u8()?;
        if cur.pos != body.len() {
            return Err(CkptError::Malformed(format!(
                "{} trailing bytes after checkpoint fields",
                body.len() - cur.pos
            )));
        }
        Ok(TrainCheckpoint {
            epoch,
            next_mb,
            order,
            rng: RngState { s, gauss_spare },
            steps,
            epoch_loss,
            batches,
            nonfinite_batches,
            rollbacks,
            ckpt_save_failures,
            best_val,
            epoch_losses,
            val_emd,
            epoch_lrs,
            params,
            opt,
        })
    }

    /// Atomically persists the checkpoint; on any failure — real or
    /// injected — the previous file at `path` is untouched.
    pub fn save(&self, path: &Path) -> Result<(), std::io::Error> {
        let _span = stod_obs::span!("ckpt/save");
        let bytes = self.to_bytes();
        if stod_obs::armed() {
            stod_obs::count("ckpt/saves", 1);
            stod_obs::count("ckpt/save_bytes", bytes.len() as u64);
        }
        stod_faultline::io::atomic_write(path, &bytes)
    }

    /// Loads and verifies a checkpoint file.
    pub fn load(path: &Path) -> Result<TrainCheckpoint, CkptError> {
        let _span = stod_obs::span!("ckpt/load");
        let bytes = std::fs::read(path).map_err(CkptError::Io)?;
        if stod_obs::armed() {
            stod_obs::count("ckpt/loads", 1);
        }
        TrainCheckpoint::from_bytes(&bytes)
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], CkptError> {
        if self.bytes.len() - self.pos < n {
            return Err(CkptError::Malformed(format!(
                "checkpoint truncated at byte {}",
                self.pos
            )));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1)?[0])
    }
    fn u64(&mut self) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn len_checked(&mut self, elem_size: usize) -> Result<usize, CkptError> {
        let n = self.u64()? as usize;
        if n.saturating_mul(elem_size) > self.bytes.len() - self.pos {
            return Err(CkptError::Malformed(format!(
                "vector length {n} exceeds remaining bytes"
            )));
        }
        Ok(n)
    }
    fn vec_f32(&mut self) -> Result<Vec<f32>, CkptError> {
        let n = self.len_checked(4)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(f32::from_bits(u32::from_le_bytes(
                self.take(4)?.try_into().unwrap(),
            )));
        }
        Ok(v)
    }
    fn vec_f64(&mut self) -> Result<Vec<f64>, CkptError> {
        let n = self.len_checked(8)?;
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(f64::from_bits(self.u64()?));
        }
        Ok(v)
    }
    fn vec_u8(&mut self) -> Result<Vec<u8>, CkptError> {
        let n = self.len_checked(1)?;
        Ok(self.take(n)?.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TrainCheckpoint {
        TrainCheckpoint {
            epoch: 3,
            next_mb: 2,
            order: vec![
                Window {
                    t_end: 7,
                    s: 3,
                    h: 2,
                },
                Window {
                    t_end: 9,
                    s: 3,
                    h: 2,
                },
            ],
            rng: RngState {
                s: [1, 2, 3, u64::MAX],
                gauss_spare: Some(-0.25),
            },
            steps: 41,
            epoch_loss: 1.5e-3,
            batches: 2,
            nonfinite_batches: 1,
            rollbacks: 2,
            ckpt_save_failures: 0,
            best_val: Some((2, 0.125)),
            epoch_losses: vec![0.5, 0.25, 0.125],
            val_emd: vec![0.3, 0.2, 0.15],
            epoch_lrs: vec![1e-3, 1e-3, 8e-4, 8e-4],
            params: vec![1, 2, 3, 4, 5],
            opt: vec![9, 8, 7],
        }
    }

    #[test]
    fn roundtrip_is_exact() {
        let ck = sample();
        let back = TrainCheckpoint::from_bytes(&ck.to_bytes()).unwrap();
        assert_eq!(back, ck);
    }

    #[test]
    fn empty_order_and_none_fields_roundtrip() {
        let ck = TrainCheckpoint {
            order: Vec::new(),
            best_val: None,
            rng: RngState {
                s: [5, 6, 7, 8],
                gauss_spare: None,
            },
            ..sample()
        };
        assert_eq!(TrainCheckpoint::from_bytes(&ck.to_bytes()).unwrap(), ck);
    }

    #[test]
    fn every_bit_flip_is_caught() {
        let bytes = sample().to_bytes();
        for pos in 8..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x02;
            match TrainCheckpoint::from_bytes(&bad) {
                Err(CkptError::Checksum { .. }) => {}
                other => panic!("flip at {pos}: expected checksum error, got {other:?}"),
            }
        }
    }

    #[test]
    fn truncation_and_garbage_rejected() {
        let bytes = sample().to_bytes();
        for cut in [0, 4, 11, bytes.len() / 2, bytes.len() - 1] {
            assert!(TrainCheckpoint::from_bytes(&bytes[..cut]).is_err());
        }
        assert!(matches!(
            TrainCheckpoint::from_bytes(b"STPW\x02\x00\x00\x00\x00\x00\x00\x00"),
            Err(CkptError::Malformed(_))
        ));
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(TrainCheckpoint::from_bytes(&padded).is_err());
    }

    #[test]
    fn save_load_roundtrip_and_atomicity() {
        use stod_faultline::{install, FaultPlan, FaultSite};
        let dir = std::env::temp_dir().join(format!("stod_ckpt_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("train.stck");
        let ck = sample();
        ck.save(&path).unwrap();
        assert_eq!(TrainCheckpoint::load(&path).unwrap(), ck);

        let newer = TrainCheckpoint {
            steps: 99,
            ..sample()
        };
        {
            let _g = install(FaultPlan::new(8).with(FaultSite::SaveDiskFull, 1.0, 0));
            assert!(newer.save(&path).is_err());
        }
        assert_eq!(
            TrainCheckpoint::load(&path).unwrap(),
            ck,
            "failed save must leave the previous checkpoint loadable"
        );
        newer.save(&path).unwrap();
        assert_eq!(TrainCheckpoint::load(&path).unwrap().steps, 99);
        std::fs::remove_file(&path).unwrap();
    }
}
