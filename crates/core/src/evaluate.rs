//! Evaluation (§VI-A.4): `DisSim` under KL, JS and EMD per forecast step,
//! plus the groupings behind Figures 8–13 (per 3-hour time-of-day bin and
//! per OD-distance group).

use crate::batch::make_batch;
use crate::model::{Mode, OdForecaster};
use stod_metrics::{DisSim, GroupedMean, Metric};
use stod_nn::Tape;
use stod_tensor::rng::Rng64;
use stod_traffic::{OdDataset, Window};

/// Aggregated evaluation results for one model on one test set.
#[derive(Debug, Clone)]
pub struct EvalReport {
    /// Model name.
    pub model: String,
    /// `per_step[j][m]`: mean of metric `Metric::ALL[m]` for the
    /// `(j+1)`-step-ahead forecast.
    pub per_step: Vec<[f64; 3]>,
    /// Cells evaluated per step.
    pub cells_per_step: Vec<usize>,
    /// First-step accuracy grouped by 3-hour time-of-day bin, one
    /// [`GroupedMean`] per metric (Figures 8–10).
    pub by_time: [GroupedMean; 3],
    /// First-step accuracy grouped by OD distance, one per metric
    /// (Figures 11–13).
    pub by_distance: [GroupedMean; 3],
}

impl EvalReport {
    /// Mean of `metric` for the `(step+1)`-ahead forecast.
    pub fn step_mean(&self, step: usize, metric: Metric) -> f64 {
        let m = Metric::ALL
            .iter()
            .position(|x| *x == metric)
            .expect("known metric");
        self.per_step[step][m]
    }
}

/// Evaluates `model` on `windows` (all sharing `(s, h)`).
pub fn evaluate(
    model: &dyn OdForecaster,
    ds: &OdDataset,
    windows: &[Window],
    batch_size: usize,
) -> EvalReport {
    assert!(!windows.is_empty(), "cannot evaluate on zero windows");
    let h = windows[0].h;
    let mut per_step: Vec<[DisSim; 3]> = (0..h).map(|_| Default::default()).collect();
    let mut by_time = [
        GroupedMean::time_of_day_bins(),
        GroupedMean::time_of_day_bins(),
        GroupedMean::time_of_day_bins(),
    ];
    let mut by_distance = [
        GroupedMean::distance_bins(),
        GroupedMean::distance_bins(),
        GroupedMean::distance_bins(),
    ];
    let mut rng = Rng64::new(0); // unused in Eval mode; forward needs one

    for chunk in windows.chunks(batch_size.max(1)) {
        let batch = make_batch(ds, chunk);
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, &batch.inputs, h, Mode::Eval, &mut rng);
        for (j, pred_var) in out.predictions.iter().enumerate() {
            let pred = tape.value(*pred_var);
            let target = &batch.targets[j];
            let mask = &batch.masks[j];
            let (bsz, n, nd, k) = (pred.dim(0), pred.dim(1), pred.dim(2), pred.dim(3));
            for b in 0..bsz {
                let target_interval = batch.windows[b].target_indices()[j];
                let tod_bin = GroupedMean::time_bin(
                    ds.interval_of_day(target_interval),
                    ds.intervals_per_day,
                );
                for o in 0..n {
                    for d in 0..nd {
                        if mask.at(&[b, o, d, 0]) < 0.5 {
                            continue;
                        }
                        let gt: Vec<f32> = (0..k).map(|x| target.at(&[b, o, d, x])).collect();
                        let fc: Vec<f32> = (0..k).map(|x| pred.at(&[b, o, d, x])).collect();
                        for (m, metric) in Metric::ALL.iter().enumerate() {
                            let v = metric.eval(&gt, &fc);
                            per_step[j][m].add(v);
                            if j == 0 {
                                by_time[m].add(tod_bin, v);
                                if let Some(db) =
                                    GroupedMean::distance_bin(ds.city.distance_km(o, d))
                                {
                                    by_distance[m].add(db, v);
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    EvalReport {
        model: model.name().to_string(),
        cells_per_step: per_step.iter().map(|s| s[0].count()).collect(),
        per_step: per_step
            .iter()
            .map(|s| [s[0].mean(), s[1].mean(), s[2].mean()])
            .collect(),
        by_time,
        by_distance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bf::BfModel;
    use crate::config::BfConfig;
    use stod_traffic::{CityModel, SimConfig};

    fn setup() -> (OdDataset, BfModel) {
        let cfg = SimConfig {
            num_days: 2,
            intervals_per_day: 16,
            trips_per_interval: 120.0,
            ..SimConfig::small(5)
        };
        let ds = OdDataset::generate(CityModel::small(5), &cfg);
        let model = BfModel::new(5, 7, BfConfig::default(), 1);
        (ds, model)
    }

    #[test]
    fn report_structure() {
        let (ds, model) = setup();
        let ws = ds.windows(3, 2);
        let report = evaluate(&model, &ds, &ws, 8);
        assert_eq!(report.model, "BF");
        assert_eq!(report.per_step.len(), 2);
        assert_eq!(report.cells_per_step.len(), 2);
        assert!(report.cells_per_step[0] > 0, "no cells evaluated");
        for step in &report.per_step {
            for &v in step {
                assert!(v.is_finite() && v >= 0.0);
            }
        }
    }

    #[test]
    fn metric_accessor_matches_array() {
        let (ds, model) = setup();
        let ws = ds.windows(2, 1);
        let r = evaluate(&model, &ds, &ws, 8);
        assert_eq!(r.step_mean(0, Metric::Kl), r.per_step[0][0]);
        assert_eq!(r.step_mean(0, Metric::Emd), r.per_step[0][2]);
    }

    #[test]
    fn grouped_cells_bounded_by_total() {
        let (ds, model) = setup();
        let ws = ds.windows(2, 1);
        let r = evaluate(&model, &ds, &ws, 8);
        let total = r.cells_per_step[0];
        let time_cells: usize = r.by_time[0].rows().map(|(_, _, c)| c).sum();
        assert_eq!(time_cells, total, "time bins must partition all cells");
        let dist_cells: usize = r.by_distance[0].rows().map(|(_, _, c)| c).sum();
        assert!(dist_cells <= total, "distance groups may drop >3 km pairs");
    }

    #[test]
    fn perfect_predictions_score_zero() {
        // An oracle that copies the target must reach DisSim ≈ 0. Emulate
        // by evaluating the ground truth against itself through the metric
        // plumbing (uses the BF model's shapes but bypasses its weights).
        struct Oracle {
            store: stod_nn::ParamStore,
            /// Per-window, per-step target tensors, cloned up front so the
            /// oracle is plain data (`OdForecaster` requires `Send + Sync`).
            targets: Vec<Vec<stod_tensor::Tensor>>,
        }
        impl OdForecaster for Oracle {
            fn name(&self) -> &str {
                "oracle"
            }
            fn params(&self) -> &stod_nn::ParamStore {
                &self.store
            }
            fn params_mut(&mut self) -> &mut stod_nn::ParamStore {
                &mut self.store
            }
            fn forward(
                &self,
                tape: &mut Tape,
                inputs: &[stod_tensor::Tensor],
                horizon: usize,
                _mode: Mode,
                _rng: &mut Rng64,
            ) -> crate::model::ModelOutput {
                // Reconstruct the batch targets: the test keeps windows in
                // evaluation order with batch_size covering all of them at
                // once.
                let b = inputs[0].dim(0);
                let mut preds = Vec::new();
                for j in 0..horizon {
                    let slices: Vec<&stod_tensor::Tensor> =
                        (0..b).map(|row| &self.targets[row][j]).collect();
                    preds.push(tape.constant(stod_tensor::stack(&slices, 0)));
                }
                crate::model::ModelOutput {
                    predictions: preds,
                    regularizer: None,
                }
            }
        }
        let (ds, _) = setup();
        let ws: Vec<Window> = ds.windows(2, 1).into_iter().take(6).collect();
        let oracle = Oracle {
            store: stod_nn::ParamStore::new(),
            targets: ws
                .iter()
                .map(|w| {
                    w.target_indices()
                        .iter()
                        .map(|&t| ds.tensors[t].data.clone())
                        .collect()
                })
                .collect(),
        };
        let r = evaluate(&oracle, &ds, &ws, ws.len());
        for &v in &r.per_step[0] {
            assert!(v.abs() < 1e-6, "oracle must score 0, got {v}");
        }
    }
}
