//! The Basic Framework (§IV, Algorithm 1).
//!
//! Pipeline per Figure 3:
//!
//! 1. **Factorization** (§IV-B): each sparse input tensor is flattened and
//!    mapped by fully-connected layers to an origin factor vector
//!    `r^(i) ∈ R^{N·β·K}` and a destination factor vector
//!    `c^(i) ∈ R^{β·N'·K}`. A small bottleneck keeps the weight count in
//!    the Table I regime instead of a dense `l × N·β·K` map.
//! 2. **Forecasting** (§IV-C): two sequence-to-sequence GRUs forecast the
//!    factor sequences `h` steps ahead.
//! 3. **Recovery** (§IV-D): per-bucket products `R̂_k · Ĉ_k` followed by a
//!    softmax over buckets yield full stochastic tensors.
//!
//! The Eq. 4 loss contributions `λ_R‖R̂‖²_F + λ_C‖Ĉ‖²_F` are returned as
//! the model's regularizer.

use crate::config::BfConfig;
use crate::model::{Mode, ModelOutput, OdForecaster};
use crate::recovery::{recover, recover_masked};
use stod_nn::layers::{AttnGruSeq2Seq, GruSeq2Seq, Linear};
use stod_nn::{ParamId, ParamStore, Tape, Var};
use stod_tensor::rng::Rng64;
use stod_tensor::Tensor;

/// BF's factor-sequence forecaster: plain GRU seq2seq or the
/// attention-decoder extension of the paper's §VII outlook.
enum Forecaster {
    Plain(GruSeq2Seq),
    Attention(AttnGruSeq2Seq),
}

impl Forecaster {
    fn forward(
        &self,
        tape: &mut Tape,
        store: &ParamStore,
        inputs: &[Var],
        horizon: usize,
    ) -> Vec<Var> {
        match self {
            Forecaster::Plain(m) => m.forward(tape, store, inputs, horizon),
            Forecaster::Attention(m) => m.forward(tape, store, inputs, horizon),
        }
    }
}

/// The Basic Framework model.
pub struct BfModel {
    store: ParamStore,
    num_regions: usize,
    num_buckets: usize,
    cfg: BfConfig,
    enc_r1: Linear,
    enc_r2: Linear,
    enc_c1: Linear,
    enc_c2: Linear,
    seq_r: Forecaster,
    seq_c: Forecaster,
    /// Origin-, destination- and bucket-wise recovery logit biases.
    bias_o: ParamId,
    bias_d: ParamId,
    bias_k: ParamId,
}

impl BfModel {
    /// Builds a BF model for square OD tensors (`N` origins = destinations)
    /// with `K` buckets.
    pub fn new(num_regions: usize, num_buckets: usize, cfg: BfConfig, seed: u64) -> BfModel {
        let mut store = ParamStore::new();
        let mut rng = Rng64::new(seed);
        let l = num_regions * num_regions * num_buckets;
        let r_dim = num_regions * cfg.rank * num_buckets;
        let c_dim = cfg.rank * num_regions * num_buckets;
        let enc_r1 = Linear::new(&mut store, "bf.enc_r1", l, cfg.encode_dim, &mut rng);
        let enc_r2 = Linear::new(&mut store, "bf.enc_r2", cfg.encode_dim, r_dim, &mut rng);
        let enc_c1 = Linear::new(&mut store, "bf.enc_c1", l, cfg.encode_dim, &mut rng);
        let enc_c2 = Linear::new(&mut store, "bf.enc_c2", cfg.encode_dim, c_dim, &mut rng);
        let (seq_r, seq_c) = if cfg.attention {
            (
                Forecaster::Attention(AttnGruSeq2Seq::new(
                    &mut store,
                    "bf.seq_r",
                    r_dim,
                    cfg.gru_hidden,
                    &mut rng,
                )),
                Forecaster::Attention(AttnGruSeq2Seq::new(
                    &mut store,
                    "bf.seq_c",
                    c_dim,
                    cfg.gru_hidden,
                    &mut rng,
                )),
            )
        } else {
            (
                Forecaster::Plain(GruSeq2Seq::new(
                    &mut store,
                    "bf.seq_r",
                    r_dim,
                    cfg.gru_hidden,
                    &mut rng,
                )),
                Forecaster::Plain(GruSeq2Seq::new(
                    &mut store,
                    "bf.seq_c",
                    c_dim,
                    cfg.gru_hidden,
                    &mut rng,
                )),
            )
        };
        let bias_o = store.register("bf.bias_o", Tensor::zeros(&[num_regions, 1, num_buckets]));
        let bias_d = store.register("bf.bias_d", Tensor::zeros(&[1, num_regions, num_buckets]));
        let bias_k = store.register("bf.bias_k", Tensor::zeros(&[num_buckets]));
        BfModel {
            store,
            num_regions,
            num_buckets,
            cfg,
            enc_r1,
            enc_r2,
            enc_c1,
            enc_c2,
            seq_r,
            seq_c,
            bias_o,
            bias_d,
            bias_k,
        }
    }

    /// Builds the `[N, N', K]` recovery bias from its factorized parts.
    fn recovery_bias(&self, tape: &mut Tape) -> Var {
        let bo = tape.param(&self.store, self.bias_o);
        let bd = tape.param(&self.store, self.bias_d);
        let bk = tape.param(&self.store, self.bias_k);
        let od = tape.add(bo, bd);
        tape.add(od, bk)
    }

    /// Factorizes one input step into `(r, c)` factor vectors.
    fn factorize(&self, tape: &mut Tape, x: Var, mode: Mode, rng: &mut Rng64) -> (Var, Var) {
        let dropout = mode.dropout();
        let b = tape.value(x).dim(0);
        let l = self.num_regions * self.num_regions * self.num_buckets;
        let flat = tape.reshape(x, &[b, l]);
        let hr = self.enc_r1.apply(tape, &self.store, flat);
        let hr = tape.tanh(hr);
        let hr = tape.dropout(hr, dropout, mode.is_train(), rng);
        let r = self.enc_r2.apply(tape, &self.store, hr);
        let hc = self.enc_c1.apply(tape, &self.store, flat);
        let hc = tape.tanh(hc);
        let hc = tape.dropout(hc, dropout, mode.is_train(), rng);
        let c = self.enc_c2.apply(tape, &self.store, hc);
        (r, c)
    }

    /// Configured factorization rank β.
    pub fn rank(&self) -> usize {
        self.cfg.rank
    }
}

impl OdForecaster for BfModel {
    fn name(&self) -> &str {
        "BF"
    }

    fn params(&self) -> &ParamStore {
        &self.store
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn forward(
        &self,
        tape: &mut Tape,
        inputs: &[Tensor],
        horizon: usize,
        mode: Mode,
        rng: &mut Rng64,
    ) -> ModelOutput {
        self.forward_impl(tape, inputs, horizon, mode, rng, None)
    }

    fn forward_masked(
        &self,
        tape: &mut Tape,
        inputs: &[Tensor],
        horizon: usize,
        mode: Mode,
        rng: &mut Rng64,
        masks: &[Tensor],
    ) -> ModelOutput {
        self.forward_impl(tape, inputs, horizon, mode, rng, Some(masks))
    }
}

impl BfModel {
    fn forward_impl(
        &self,
        tape: &mut Tape,
        inputs: &[Tensor],
        horizon: usize,
        mode: Mode,
        rng: &mut Rng64,
        masks: Option<&[Tensor]>,
    ) -> ModelOutput {
        assert!(!inputs.is_empty(), "BF needs at least one input step");
        let dims = inputs[0].dims().to_vec();
        assert_eq!(dims.len(), 4, "inputs must be [B, N, N', K]");
        let (b, n, k) = (dims[0], dims[1], dims[3]);
        assert_eq!(n, self.num_regions, "region count mismatch");
        assert_eq!(k, self.num_buckets, "bucket count mismatch");

        // Factorization of every historical step.
        let mut r_seq = Vec::with_capacity(inputs.len());
        let mut c_seq = Vec::with_capacity(inputs.len());
        for t in inputs {
            let x = tape.constant(t.clone());
            let (r, c) = self.factorize(tape, x, mode, rng);
            r_seq.push(r);
            c_seq.push(c);
        }

        // Forecast both factor sequences.
        let r_future = self.seq_r.forward(tape, &self.store, &r_seq, horizon);
        let c_future = self.seq_c.forward(tape, &self.store, &c_seq, horizon);

        // Recovery + Frobenius regularizers (Eq. 4).
        let bias = self.recovery_bias(tape);
        let mut predictions = Vec::with_capacity(horizon);
        let mut reg: Option<Var> = None;
        for (j, (rv, cv)) in r_future.into_iter().zip(c_future).enumerate() {
            let r4 = tape.reshape(rv, &[b, n, self.cfg.rank, k]);
            let c4 = tape.reshape(cv, &[b, self.cfg.rank, n, k]);
            // With the step's loss mask available, recovery can skip empty
            // OD cells (bitwise-identical loss and gradients; see
            // recovery::recover_masked).
            predictions.push(match masks.and_then(|m| m.get(j)) {
                Some(mask) => recover_masked(tape, r4, c4, Some(bias), mask),
                None => recover(tape, r4, c4, Some(bias)),
            });
            let r_reg = tape.frob_sq(r4);
            let r_reg = tape.scale(r_reg, self.cfg.lambda_r / b as f32);
            let c_reg = tape.frob_sq(c4);
            let c_reg = tape.scale(c_reg, self.cfg.lambda_c / b as f32);
            let step_reg = tape.add(r_reg, c_reg);
            reg = Some(match reg {
                Some(acc) => tape.add(acc, step_reg),
                None => step_reg,
            });
        }
        ModelOutput {
            predictions,
            regularizer: reg,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_inputs(b: usize, n: usize, k: usize, steps: usize) -> Vec<Tensor> {
        let mut rng = Rng64::new(9);
        (0..steps)
            .map(|_| {
                // Sparse-ish random histograms.
                let mut t = Tensor::zeros(&[b, n, n, k]);
                for bi in 0..b {
                    for o in 0..n {
                        for d in 0..n {
                            if rng.next_f64() < 0.4 {
                                let bucket = rng.next_below(k);
                                t.set(&[bi, o, d, bucket], 1.0);
                            }
                        }
                    }
                }
                t
            })
            .collect()
    }

    #[test]
    fn forward_shapes_and_distributions() {
        let model = BfModel::new(5, 7, BfConfig::default(), 1);
        let mut tape = Tape::new();
        let mut rng = Rng64::new(2);
        let inputs = toy_inputs(3, 5, 7, 4);
        let out = model.forward(&mut tape, &inputs, 2, Mode::Eval, &mut rng);
        assert_eq!(out.predictions.len(), 2);
        for p in &out.predictions {
            let v = tape.value(*p);
            assert_eq!(v.dims(), &[3, 5, 5, 7]);
            // Every cell must be a probability distribution.
            let sums = stod_tensor::sum_axis(v, 3, false);
            for &s in sums.data() {
                assert!((s - 1.0).abs() < 1e-4);
            }
        }
        assert!(out.regularizer.is_some());
    }

    #[test]
    fn eval_mode_is_deterministic() {
        let model = BfModel::new(4, 7, BfConfig::default(), 3);
        let inputs = toy_inputs(2, 4, 7, 3);
        let run = |seed: u64| {
            let mut tape = Tape::new();
            let mut rng = Rng64::new(seed);
            let out = model.forward(&mut tape, &inputs, 1, Mode::Eval, &mut rng);
            tape.value(out.predictions[0]).clone()
        };
        assert_eq!(run(1), run(999));
    }

    #[test]
    fn weight_count_scales_with_config() {
        let small = BfModel::new(
            4,
            7,
            BfConfig {
                encode_dim: 8,
                ..BfConfig::default()
            },
            1,
        );
        let big = BfModel::new(
            4,
            7,
            BfConfig {
                encode_dim: 64,
                ..BfConfig::default()
            },
            1,
        );
        assert!(big.num_weights() > small.num_weights());
    }

    #[test]
    fn gradients_reach_every_parameter() {
        let model = BfModel::new(3, 7, BfConfig::default(), 5);
        let inputs = toy_inputs(2, 3, 7, 3);
        let mut tape = Tape::new();
        let mut rng = Rng64::new(0);
        let out = model.forward(
            &mut tape,
            &inputs,
            2,
            Mode::Train { dropout: 0.1 },
            &mut rng,
        );
        let target = Tensor::zeros(&[2, 3, 3, 7]);
        let mask = Tensor::ones(&[2, 3, 3, 7]);
        let mut loss = tape.masked_sq_err(out.predictions[0], &target, &mask);
        let l1 = tape.masked_sq_err(out.predictions[1], &target, &mask);
        loss = tape.add(loss, l1);
        if let Some(reg) = out.regularizer {
            loss = tape.add(loss, reg);
        }
        let grads = tape.backward(loss);
        let mut missing = Vec::new();
        for (id, name, _) in model.params().iter() {
            if grads.get(id).is_none() {
                missing.push(name.to_string());
            }
        }
        assert!(
            missing.is_empty(),
            "no gradient for parameters: {missing:?}"
        );
    }
}
