//! The training loop (§VI-A.5): Adam with the paper's step-decay schedule,
//! dropout, gradient clipping, and masked-loss normalization.
//!
//! # Data-parallel shards, deterministically
//!
//! Each minibatch is cut into fixed [`SHARD_GRAIN`]-sample shards whose
//! boundaries depend only on the minibatch size — never on the thread
//! count. Shards build independent tapes, run the forward/backward pass
//! (with a per-shard RNG stream pre-drawn in shard order from the
//! training RNG), and their gradients are merged in shard order on the
//! calling thread. Scheduling shards across the [`stod_tensor::par`]
//! pool therefore cannot change a single bit of the result: the loss
//! trajectory at `STOD_THREADS=4` is identical to `STOD_THREADS=1`.

use crate::batch::{make_batch, minibatches, Batch};
use crate::config::TrainConfig;
use crate::model::{Mode, OdForecaster};
use stod_nn::optim::{clip_global_norm, Adam};
use stod_nn::{Gradients, Tape, Var};
use stod_tensor::rng::Rng64;
use stod_traffic::{OdDataset, Window};

/// Samples per gradient shard. A constant — deriving it from the thread
/// count would move shard boundaries (and the f32 summation grouping)
/// between machines, breaking the bitwise-determinism contract.
const SHARD_GRAIN: usize = 8;

/// Per-epoch training diagnostics.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Mean validation EMD per epoch (empty when no validation set given).
    pub val_emd: Vec<f64>,
    /// Learning rate used in each epoch.
    pub epoch_lrs: Vec<f32>,
}

impl TrainReport {
    /// Final training loss.
    pub fn final_loss(&self) -> f32 {
        self.epoch_losses.last().copied().unwrap_or(f32::NAN)
    }

    /// Whether training reduced the loss overall.
    pub fn improved(&self) -> bool {
        match (self.epoch_losses.first(), self.epoch_losses.last()) {
            (Some(&a), Some(&b)) => b < a,
            _ => false,
        }
    }
}

/// Trains `model` on the given windows by minimizing the masked squared
/// error (normalized by the number of observed cells) plus the model's
/// regularizer — Eq. 4 for BF, Eq. 11 for AF.
pub fn train(
    model: &mut dyn OdForecaster,
    ds: &OdDataset,
    windows: &[Window],
    val: Option<&[Window]>,
    cfg: &TrainConfig,
) -> TrainReport {
    assert!(!windows.is_empty(), "cannot train on zero windows");
    let mut adam = Adam::new(cfg.schedule.initial);
    let mut rng = Rng64::new(cfg.seed);
    let mut report = TrainReport {
        epoch_losses: Vec::new(),
        val_emd: Vec::new(),
        epoch_lrs: Vec::new(),
    };

    for epoch in 0..cfg.epochs {
        adam.lr = cfg.schedule.lr_at(epoch);
        report.epoch_lrs.push(adam.lr);
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;
        for mb in minibatches(windows, cfg.batch_size, &mut rng) {
            // Fixed-grain shards and their RNG seeds, both laid out in
            // shard order *before* any parallel work starts.
            let shards = stod_tensor::par::grain_blocks(mb.len(), SHARD_GRAIN);
            let seeds: Vec<u64> = shards.iter().map(|_| rng.next_u64()).collect();
            let shard_batches: Vec<Batch> = shards
                .iter()
                .map(|r| make_batch(ds, &mb[r.clone()]))
                .collect();
            // Eq. 4 normalizes by the observed cells of the *whole*
            // minibatch; shard regularizers (per-shard means) are scaled
            // by bₛ/B so their sum is the full-batch mean.
            let observed_total = shard_batches
                .iter()
                .map(|b| b.masks.iter().map(stod_tensor::Tensor::sum).sum::<f32>())
                .sum::<f32>()
                .max(1.0);
            let total_b = mb.len() as f32;
            let horizon = shard_batches[0].targets.len();
            let dropout = cfg.dropout;

            let outcomes: Vec<(Gradients, f32)> = {
                let model_ref: &dyn OdForecaster = model;
                let run_shard = |i: usize| -> (Gradients, f32) {
                    let batch = &shard_batches[i];
                    let mut shard_rng = Rng64::new(seeds[i]);
                    let mut tape = Tape::new();
                    let out = model_ref.forward(
                        &mut tape,
                        &batch.inputs,
                        horizon,
                        Mode::Train { dropout },
                        &mut shard_rng,
                    );
                    assert_eq!(
                        out.predictions.len(),
                        horizon,
                        "model returned wrong horizon"
                    );
                    let mut data_loss: Option<Var> = None;
                    for j in 0..horizon {
                        let l = tape.masked_sq_err(
                            out.predictions[j],
                            &batch.targets[j],
                            &batch.masks[j],
                        );
                        data_loss = Some(match data_loss {
                            Some(acc) => tape.add(acc, l),
                            None => l,
                        });
                    }
                    let mut loss =
                        tape.scale(data_loss.expect("horizon ≥ 1"), 1.0 / observed_total);
                    if let Some(reg) = out.regularizer {
                        let reg = tape.scale(reg, batch.len() as f32 / total_b);
                        loss = tape.add(loss, reg);
                    }
                    let loss_val = tape.value(loss).item();
                    debug_assert!(loss_val.is_finite(), "non-finite loss");
                    (tape.backward(loss), loss_val)
                };
                let work = mb.len() * model_ref.num_weights();
                if shards.len() > 1 && stod_tensor::par::should_parallelize(work) {
                    stod_tensor::par::map(shards.len(), run_shard)
                } else {
                    (0..shards.len()).map(run_shard).collect()
                }
            };

            // Shard-order reduction on this thread: the merged gradient
            // and minibatch loss are independent of the schedule above.
            let mut merged: Option<Gradients> = None;
            let mut mb_loss = 0.0f64;
            for (g, loss_val) in outcomes {
                mb_loss += loss_val as f64;
                match &mut merged {
                    Some(m) => m.add_assign(&g),
                    slot => *slot = Some(g),
                }
            }
            epoch_loss += mb_loss;
            batches += 1;

            let mut grads = merged.expect("≥ 1 shard");
            clip_global_norm(&mut grads, cfg.clip_norm);
            adam.step(model.params_mut(), &grads);
        }
        let mean_loss = (epoch_loss / batches.max(1) as f64) as f32;
        report.epoch_losses.push(mean_loss);

        if let Some(val_windows) = val {
            let emd = quick_val_emd(model, ds, val_windows, cfg.batch_size, &mut rng);
            report.val_emd.push(emd);
            if cfg.verbose {
                println!(
                    "epoch {epoch:>3}  lr {:.5}  loss {mean_loss:.5}  val EMD {emd:.4}",
                    adam.lr
                );
            }
        } else if cfg.verbose {
            println!("epoch {epoch:>3}  lr {:.5}  loss {mean_loss:.5}", adam.lr);
        }
    }
    report
}

/// Mean first-step EMD over a validation set (cheap per-epoch signal).
fn quick_val_emd(
    model: &dyn OdForecaster,
    ds: &OdDataset,
    windows: &[Window],
    batch_size: usize,
    rng: &mut Rng64,
) -> f64 {
    if windows.is_empty() {
        return f64::NAN;
    }
    let mut acc = stod_metrics::DisSim::new();
    for chunk in windows.chunks(batch_size) {
        let batch = make_batch(ds, chunk);
        let mut tape = Tape::new();
        let out = model.forward(
            &mut tape,
            &batch.inputs,
            batch.targets.len(),
            Mode::Eval,
            rng,
        );
        let pred = tape.value(out.predictions[0]);
        let (bsz, n, nd, k) = (pred.dim(0), pred.dim(1), pred.dim(2), pred.dim(3));
        let target = &batch.targets[0];
        let mask = &batch.masks[0];
        for b in 0..bsz {
            for o in 0..n {
                for d in 0..nd {
                    if mask.at(&[b, o, d, 0]) < 0.5 {
                        continue;
                    }
                    let gt: Vec<f32> = (0..k).map(|x| target.at(&[b, o, d, x])).collect();
                    let fc: Vec<f32> = (0..k).map(|x| pred.at(&[b, o, d, x])).collect();
                    acc.add(stod_metrics::emd(&gt, &fc));
                }
            }
        }
    }
    acc.mean()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bf::BfModel;
    use crate::config::BfConfig;
    use stod_traffic::{CityModel, OdDataset, SimConfig};

    fn tiny_ds() -> OdDataset {
        let cfg = SimConfig {
            num_days: 2,
            intervals_per_day: 16,
            trips_per_interval: 120.0,
            ..SimConfig::small(7)
        };
        OdDataset::generate(CityModel::small(5), &cfg)
    }

    #[test]
    fn bf_training_reduces_loss() {
        let ds = tiny_ds();
        let windows = ds.windows(3, 1);
        let mut model = BfModel::new(5, 7, BfConfig::default(), 1);
        let cfg = TrainConfig {
            epochs: 6,
            ..TrainConfig::fast_test()
        };
        let report = train(&mut model, &ds, &windows, None, &cfg);
        assert_eq!(report.epoch_losses.len(), 6);
        assert!(
            report.improved(),
            "loss did not improve: {:?}",
            report.epoch_losses
        );
        assert!(report.final_loss().is_finite());
    }

    #[test]
    fn validation_tracking_works() {
        let ds = tiny_ds();
        let ws = ds.windows(2, 1);
        let split = ds.split(&ws, 0.7, 0.15);
        let mut model = BfModel::new(5, 7, BfConfig::default(), 2);
        let cfg = TrainConfig {
            epochs: 2,
            ..TrainConfig::fast_test()
        };
        let report = train(&mut model, &ds, &split.train, Some(&split.val), &cfg);
        assert_eq!(report.val_emd.len(), 2);
        for v in &report.val_emd {
            assert!(v.is_finite() && *v >= 0.0);
        }
    }

    #[test]
    fn lr_schedule_applied() {
        let ds = tiny_ds();
        let windows = ds.windows(2, 1);
        let mut model = BfModel::new(5, 7, BfConfig::default(), 3);
        let cfg = TrainConfig {
            epochs: 4,
            schedule: stod_nn::optim::StepDecay {
                initial: 1e-3,
                decay: 0.5,
                every: 2,
            },
            ..TrainConfig::fast_test()
        };
        let report = train(&mut model, &ds, &windows, None, &cfg);
        assert!((report.epoch_lrs[0] - 1e-3).abs() < 1e-9);
        assert!((report.epoch_lrs[2] - 5e-4).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "zero windows")]
    fn empty_training_set_panics() {
        let ds = tiny_ds();
        let mut model = BfModel::new(5, 7, BfConfig::default(), 4);
        train(&mut model, &ds, &[], None, &TrainConfig::fast_test());
    }
}
