//! The training loop (§VI-A.5): Adam with the paper's step-decay schedule,
//! dropout, gradient clipping, and masked-loss normalization.
//!
//! # Data-parallel shards, deterministically
//!
//! Each minibatch is cut into fixed [`SHARD_GRAIN`]-sample shards whose
//! boundaries depend only on the minibatch size — never on the thread
//! count. Shards build independent tapes, run the forward/backward pass
//! (with a per-shard RNG stream pre-drawn in shard order from the
//! training RNG), and their gradients are merged in shard order on the
//! calling thread. Scheduling shards across the [`stod_tensor::par`]
//! pool therefore cannot change a single bit of the result: the loss
//! trajectory at `STOD_THREADS=4` is identical to `STOD_THREADS=1`.

use crate::batch::{make_batch, minibatches, Batch};
use crate::checkpoint::{CkptError, TrainCheckpoint};
use crate::config::TrainConfig;
use crate::model::{Mode, OdForecaster};
use std::path::PathBuf;
use stod_nn::optim::{clip_global_norm, Adam, ClipStatus};
use stod_nn::{Gradients, ParamStore, Tape, Var};
use stod_tensor::rng::Rng64;
use stod_traffic::{OdDataset, Window};

/// Samples per gradient shard. A constant — deriving it from the thread
/// count would move shard boundaries (and the f32 summation grouping)
/// between machines, breaking the bitwise-determinism contract.
const SHARD_GRAIN: usize = 8;

/// Per-epoch training diagnostics.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Mean validation EMD per epoch (empty when no validation set given).
    pub val_emd: Vec<f64>,
    /// Learning rate used in each epoch.
    pub epoch_lrs: Vec<f32>,
    /// Optimizer steps taken.
    pub steps: u64,
    /// Minibatches whose loss or gradients were non-finite (detected by
    /// the robust trainer's guard; always 0 for plain [`train`]).
    pub nonfinite_batches: u64,
    /// Times the robust trainer rolled back to the last checkpoint.
    pub rollbacks: u64,
    /// Checkpoint saves that failed; training continued and the previous
    /// checkpoint file, if any, remained intact.
    pub ckpt_save_failures: u64,
    /// Best (lowest) validation EMD and the 0-based epoch it occurred in.
    pub best_val: Option<(u64, f64)>,
    /// Pre-clip global gradient norm of every finite optimizer step, in
    /// step order — the gradient-health time series. Deterministic (same
    /// at any `STOD_THREADS` / `STOD_OBS`), but *not* checkpointed: a
    /// resumed run's series restarts at the resume point.
    pub grad_norms: Vec<f32>,
    /// Wall-clock milliseconds of each completed epoch. Timing only —
    /// varies run to run and is not checkpointed.
    pub epoch_wall_ms: Vec<f64>,
}

impl TrainReport {
    /// Final training loss.
    pub fn final_loss(&self) -> f32 {
        self.epoch_losses.last().copied().unwrap_or(f32::NAN)
    }

    /// Whether training reduced the loss overall.
    pub fn improved(&self) -> bool {
        match (self.epoch_losses.first(), self.epoch_losses.last()) {
            (Some(&a), Some(&b)) => b < a,
            _ => false,
        }
    }
}

/// Trains `model` on the given windows by minimizing the masked squared
/// error (normalized by the number of observed cells) plus the model's
/// regularizer — Eq. 4 for BF, Eq. 11 for AF.
pub fn train(
    model: &mut dyn OdForecaster,
    ds: &OdDataset,
    windows: &[Window],
    val: Option<&[Window]>,
    cfg: &TrainConfig,
) -> TrainReport {
    assert!(!windows.is_empty(), "cannot train on zero windows");
    let mut adam = Adam::new(cfg.schedule.initial);
    let mut rng = Rng64::new(cfg.seed);
    let mut report = TrainReport::default();

    for epoch in 0..cfg.epochs {
        let _epoch_span = stod_obs::span!("train/epoch");
        let epoch_t0 = std::time::Instant::now();
        adam.lr = cfg.schedule.lr_at(epoch);
        report.epoch_lrs.push(adam.lr);
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;
        for mb in minibatches(windows, cfg.batch_size, &mut rng) {
            let _mb_span = stod_obs::span!("train/minibatch");
            let (mut grads, mb_loss) = minibatch_outcome(model, ds, &mb, cfg.dropout, &mut rng);
            debug_assert!(mb_loss.is_finite(), "non-finite loss");
            epoch_loss += mb_loss;
            batches += 1;

            let clip = {
                let _opt_span = stod_obs::span!("train/optimizer");
                let clip = clip_global_norm(&mut grads, cfg.clip_norm);
                adam.step(model.params_mut(), &grads);
                clip
            };
            if let ClipStatus::Finite { pre_norm, .. } = clip {
                report.grad_norms.push(pre_norm);
            }
            report.steps += 1;
        }
        let mean_loss = (epoch_loss / batches.max(1) as f64) as f32;
        report.epoch_losses.push(mean_loss);
        report
            .epoch_wall_ms
            .push(epoch_t0.elapsed().as_secs_f64() * 1e3);

        if let Some(val_windows) = val {
            let emd = quick_val_emd(model, ds, val_windows, cfg.batch_size, &mut rng);
            report.val_emd.push(emd);
            if emd.is_finite() && report.best_val.is_none_or(|(_, b)| emd < b) {
                report.best_val = Some((epoch as u64, emd));
            }
            if cfg.verbose {
                println!(
                    "epoch {epoch:>3}  lr {:.5}  loss {mean_loss:.5}  val EMD {emd:.4}",
                    adam.lr
                );
            }
        } else if cfg.verbose {
            println!("epoch {epoch:>3}  lr {:.5}  loss {mean_loss:.5}", adam.lr);
        }
    }
    report
}

/// Runs the forward/backward pass of one minibatch across fixed-grain
/// shards and reduces the result in shard order: the merged gradients and
/// summed loss are bitwise independent of `STOD_THREADS`. Draws one seed
/// per shard from `rng`, in shard order, before any parallel work starts.
fn minibatch_outcome(
    model: &dyn OdForecaster,
    ds: &OdDataset,
    mb: &[Window],
    dropout: f32,
    rng: &mut Rng64,
) -> (Gradients, f64) {
    // Fixed-grain shards and their RNG seeds, both laid out in shard
    // order *before* any parallel work starts.
    let shards = stod_tensor::par::grain_blocks(mb.len(), SHARD_GRAIN);
    let seeds: Vec<u64> = shards.iter().map(|_| rng.next_u64()).collect();
    let shard_batches: Vec<Batch> = shards
        .iter()
        .map(|r| make_batch(ds, &mb[r.clone()]))
        .collect();
    // Eq. 4 normalizes by the observed cells of the *whole* minibatch;
    // shard regularizers (per-shard means) are scaled by bₛ/B so their
    // sum is the full-batch mean.
    let observed_total = shard_batches
        .iter()
        .map(|b| b.masks.iter().map(stod_tensor::Tensor::sum).sum::<f32>())
        .sum::<f32>()
        .max(1.0);
    let total_b = mb.len() as f32;
    let horizon = shard_batches[0].targets.len();

    let outcomes: Vec<(Gradients, f32)> = {
        let run_shard = |i: usize| -> (Gradients, f32) {
            let batch = &shard_batches[i];
            let mut shard_rng = Rng64::new(seeds[i]);
            let mut tape = Tape::new();
            let fwd_span = stod_obs::span!("train/fwd");
            let out = model.forward_masked(
                &mut tape,
                &batch.inputs,
                horizon,
                Mode::Train { dropout },
                &mut shard_rng,
                &batch.masks,
            );
            assert_eq!(
                out.predictions.len(),
                horizon,
                "model returned wrong horizon"
            );
            let mut data_loss: Option<Var> = None;
            for j in 0..horizon {
                let l = tape.masked_sq_err(out.predictions[j], &batch.targets[j], &batch.masks[j]);
                data_loss = Some(match data_loss {
                    Some(acc) => tape.add(acc, l),
                    None => l,
                });
            }
            let mut loss = tape.scale(data_loss.expect("horizon ≥ 1"), 1.0 / observed_total);
            if let Some(reg) = out.regularizer {
                let reg = tape.scale(reg, batch.len() as f32 / total_b);
                loss = tape.add(loss, reg);
            }
            // A non-finite loss is *not* asserted here: the robust
            // trainer detects it after the shard-order reduction and
            // applies its fault policy.
            let loss_val = tape.value(loss).item();
            drop(fwd_span);
            let _bwd_span = stod_obs::span!("train/bwd");
            (tape.backward(loss), loss_val)
        };
        let work = mb.len() * model.num_weights();
        if shards.len() > 1 && stod_tensor::par::should_parallelize(work) {
            stod_tensor::par::map(shards.len(), run_shard)
        } else {
            (0..shards.len()).map(run_shard).collect()
        }
    };

    // Shard-order reduction on this thread: the merged gradient and
    // minibatch loss are independent of the schedule above.
    let mut merged: Option<Gradients> = None;
    let mut mb_loss = 0.0f64;
    for (g, loss_val) in outcomes {
        mb_loss += loss_val as f64;
        match &mut merged {
            Some(m) => m.add_assign(&g),
            slot => *slot = Some(g),
        }
    }
    (merged.expect("≥ 1 shard"), mb_loss)
}

/// What the robust trainer does when a minibatch's loss or gradients come
/// out non-finite (NaN or ±Inf).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPolicy {
    /// Stop training and return [`TrainError::NonFinite`].
    Halt,
    /// Drop the poisoned minibatch (no optimizer step, no loss
    /// contribution) and continue with the next one.
    SkipBatch,
    /// Restore the last checkpoint (on-disk cadence checkpoint, or the
    /// initial state before any was written) and re-run from there. A
    /// *deterministically* poisoned batch will recur, so
    /// [`RobustConfig::max_rollbacks`] bounds the retries.
    RollbackToCheckpoint,
}

/// Crash-safety knobs for [`train_robust`] / [`train_resume`], layered on
/// top of the ordinary [`TrainConfig`].
#[derive(Debug, Clone)]
pub struct RobustConfig {
    /// Where to persist checkpoints; `None` disables checkpoint I/O
    /// (rollback then restores the in-memory initial state).
    pub ckpt_path: Option<PathBuf>,
    /// Checkpoint every N optimizer steps (0 = only at epoch
    /// boundaries). Epoch-boundary checkpoints are always written when
    /// `ckpt_path` is set.
    pub ckpt_every_steps: u64,
    /// Reaction to non-finite losses/gradients.
    pub policy: FaultPolicy,
    /// Cap on rollbacks before giving up (guards against a
    /// deterministically poisoned batch looping forever).
    pub max_rollbacks: u64,
    /// Simulate a crash by returning [`TrainError::Aborted`] after this
    /// many optimizer steps, *without* writing a final checkpoint — the
    /// resume must come from the last cadence checkpoint, exactly like a
    /// real `SIGKILL`.
    pub stop_after_steps: Option<u64>,
}

impl Default for RobustConfig {
    fn default() -> Self {
        RobustConfig {
            ckpt_path: None,
            ckpt_every_steps: 0,
            policy: FaultPolicy::Halt,
            max_rollbacks: 8,
            stop_after_steps: None,
        }
    }
}

/// Why robust training stopped without completing.
#[derive(Debug)]
pub enum TrainError {
    /// A non-finite loss/gradient under [`FaultPolicy::Halt`].
    NonFinite {
        /// Epoch of the poisoned minibatch.
        epoch: u64,
        /// Minibatch index within the epoch.
        minibatch: u64,
    },
    /// [`RobustConfig::max_rollbacks`] exceeded.
    TooManyRollbacks {
        /// Rollbacks performed before giving up.
        rollbacks: u64,
    },
    /// A simulated crash ([`RobustConfig::stop_after_steps`] or the
    /// `train-abort` fault-injection site).
    Aborted {
        /// Optimizer steps completed when the abort fired.
        steps: u64,
    },
    /// The checkpoint to resume from could not be loaded or applied.
    Resume(CkptError),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::NonFinite { epoch, minibatch } => {
                write!(
                    f,
                    "non-finite loss/gradients at epoch {epoch} minibatch {minibatch}"
                )
            }
            TrainError::TooManyRollbacks { rollbacks } => {
                write!(f, "gave up after {rollbacks} rollbacks")
            }
            TrainError::Aborted { steps } => write!(f, "aborted after {steps} steps"),
            TrainError::Resume(e) => write!(f, "cannot resume: {e}"),
        }
    }
}

impl std::error::Error for TrainError {}

impl From<CkptError> for TrainError {
    fn from(e: CkptError) -> TrainError {
        TrainError::Resume(e)
    }
}

/// Mutable loop position shared by capture/restore; the model parameters
/// live in the model itself and the optimizer/RNG ride alongside.
#[derive(Default)]
struct LoopState {
    epoch: u64,
    next_mb: u64,
    order: Vec<Window>,
    epoch_loss: f64,
    batches: u64,
    report: TrainReport,
}

fn capture(model: &dyn OdForecaster, adam: &Adam, rng: &Rng64, st: &LoopState) -> TrainCheckpoint {
    TrainCheckpoint {
        epoch: st.epoch,
        next_mb: st.next_mb,
        order: st.order.clone(),
        rng: rng.state(),
        steps: st.report.steps,
        epoch_loss: st.epoch_loss,
        batches: st.batches,
        nonfinite_batches: st.report.nonfinite_batches,
        rollbacks: st.report.rollbacks,
        ckpt_save_failures: st.report.ckpt_save_failures,
        best_val: st.report.best_val,
        epoch_losses: st.report.epoch_losses.clone(),
        val_emd: st.report.val_emd.clone(),
        epoch_lrs: st.report.epoch_lrs.clone(),
        params: model.params().to_bytes().to_vec(),
        opt: adam.state_to_bytes(),
    }
}

/// Restores a checkpoint into the live training state. When
/// `preserve_counters` is set (in-process rollback) the fault counters
/// keep their current values so rollbacks stay visible in the report;
/// a fresh resume takes the counters from the checkpoint instead.
fn apply(
    ck: &TrainCheckpoint,
    model: &mut dyn OdForecaster,
    adam: &mut Adam,
    rng: &mut Rng64,
    st: &mut LoopState,
    preserve_counters: bool,
) -> Result<(), TrainError> {
    let params =
        ParamStore::from_bytes(bytes::Bytes::from(ck.params.clone())).map_err(CkptError::from)?;
    model.params_mut().copy_from(&params);
    adam.restore_state(&ck.opt).map_err(CkptError::from)?;
    *rng = Rng64::from_state(ck.rng);
    st.epoch = ck.epoch;
    st.next_mb = ck.next_mb;
    st.order = ck.order.clone();
    st.epoch_loss = ck.epoch_loss;
    st.batches = ck.batches;
    st.report.steps = ck.steps;
    st.report.best_val = ck.best_val;
    st.report.epoch_losses = ck.epoch_losses.clone();
    st.report.val_emd = ck.val_emd.clone();
    st.report.epoch_lrs = ck.epoch_lrs.clone();
    if !preserve_counters {
        st.report.nonfinite_batches = ck.nonfinite_batches;
        st.report.rollbacks = ck.rollbacks;
        st.report.ckpt_save_failures = ck.ckpt_save_failures;
    }
    Ok(())
}

/// [`train`] with crash-consistent checkpointing and non-finite guards.
///
/// Starts from scratch; combine with [`train_resume`] to continue after a
/// crash. An uninterrupted `train_robust` run, and any kill-at-step-k +
/// `train_resume` sequence over the same configuration, produce **bitwise
/// identical** loss trajectories, reports, and final weights — at any
/// `STOD_THREADS`.
pub fn train_robust(
    model: &mut dyn OdForecaster,
    ds: &OdDataset,
    windows: &[Window],
    val: Option<&[Window]>,
    cfg: &TrainConfig,
    rcfg: &RobustConfig,
) -> Result<TrainReport, TrainError> {
    run_robust(model, ds, windows, val, cfg, rcfg, None)
}

/// Resumes robust training from `rcfg.ckpt_path` when a valid checkpoint
/// exists there, and starts fresh otherwise (so the same call works for
/// attempt 1 and every retry after a crash).
///
/// A corrupt or malformed checkpoint file is a hard error
/// ([`TrainError::Resume`]) rather than a silent restart: restarting
/// would discard training time, and the caller should decide that.
pub fn train_resume(
    model: &mut dyn OdForecaster,
    ds: &OdDataset,
    windows: &[Window],
    val: Option<&[Window]>,
    cfg: &TrainConfig,
    rcfg: &RobustConfig,
) -> Result<TrainReport, TrainError> {
    let init = match &rcfg.ckpt_path {
        Some(path) if path.exists() => Some(TrainCheckpoint::load(path)?),
        _ => None,
    };
    run_robust(model, ds, windows, val, cfg, rcfg, init)
}

/// Warm-start fine-tuning: copies `init` (e.g. the live incumbent's
/// weights exported from the serving registry) into `model`, then runs the
/// crash-safe trainer over the given windows.
///
/// This is the continual-adaptation entry point: `model` should be a
/// freshly built instance of the same architecture (`copy_from` panics on
/// a layout mismatch, which would mean the caller mixed architectures),
/// and the optimizer/RNG state starts fresh from `cfg.seed` — a fine-tune
/// is a new, short training run seeded from live weights, not a
/// continuation of the original run's Adam moments.
pub fn fine_tune(
    model: &mut dyn OdForecaster,
    init: &ParamStore,
    ds: &OdDataset,
    windows: &[Window],
    cfg: &TrainConfig,
    rcfg: &RobustConfig,
) -> Result<TrainReport, TrainError> {
    model.params_mut().copy_from(init);
    train_robust(model, ds, windows, None, cfg, rcfg)
}

/// [`fine_tune`] with crash resume: when `rcfg.ckpt_path` holds a valid
/// cadence checkpoint from an interrupted fine-tune, training continues
/// from it (the checkpoint's weights override the warm-start copy);
/// otherwise the fine-tune starts fresh from `init`. The same call
/// therefore works for attempt 1 and every retry after a kill, and the
/// combined kill+resume trajectory is bitwise identical to an
/// uninterrupted [`fine_tune`].
pub fn fine_tune_resume(
    model: &mut dyn OdForecaster,
    init: &ParamStore,
    ds: &OdDataset,
    windows: &[Window],
    cfg: &TrainConfig,
    rcfg: &RobustConfig,
) -> Result<TrainReport, TrainError> {
    model.params_mut().copy_from(init);
    train_resume(model, ds, windows, None, cfg, rcfg)
}

fn run_robust(
    model: &mut dyn OdForecaster,
    ds: &OdDataset,
    windows: &[Window],
    val: Option<&[Window]>,
    cfg: &TrainConfig,
    rcfg: &RobustConfig,
    init: Option<TrainCheckpoint>,
) -> Result<TrainReport, TrainError> {
    assert!(!windows.is_empty(), "cannot train on zero windows");
    assert!(cfg.batch_size >= 1, "batch size must be ≥ 1");
    let mut adam = Adam::new(cfg.schedule.initial);
    let mut rng = Rng64::new(cfg.seed);
    let mut st = LoopState::default();
    if let Some(ck) = &init {
        apply(ck, model, &mut adam, &mut rng, &mut st, false)?;
    }
    // The rollback target: the last completed checkpoint, or the pristine
    // initial state before any step ran.
    let mut snapshot = capture(model, &adam, &rng, &st);

    let save_snapshot = |snapshot: &TrainCheckpoint, st: &mut LoopState| {
        if let Some(path) = &rcfg.ckpt_path {
            if snapshot.save(path).is_err() {
                // Best-effort durability: the previous checkpoint file is
                // intact (atomic replace), training continues.
                st.report.ckpt_save_failures += 1;
            }
        }
    };

    let mut epoch_t0 = std::time::Instant::now();
    'training: while st.epoch < cfg.epochs as u64 {
        if st.order.is_empty() {
            // Fresh epoch: set the learning rate and draw the shuffle.
            epoch_t0 = std::time::Instant::now();
            adam.lr = cfg.schedule.lr_at(st.epoch as usize);
            st.report.epoch_lrs.push(adam.lr);
            let mut order = windows.to_vec();
            rng.shuffle(&mut order);
            st.order = order;
            st.next_mb = 0;
            st.epoch_loss = 0.0;
            st.batches = 0;
        }
        let num_chunks = st.order.len().div_ceil(cfg.batch_size);
        while (st.next_mb as usize) < num_chunks {
            let lo = st.next_mb as usize * cfg.batch_size;
            let hi = (lo + cfg.batch_size).min(st.order.len());
            let mb: Vec<Window> = st.order[lo..hi].to_vec();
            let _mb_span = stod_obs::span!("train/minibatch");
            let (mut grads, mb_loss) = minibatch_outcome(model, ds, &mb, cfg.dropout, &mut rng);
            let clip = {
                let _opt_span = stod_obs::span!("train/optimizer");
                clip_global_norm(&mut grads, cfg.clip_norm)
            };
            if !mb_loss.is_finite() || !clip.is_finite() {
                st.report.nonfinite_batches += 1;
                match rcfg.policy {
                    FaultPolicy::Halt => {
                        return Err(TrainError::NonFinite {
                            epoch: st.epoch,
                            minibatch: st.next_mb,
                        })
                    }
                    FaultPolicy::SkipBatch => {
                        st.next_mb += 1;
                        continue;
                    }
                    FaultPolicy::RollbackToCheckpoint => {
                        st.report.rollbacks += 1;
                        if st.report.rollbacks > rcfg.max_rollbacks {
                            return Err(TrainError::TooManyRollbacks {
                                rollbacks: st.report.rollbacks,
                            });
                        }
                        apply(&snapshot, model, &mut adam, &mut rng, &mut st, true)?;
                        continue 'training;
                    }
                }
            }
            st.epoch_loss += mb_loss;
            st.batches += 1;
            {
                let _opt_span = stod_obs::span!("train/optimizer");
                adam.step(model.params_mut(), &grads);
            }
            if let ClipStatus::Finite { pre_norm, .. } = clip {
                st.report.grad_norms.push(pre_norm);
            }
            st.report.steps += 1;
            st.next_mb += 1;

            if rcfg.ckpt_every_steps > 0 && st.report.steps % rcfg.ckpt_every_steps == 0 {
                snapshot = capture(model, &adam, &rng, &st);
                save_snapshot(&snapshot, &mut st);
            }
            // Simulated crashes: the explicit step budget, and the seeded
            // `train-abort` chaos site. Neither writes a final checkpoint.
            let abort_injected =
                stod_faultline::fire(stod_faultline::FaultSite::TrainAbort).is_some();
            if rcfg.stop_after_steps == Some(st.report.steps) || abort_injected {
                return Err(TrainError::Aborted {
                    steps: st.report.steps,
                });
            }
        }

        // Epoch end: mean loss, validation, best-val tracking.
        let mean_loss = (st.epoch_loss / st.batches.max(1) as f64) as f32;
        st.report.epoch_losses.push(mean_loss);
        st.report
            .epoch_wall_ms
            .push(epoch_t0.elapsed().as_secs_f64() * 1e3);
        if let Some(val_windows) = val {
            let emd = quick_val_emd(model, ds, val_windows, cfg.batch_size, &mut rng);
            st.report.val_emd.push(emd);
            if emd.is_finite() && st.report.best_val.is_none_or(|(_, b)| emd < b) {
                st.report.best_val = Some((st.epoch, emd));
            }
            if cfg.verbose {
                println!(
                    "epoch {:>3}  lr {:.5}  loss {mean_loss:.5}  val EMD {emd:.4}",
                    st.epoch, adam.lr
                );
            }
        } else if cfg.verbose {
            println!(
                "epoch {:>3}  lr {:.5}  loss {mean_loss:.5}",
                st.epoch, adam.lr
            );
        }
        st.epoch += 1;
        st.order = Vec::new();
        st.next_mb = 0;
        st.epoch_loss = 0.0;
        st.batches = 0;
        // Epoch-boundary checkpoint (always, when a path is configured).
        snapshot = capture(model, &adam, &rng, &st);
        save_snapshot(&snapshot, &mut st);
    }
    Ok(st.report)
}

/// Mean first-step EMD over a validation set (cheap per-epoch signal).
fn quick_val_emd(
    model: &dyn OdForecaster,
    ds: &OdDataset,
    windows: &[Window],
    batch_size: usize,
    rng: &mut Rng64,
) -> f64 {
    if windows.is_empty() {
        return f64::NAN;
    }
    let _span = stod_obs::span!("train/validate");
    let mut acc = stod_metrics::DisSim::new();
    for chunk in windows.chunks(batch_size) {
        let batch = make_batch(ds, chunk);
        let mut tape = Tape::new();
        let out = model.forward(
            &mut tape,
            &batch.inputs,
            batch.targets.len(),
            Mode::Eval,
            rng,
        );
        let pred = tape.value(out.predictions[0]);
        let (bsz, n, nd, k) = (pred.dim(0), pred.dim(1), pred.dim(2), pred.dim(3));
        let target = &batch.targets[0];
        let mask = &batch.masks[0];
        for b in 0..bsz {
            for o in 0..n {
                for d in 0..nd {
                    if mask.at(&[b, o, d, 0]) < 0.5 {
                        continue;
                    }
                    let gt: Vec<f32> = (0..k).map(|x| target.at(&[b, o, d, x])).collect();
                    let fc: Vec<f32> = (0..k).map(|x| pred.at(&[b, o, d, x])).collect();
                    acc.add(stod_metrics::emd(&gt, &fc));
                }
            }
        }
    }
    acc.mean()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bf::BfModel;
    use crate::config::BfConfig;
    use stod_traffic::{CityModel, OdDataset, SimConfig};

    fn tiny_ds() -> OdDataset {
        let cfg = SimConfig {
            num_days: 2,
            intervals_per_day: 16,
            trips_per_interval: 120.0,
            ..SimConfig::small(7)
        };
        OdDataset::generate(CityModel::small(5), &cfg)
    }

    #[test]
    fn bf_training_reduces_loss() {
        let ds = tiny_ds();
        let windows = ds.windows(3, 1);
        let mut model = BfModel::new(5, 7, BfConfig::default(), 1);
        let cfg = TrainConfig {
            epochs: 6,
            ..TrainConfig::fast_test()
        };
        let report = train(&mut model, &ds, &windows, None, &cfg);
        assert_eq!(report.epoch_losses.len(), 6);
        assert!(
            report.improved(),
            "loss did not improve: {:?}",
            report.epoch_losses
        );
        assert!(report.final_loss().is_finite());
    }

    #[test]
    fn validation_tracking_works() {
        let ds = tiny_ds();
        let ws = ds.windows(2, 1);
        let split = ds.split(&ws, 0.7, 0.15);
        let mut model = BfModel::new(5, 7, BfConfig::default(), 2);
        let cfg = TrainConfig {
            epochs: 2,
            ..TrainConfig::fast_test()
        };
        let report = train(&mut model, &ds, &split.train, Some(&split.val), &cfg);
        assert_eq!(report.val_emd.len(), 2);
        for v in &report.val_emd {
            assert!(v.is_finite() && *v >= 0.0);
        }
    }

    #[test]
    fn lr_schedule_applied() {
        let ds = tiny_ds();
        let windows = ds.windows(2, 1);
        let mut model = BfModel::new(5, 7, BfConfig::default(), 3);
        let cfg = TrainConfig {
            epochs: 4,
            schedule: stod_nn::optim::StepDecay {
                initial: 1e-3,
                decay: 0.5,
                every: 2,
            },
            ..TrainConfig::fast_test()
        };
        let report = train(&mut model, &ds, &windows, None, &cfg);
        assert!((report.epoch_lrs[0] - 1e-3).abs() < 1e-9);
        assert!((report.epoch_lrs[2] - 5e-4).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "zero windows")]
    fn empty_training_set_panics() {
        let ds = tiny_ds();
        let mut model = BfModel::new(5, 7, BfConfig::default(), 4);
        train(&mut model, &ds, &[], None, &TrainConfig::fast_test());
    }
}
