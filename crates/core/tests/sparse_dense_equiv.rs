//! Sparse/dense recovery equivalence (ISSUE 8, satellite 3).
//!
//! The sparse-skip recovery path must be a drop-in replacement for the
//! dense factorization pipeline during training: observed-cell outputs,
//! the masked loss, and every parameter gradient must match the dense
//! path **bitwise**, at any thread count, and none of them may depend on
//! what the ground truth holds at empty cells (Eq. 4 invariance).

use stod_core::recovery::{recover, recover_masked, recover_sparse, SPARSE_DENSITY_CUTOFF};
use stod_nn::{Tape, Var};
use stod_tensor::rng::Rng64;
use stod_tensor::{par, Tensor};

/// Deterministic pseudo-random cell mask with roughly `density` observed.
fn make_cells(b: usize, n: usize, nd: usize, density: f64, seed: u64) -> Vec<bool> {
    let mut rng = Rng64::new(seed);
    (0..b * n * nd)
        .map(|_| (rng.next_f32() as f64) < density)
        .collect()
}

/// Expands a per-cell mask to the `[B, N, N', K]` loss mask.
fn loss_mask(cells: &[bool], dims: &[usize]) -> Tensor {
    let k = dims[3];
    let data: Vec<f32> = cells
        .iter()
        .flat_map(|&m| std::iter::repeat_n(if m { 1.0 } else { 0.0 }, k))
        .collect();
    Tensor::from_vec(dims, data)
}

struct Setup {
    r: Tensor,
    c: Tensor,
    bias: Tensor,
    target: Tensor,
    cells: Vec<bool>,
    dims: Vec<usize>, // [B, N, N', K]
}

fn setup(b: usize, n: usize, beta: usize, nd: usize, k: usize, density: f64, seed: u64) -> Setup {
    let mut rng = Rng64::new(seed);
    Setup {
        r: Tensor::randn(&[b, n, beta, k], 0.7, &mut rng),
        c: Tensor::randn(&[b, beta, nd, k], 0.7, &mut rng),
        bias: Tensor::randn(&[n, nd, k], 0.3, &mut rng),
        target: Tensor::rand_uniform(&[b, n, nd, k], 0.0, 1.0, &mut rng),
        cells: make_cells(b, n, nd, density, seed ^ 0xabcdef),
        dims: vec![b, n, nd, k],
    }
}

/// Runs one path end to end and returns (prediction, loss, dr, dc, dbias).
fn run(s: &Setup, sparse: bool) -> (Tensor, f32, Tensor, Tensor, Tensor) {
    let mut tape = Tape::new();
    let r = tape.leaf(s.r.clone());
    let c = tape.leaf(s.c.clone());
    let bias = tape.leaf(s.bias.clone());
    let pred = if sparse {
        recover_sparse(&mut tape, r, c, Some(bias), &s.cells)
    } else {
        recover(&mut tape, r, c, Some(bias))
    };
    let mask = loss_mask(&s.cells, &s.dims);
    let loss = tape.masked_sq_err(pred, &s.target, &mask);
    let loss_val = tape.value(loss).item();
    let grads = tape.backward_wrt(loss, &[r, c, bias]);
    let pred_val = tape.value(pred).clone();
    let mut it = grads.into_iter();
    (
        pred_val,
        loss_val,
        it.next().unwrap().expect("dr"),
        it.next().unwrap().expect("dc"),
        it.next().unwrap().expect("dbias"),
    )
}

fn assert_bitwise(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(a.dims(), b.dims(), "{what} dims");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what} diverges at flat index {i}: {x:e} vs {y:e}"
        );
    }
}

fn check_equivalence(s: &Setup) {
    let (dense_pred, dense_loss, dense_dr, dense_dc, dense_db) = run(s, false);
    let (sparse_pred, sparse_loss, sparse_dr, sparse_dc, sparse_db) = run(s, true);

    // Forward: observed cells bitwise identical; empty cells uniform 1/K.
    let k = s.dims[3];
    let uniform = 1.0 / k as f32;
    for (cell, &obs) in s.cells.iter().enumerate() {
        for ki in 0..k {
            let d = dense_pred.data()[cell * k + ki];
            let sp = sparse_pred.data()[cell * k + ki];
            if obs {
                assert_eq!(d.to_bits(), sp.to_bits(), "observed cell {cell} lane {ki}");
            } else {
                assert_eq!(sp, uniform, "empty cell {cell} must be uniform");
            }
        }
    }
    assert_eq!(
        dense_loss.to_bits(),
        sparse_loss.to_bits(),
        "masked loss must not depend on the path"
    );
    assert_bitwise(&dense_dr, &sparse_dr, "dR");
    assert_bitwise(&dense_dc, &sparse_dc, "dC");
    assert_bitwise(&dense_db, &sparse_db, "dBias");
}

#[test]
fn sparse_matches_dense_bitwise_serial_and_parallel() {
    // Shapes chosen to land on both GEMM flavors: the first is small
    // enough for the naive kernel, the second large enough that the dense
    // per-bucket products take the blocked path.
    for &(b, n, beta, nd, k, density) in &[
        (2usize, 6usize, 3usize, 5usize, 4usize, 0.35f64),
        (2, 24, 5, 26, 6, 0.25),
    ] {
        let s = setup(b, n, beta, nd, k, density, 0x5eed + n as u64);
        par::with_forced_threads(1, || check_equivalence(&s));
        par::with_forced_threads(4, || check_equivalence(&s));
    }
}

#[test]
fn empty_cell_ground_truth_cannot_leak_into_gradients() {
    // Eq. 4 invariance: rewriting targets at *empty* cells must leave the
    // loss and every gradient bitwise unchanged on both paths.
    let mut s = setup(2, 8, 3, 7, 5, 0.3, 0xfeed);
    for sparse in [false, true] {
        let (_, loss_a, dr_a, dc_a, db_a) = run(&s, sparse);
        let mut poisoned = s.target.clone();
        let k = s.dims[3];
        for (cell, &obs) in s.cells.iter().enumerate() {
            if !obs {
                for ki in 0..k {
                    poisoned.data_mut()[cell * k + ki] = 1e6;
                }
            }
        }
        std::mem::swap(&mut s.target, &mut poisoned);
        let (_, loss_b, dr_b, dc_b, db_b) = run(&s, sparse);
        std::mem::swap(&mut s.target, &mut poisoned);
        assert_eq!(
            loss_a.to_bits(),
            loss_b.to_bits(),
            "loss leaked (sparse={sparse})"
        );
        assert_bitwise(&dr_a, &dr_b, "dR invariance");
        assert_bitwise(&dc_a, &dc_b, "dC invariance");
        assert_bitwise(&db_a, &db_b, "dBias invariance");
    }
}

#[test]
fn all_empty_mask_gives_uniform_output_and_zero_gradients() {
    let s = Setup {
        cells: vec![false; 2 * 4 * 5],
        ..setup(2, 4, 3, 5, 6, 0.0, 7)
    };
    let (pred, loss, dr, dc, db) = run(&s, true);
    assert!(pred.data().iter().all(|&x| x == 1.0 / 6.0));
    assert_eq!(loss, 0.0);
    assert!(dr.data().iter().all(|&x| x == 0.0));
    assert!(dc.data().iter().all(|&x| x == 0.0));
    assert!(db.data().iter().all(|&x| x == 0.0));
}

#[test]
fn recover_masked_dispatches_on_density() {
    // Below the cutoff the wrapper must produce the sparse (uniform at
    // empty cells) output; at/above it, the dense output everywhere.
    let s = setup(1, 10, 3, 10, 4, 0.2, 99);
    const { assert!(SPARSE_DENSITY_CUTOFF > 0.2 && SPARSE_DENSITY_CUTOFF < 1.0) };

    let build = |cells: &[bool]| -> (Tensor, Tensor) {
        let mask = loss_mask(cells, &s.dims);
        let mut tape = Tape::new();
        let (r, c, bias): (Var, Var, Var) = (
            tape.leaf(s.r.clone()),
            tape.leaf(s.c.clone()),
            tape.leaf(s.bias.clone()),
        );
        let m = recover_masked(&mut tape, r, c, Some(bias), &mask);
        let d = recover(&mut tape, r, c, Some(bias));
        (tape.value(m).clone(), tape.value(d).clone())
    };

    let (masked_out, dense_out) = build(&s.cells);
    let k = s.dims[3];
    let empty = s.cells.iter().position(|&m| !m).expect("has empty cells");
    assert_eq!(masked_out.data()[empty * k], 0.25, "sparse path expected");

    let all_obs = vec![true; s.cells.len()];
    let (masked_all, dense_all) = build(&all_obs);
    assert_bitwise(&masked_all, &dense_all, "dense fallback");
    drop(dense_out);
}
