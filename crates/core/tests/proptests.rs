//! Property-based tests for the core pipeline: recovery invariants,
//! batching consistency, and loss behaviour for arbitrary inputs.

use proptest::prelude::*;
use stod_core::recovery::recover;
use stod_nn::Tape;
use stod_tensor::Tensor;

fn factor_pair() -> impl Strategy<Value = (Tensor, Tensor)> {
    (1..=2usize, 2..=4usize, 1..=3usize, 2..=4usize).prop_flat_map(|(b, n, beta, k)| {
        let rs = proptest::collection::vec(-2.0f32..2.0, b * n * beta * k)
            .prop_map(move |d| Tensor::from_vec(&[b, n, beta, k], d));
        let cs = proptest::collection::vec(-2.0f32..2.0, b * beta * n * k)
            .prop_map(move |d| Tensor::from_vec(&[b, beta, n, k], d));
        (rs, cs)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Recovery always emits valid histograms regardless of factor values.
    #[test]
    fn recovery_always_on_simplex(pair in factor_pair()) {
        let (r, c) = pair;
        let k = r.dim(3);
        let mut tape = Tape::new();
        let rv = tape.leaf(r);
        let cv = tape.leaf(c);
        let m = recover(&mut tape, rv, cv, None);
        let v = tape.value(m);
        prop_assert!(v.all_finite());
        prop_assert!(v.data().iter().all(|&x| x >= 0.0));
        let sums = stod_tensor::sum_axis(v, 3, false);
        for &s in sums.data() {
            prop_assert!((s - 1.0).abs() < 1e-4, "cell sums to {s}");
        }
        prop_assert_eq!(v.dim(3), k);
    }

    /// Scaling both factors by a positive constant sharpens but never
    /// breaks the distributions; scaling by zero gives uniform cells.
    #[test]
    fn zero_factors_give_uniform(b in 1usize..3, n in 2usize..4, k in 2usize..5) {
        let mut tape = Tape::new();
        let rv = tape.leaf(Tensor::zeros(&[b, n, 2, k]));
        let cv = tape.leaf(Tensor::zeros(&[b, 2, n, k]));
        let m = recover(&mut tape, rv, cv, None);
        let v = tape.value(m);
        let expect = 1.0 / k as f32;
        for &x in v.data() {
            prop_assert!((x - expect).abs() < 1e-6);
        }
    }

    /// Recovery is bitwise identical under the parallel pool: the B·K
    /// rank-β products and the softmax may be chunked across workers, but
    /// values (forward AND gradients) never change.
    #[test]
    fn recovery_bitwise_identical_serial_vs_parallel(pair in factor_pair()) {
        let (r, c) = pair;
        let run = |threads: usize| {
            stod_tensor::par::with_forced_threads(threads, || {
                let mut tape = Tape::new();
                let rv = tape.leaf(r.clone());
                let cv = tape.leaf(c.clone());
                let m = recover(&mut tape, rv, cv, None);
                let target = Tensor::zeros(tape.value(m).dims());
                let mask = Tensor::ones(tape.value(m).dims());
                let loss = tape.masked_sq_err(m, &target, &mask);
                let out = tape.value(m).data().to_vec();
                let grads = tape.backward_wrt(loss, &[rv, cv]);
                (out, grads)
            })
        };
        let (out1, g1) = run(1);
        for threads in [2usize, 4] {
            let (outn, gn) = run(threads);
            prop_assert!(
                out1.iter().zip(&outn).all(|(a, b)| a.to_bits() == b.to_bits()),
                "forward differs at {threads} threads"
            );
            for (a, b) in g1.iter().zip(&gn) {
                let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
                prop_assert!(
                    a.data().iter().zip(b.data()).all(|(x, y)| x.to_bits() == y.to_bits()),
                    "gradients differ at {threads} threads"
                );
            }
        }
    }

    /// Eq. 4 through the full recovery path: the loss only reads observed
    /// cells, so whatever garbage the ground-truth tensor holds in empty
    /// (mask-0) cells leaves the loss value unchanged.
    #[test]
    fn eq4_loss_ignores_empty_ground_truth_cells(
        pair in factor_pair(),
        garbage in proptest::collection::vec(-50.0f32..50.0, 256),
    ) {
        let (r, c) = pair;
        let (b, n, k) = (r.dim(0), r.dim(1), r.dim(3));
        let numel = b * n * n * k;
        // Every odd cell is unobserved.
        let mask = Tensor::from_vec(
            &[b, n, n, k],
            (0..numel).map(|i| if i % 2 == 0 { 1.0 } else { 0.0 }).collect(),
        );
        let loss_of = |target: Tensor| -> f32 {
            let mut tape = Tape::new();
            let rv = tape.leaf(r.clone());
            let cv = tape.leaf(c.clone());
            let m = recover(&mut tape, rv, cv, None);
            let l = tape.masked_sq_err(m, &target, &mask);
            tape.value(l).item()
        };
        let base = loss_of(Tensor::zeros(&[b, n, n, k]));
        let mut poisoned = Tensor::zeros(&[b, n, n, k]);
        for i in (1..numel).step_by(2) {
            poisoned.data_mut()[i] = garbage[i % garbage.len()];
        }
        let with_garbage = loss_of(poisoned);
        prop_assert_eq!(
            base.to_bits(), with_garbage.to_bits(),
            "empty-cell ground truth leaked into Eq. 4: {} vs {}", base, with_garbage
        );
    }

    /// The masked loss is invariant to the values of masked-out cells.
    #[test]
    fn masked_loss_ignores_masked_cells(
        vals in proptest::collection::vec(-3.0f32..3.0, 12),
        garbage in proptest::collection::vec(-100.0f32..100.0, 12),
    ) {
        let dims = [3usize, 4];
        let target = Tensor::zeros(&dims);
        // Mask out the second half of the cells.
        let mask = Tensor::from_vec(
            &dims,
            (0..12).map(|i| if i < 6 { 1.0 } else { 0.0 }).collect(),
        );
        let loss_of = |data: Vec<f32>| -> f32 {
            let mut tape = Tape::new();
            let pred = tape.leaf(Tensor::from_vec(&dims, data));
            let l = tape.masked_sq_err(pred, &target, &mask);
            tape.value(l).item()
        };
        let mut a = vals.clone();
        let mut b = vals.clone();
        for i in 6..12 {
            a[i] = garbage[i];
            b[i] = -garbage[i] * 0.5 + 1.0;
        }
        prop_assert!((loss_of(a) - loss_of(b)).abs() < 1e-4);
    }
}
