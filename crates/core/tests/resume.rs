//! Crash-safe training: kill-at-any-minibatch + resume must reproduce the
//! uninterrupted run bitwise, at any thread count; non-finite faults must
//! follow the configured policy; checkpoint I/O faults must never damage
//! the previous checkpoint.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use stod_core::config::BfConfig;
use stod_core::{
    train, train_resume, train_robust, BfModel, FaultPolicy, Mode, ModelOutput, OdForecaster,
    RobustConfig, TrainConfig, TrainError, TrainReport,
};
use stod_faultline::{install, FaultPlan, FaultSite};
use stod_nn::{ParamStore, Tape};
use stod_tensor::rng::Rng64;
use stod_tensor::Tensor;
use stod_traffic::{CityModel, OdDataset, SimConfig, Window};

fn tiny_ds() -> OdDataset {
    let cfg = SimConfig {
        num_days: 2,
        intervals_per_day: 12,
        trips_per_interval: 100.0,
        ..SimConfig::small(7)
    };
    OdDataset::generate(CityModel::small(4), &cfg)
}

fn fast_cfg(seed: u64) -> TrainConfig {
    TrainConfig {
        epochs: 2,
        seed,
        ..TrainConfig::fast_test()
    }
}

fn tmp_ckpt(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("stod_resume_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn fresh_model(seed: u64) -> BfModel {
    BfModel::new(4, 7, BfConfig::default(), seed)
}

/// Bitwise fingerprint of a finished run: parameter bytes + report bits.
fn fingerprint(model: &BfModel, report: &TrainReport) -> (Vec<u8>, Vec<u32>, Vec<u64>, u64) {
    (
        model.params().to_bytes().to_vec(),
        report.epoch_losses.iter().map(|l| l.to_bits()).collect(),
        report.val_emd.iter().map(|v| v.to_bits()).collect(),
        report.steps,
    )
}

/// The tentpole guarantee: for several seeds and kill points, at 1 and 4
/// threads, kill-at-minibatch + resume reproduces the uninterrupted run's
/// loss trajectory, validation curve, and final weights bitwise.
#[test]
fn kill_and_resume_is_bitwise_identical() {
    let ds = tiny_ds();
    let windows = ds.windows(2, 1);
    let val = &windows[..4];

    for &threads in &[1usize, 4] {
        stod_tensor::par::with_forced_threads(threads, || {
            for seed in [11u64, 23] {
                let cfg = fast_cfg(seed);

                // Uninterrupted baseline (no checkpoint I/O at all —
                // checkpointing must not influence the trajectory).
                let mut base_model = fresh_model(seed);
                let base = train_robust(
                    &mut base_model,
                    &ds,
                    &windows,
                    Some(val),
                    &cfg,
                    &RobustConfig::default(),
                )
                .unwrap();
                let base_fp = fingerprint(&base_model, &base);
                assert!(
                    base.steps >= 6,
                    "test needs several steps, got {}",
                    base.steps
                );

                for kill_at in [1u64, 4, base.steps - 1] {
                    let path = tmp_ckpt(&format!("kill_{threads}_{seed}_{kill_at}.stck"));
                    let _ = std::fs::remove_file(&path);
                    let rcfg = RobustConfig {
                        ckpt_path: Some(path.clone()),
                        ckpt_every_steps: 3,
                        stop_after_steps: Some(kill_at),
                        ..RobustConfig::default()
                    };
                    let mut killed_model = fresh_model(seed);
                    match train_robust(&mut killed_model, &ds, &windows, Some(val), &cfg, &rcfg) {
                        Err(TrainError::Aborted { steps }) => assert_eq!(steps, kill_at),
                        other => panic!("expected abort at {kill_at}, got {other:?}"),
                    }

                    // Resume in a fresh process-equivalent: new model (the
                    // checkpoint overwrites its weights), same configs.
                    let rcfg_resume = RobustConfig {
                        stop_after_steps: None,
                        ..rcfg
                    };
                    let mut resumed_model = fresh_model(seed);
                    let resumed = train_resume(
                        &mut resumed_model,
                        &ds,
                        &windows,
                        Some(val),
                        &cfg,
                        &rcfg_resume,
                    )
                    .unwrap();
                    assert_eq!(
                        fingerprint(&resumed_model, &resumed),
                        base_fp,
                        "threads={threads} seed={seed} kill_at={kill_at}"
                    );
                    let _ = std::fs::remove_file(&path);
                }
            }
        });
    }
}

/// Thread count must not change the robust trajectory either (the plain
/// trainer already guarantees this; the robust loop must preserve it).
#[test]
fn robust_trajectory_thread_invariant() {
    let ds = tiny_ds();
    let windows = ds.windows(2, 1);
    let cfg = fast_cfg(5);
    let run = |threads: usize| {
        stod_tensor::par::with_forced_threads(threads, || {
            let mut model = fresh_model(5);
            let report = train_robust(
                &mut model,
                &ds,
                &windows,
                None,
                &cfg,
                &RobustConfig::default(),
            )
            .unwrap();
            fingerprint(&model, &report)
        })
    };
    assert_eq!(run(1), run(4));
}

/// With no faults and no checkpointing, `train_robust` walks the same
/// RNG/shuffle sequence as the legacy `train` — their trajectories match.
#[test]
fn robust_matches_plain_trainer_without_faults() {
    let ds = tiny_ds();
    let windows = ds.windows(2, 1);
    let cfg = fast_cfg(9);
    let mut plain_model = fresh_model(9);
    let plain = train(&mut plain_model, &ds, &windows, None, &cfg);
    let mut robust_model = fresh_model(9);
    let robust = train_robust(
        &mut robust_model,
        &ds,
        &windows,
        None,
        &cfg,
        &RobustConfig::default(),
    )
    .unwrap();
    assert_eq!(
        plain
            .epoch_losses
            .iter()
            .map(|l| l.to_bits())
            .collect::<Vec<_>>(),
        robust
            .epoch_losses
            .iter()
            .map(|l| l.to_bits())
            .collect::<Vec<_>>(),
    );
    assert_eq!(
        plain_model.params().to_bytes(),
        robust_model.params().to_bytes()
    );
}

/// `train_resume` without an existing checkpoint file starts fresh.
#[test]
fn resume_without_checkpoint_starts_fresh() {
    let ds = tiny_ds();
    let windows = ds.windows(2, 1);
    let cfg = fast_cfg(3);
    let path = tmp_ckpt("fresh_start.stck");
    let _ = std::fs::remove_file(&path);
    let rcfg = RobustConfig {
        ckpt_path: Some(path.clone()),
        ..RobustConfig::default()
    };
    let mut model = fresh_model(3);
    let report = train_resume(&mut model, &ds, &windows, None, &cfg, &rcfg).unwrap();
    assert_eq!(report.epoch_losses.len(), cfg.epochs);
    assert!(path.exists(), "epoch-boundary checkpoint must be written");
    let _ = std::fs::remove_file(&path);
}

/// A damaged checkpoint is a hard, typed resume error — never a panic,
/// never a silent restart.
#[test]
fn resume_rejects_damaged_checkpoint() {
    let ds = tiny_ds();
    let windows = ds.windows(2, 1);
    let cfg = fast_cfg(4);

    let garbage = tmp_ckpt("garbage.stck");
    std::fs::write(&garbage, b"not a checkpoint at all").unwrap();
    let rcfg = RobustConfig {
        ckpt_path: Some(garbage.clone()),
        ..RobustConfig::default()
    };
    let mut model = fresh_model(4);
    assert!(matches!(
        train_resume(&mut model, &ds, &windows, None, &cfg, &rcfg),
        Err(TrainError::Resume(_))
    ));

    // A real checkpoint with one flipped bit must fail the CRC.
    let path = tmp_ckpt("flipped.stck");
    let _ = std::fs::remove_file(&path);
    let rcfg = RobustConfig {
        ckpt_path: Some(path.clone()),
        ckpt_every_steps: 2,
        stop_after_steps: Some(3),
        ..RobustConfig::default()
    };
    let mut model = fresh_model(4);
    let _ = train_robust(&mut model, &ds, &windows, None, &cfg, &rcfg);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x04;
    std::fs::write(&path, &bytes).unwrap();
    let mut model = fresh_model(4);
    match train_resume(&mut model, &ds, &windows, None, &cfg, &rcfg) {
        Err(TrainError::Resume(stod_core::CkptError::Checksum { .. })) => {}
        other => panic!("expected checksum resume error, got {other:?}"),
    }
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&garbage);
}

/// Injected save failures (full disk, interrupted write) must leave the
/// previous checkpoint intact and must not alter the training trajectory.
#[test]
fn injected_save_faults_never_damage_previous_checkpoint() {
    let ds = tiny_ds();
    let windows = ds.windows(2, 1);
    let cfg = fast_cfg(6);
    let path = tmp_ckpt("savefault.stck");
    let _ = std::fs::remove_file(&path);
    let rcfg = RobustConfig {
        ckpt_path: Some(path.clone()),
        ckpt_every_steps: 2,
        ..RobustConfig::default()
    };

    // Fault-free baseline.
    let mut base_model = fresh_model(6);
    let base = train_robust(
        &mut base_model,
        &ds,
        &windows,
        None,
        &cfg,
        &RobustConfig::default(),
    )
    .unwrap();
    let good_ckpt = std::fs::read({
        // Produce a valid first checkpoint file to be "the previous one".
        let mut m = fresh_model(6);
        let pre = RobustConfig {
            stop_after_steps: Some(2),
            ..rcfg.clone()
        };
        let _ = train_robust(&mut m, &ds, &windows, None, &cfg, &pre);
        &path
    })
    .unwrap();

    // Every subsequent save fails (alternating fault kinds by seed).
    for (fault_seed, site) in [
        (31u64, FaultSite::SaveDiskFull),
        (32, FaultSite::SaveInterrupt),
    ] {
        let _g = install(FaultPlan::new(fault_seed).with(site, 1.0, 0));
        let mut model = fresh_model(6);
        let report = train_robust(&mut model, &ds, &windows, None, &cfg, &rcfg).unwrap();
        assert!(
            report.ckpt_save_failures > 0,
            "{site:?}: save failures must be counted"
        );
        assert_eq!(
            report
                .epoch_losses
                .iter()
                .map(|l| l.to_bits())
                .collect::<Vec<_>>(),
            base.epoch_losses
                .iter()
                .map(|l| l.to_bits())
                .collect::<Vec<_>>(),
            "{site:?}: checkpoint I/O failures must not change the trajectory"
        );
        assert_eq!(
            std::fs::read(&path).unwrap(),
            good_ckpt,
            "{site:?}: previous checkpoint must survive every failed save"
        );
    }
    let _ = std::fs::remove_file(&path);
}

/// The seeded `train-abort` chaos site kills training mid-run; resume
/// from the cadence checkpoint completes and matches the baseline.
#[test]
fn injected_abort_then_resume_matches_baseline() {
    let ds = tiny_ds();
    let windows = ds.windows(2, 1);
    let cfg = fast_cfg(8);
    let path = tmp_ckpt("chaos_abort.stck");
    let _ = std::fs::remove_file(&path);
    let rcfg = RobustConfig {
        ckpt_path: Some(path.clone()),
        ckpt_every_steps: 1,
        ..RobustConfig::default()
    };

    let mut base_model = fresh_model(8);
    let base = train_robust(
        &mut base_model,
        &ds,
        &windows,
        None,
        &cfg,
        &RobustConfig::default(),
    )
    .unwrap();

    let mut model = fresh_model(8);
    {
        let _g = install(FaultPlan::new(77).with(FaultSite::TrainAbort, 0.2, 0));
        // Keep resuming under injected aborts until a run survives; each
        // retry continues from the last checkpoint like a supervisor
        // restarting a crashed job.
        let mut attempts = 0;
        loop {
            attempts += 1;
            assert!(attempts < 200, "chaos loop did not converge");
            match train_resume(&mut model, &ds, &windows, None, &cfg, &rcfg) {
                Ok(report) => {
                    assert_eq!(
                        report
                            .epoch_losses
                            .iter()
                            .map(|l| l.to_bits())
                            .collect::<Vec<_>>(),
                        base.epoch_losses
                            .iter()
                            .map(|l| l.to_bits())
                            .collect::<Vec<_>>(),
                    );
                    break;
                }
                Err(TrainError::Aborted { .. }) => {
                    model = fresh_model(8); // simulate a fresh process
                }
                Err(other) => panic!("unexpected error under abort chaos: {other}"),
            }
        }
    }
    assert_eq!(
        base_model.params().to_bytes(),
        model.params().to_bytes(),
        "post-chaos weights must match the uninterrupted run bitwise"
    );
    let _ = std::fs::remove_file(&path);
}

/// A model wrapper whose training-mode loss turns NaN on every forward,
/// for exercising the non-finite fault policies deterministically.
struct Poisoned {
    inner: BfModel,
    forwards: AtomicU64,
}

impl Poisoned {
    fn new(seed: u64) -> Poisoned {
        Poisoned {
            inner: fresh_model(seed),
            forwards: AtomicU64::new(0),
        }
    }
}

impl OdForecaster for Poisoned {
    fn name(&self) -> &str {
        "poisoned"
    }
    fn params(&self) -> &ParamStore {
        self.inner.params()
    }
    fn params_mut(&mut self) -> &mut ParamStore {
        self.inner.params_mut()
    }
    fn forward(
        &self,
        tape: &mut Tape,
        inputs: &[Tensor],
        horizon: usize,
        mode: Mode,
        rng: &mut Rng64,
    ) -> ModelOutput {
        let mut out = self.inner.forward(tape, inputs, horizon, mode, rng);
        if mode.is_train() {
            self.forwards.fetch_add(1, Ordering::Relaxed);
            let s = tape.sum_all(out.predictions[0]);
            let nan = tape.scale(s, f32::NAN);
            out.regularizer = Some(match out.regularizer {
                Some(r) => tape.add(r, nan),
                None => nan,
            });
        }
        out
    }
}

#[test]
fn halt_policy_stops_on_first_poisoned_batch() {
    let ds = tiny_ds();
    let windows = ds.windows(2, 1);
    let cfg = fast_cfg(1);
    let mut model = Poisoned::new(1);
    match train_robust(
        &mut model,
        &ds,
        &windows,
        None,
        &cfg,
        &RobustConfig::default(),
    ) {
        Err(TrainError::NonFinite {
            epoch: 0,
            minibatch: 0,
        }) => {}
        other => panic!("expected NonFinite at (0, 0), got {other:?}"),
    }
}

#[test]
fn skip_policy_completes_and_counts_every_poisoned_batch() {
    let ds = tiny_ds();
    let windows = ds.windows(2, 1);
    let cfg = fast_cfg(2);
    let rcfg = RobustConfig {
        policy: FaultPolicy::SkipBatch,
        ..RobustConfig::default()
    };
    let mut model = Poisoned::new(2);
    let before = model.params().to_bytes();
    let report = train_robust(&mut model, &ds, &windows, None, &cfg, &rcfg).unwrap();
    let chunks_per_epoch = windows.len().div_ceil(cfg.batch_size) as u64;
    assert_eq!(
        report.nonfinite_batches,
        chunks_per_epoch * cfg.epochs as u64
    );
    assert_eq!(report.steps, 0, "no poisoned batch may reach the optimizer");
    assert_eq!(
        model.params().to_bytes(),
        before,
        "weights must be untouched when every batch is skipped"
    );
    assert_eq!(report.epoch_losses.len(), cfg.epochs);
}

#[test]
fn rollback_policy_gives_up_after_max_rollbacks() {
    let ds = tiny_ds();
    let windows = ds.windows(2, 1);
    let cfg = fast_cfg(3);
    let rcfg = RobustConfig {
        policy: FaultPolicy::RollbackToCheckpoint,
        max_rollbacks: 3,
        ..RobustConfig::default()
    };
    let mut model = Poisoned::new(3);
    match train_robust(&mut model, &ds, &windows, None, &cfg, &rcfg) {
        Err(TrainError::TooManyRollbacks { rollbacks }) => assert_eq!(rollbacks, 4),
        other => panic!("expected TooManyRollbacks, got {other:?}"),
    }
}

/// Windows vector sanity for the suite (catches dataset shrinkage that
/// would silently weaken the kill-grid above).
#[test]
fn suite_has_enough_minibatches() {
    let ds = tiny_ds();
    let windows: Vec<Window> = ds.windows(2, 1);
    assert!(windows.len() >= 8, "only {} windows", windows.len());
}
