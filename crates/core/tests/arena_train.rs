//! Training-level arena properties (ISSUE 8, satellite 2): the workspace
//! arena reuses buffers across minibatches and epochs, so training must
//! be bitwise invariant to whatever the arena holds — including a
//! checkpoint restore that lands mid-sequence on a warm, garbage-filled
//! arena — and its high-water mark must stabilize after the first epoch
//! instead of growing with epoch count.

use stod_core::config::BfConfig;
use stod_core::{
    train, train_resume, train_robust, BfModel, OdForecaster, RobustConfig, TrainConfig,
    TrainError, TrainReport,
};
use stod_tensor::{arena, par};
use stod_traffic::{CityModel, OdDataset, SimConfig};

fn tiny_ds() -> OdDataset {
    let cfg = SimConfig {
        num_days: 2,
        intervals_per_day: 12,
        trips_per_interval: 100.0,
        ..SimConfig::small(7)
    };
    OdDataset::generate(CityModel::small(4), &cfg)
}

fn fresh_model(seed: u64) -> BfModel {
    BfModel::new(4, 7, BfConfig::default(), seed)
}

fn cfg(seed: u64, epochs: usize) -> TrainConfig {
    TrainConfig {
        epochs,
        seed,
        ..TrainConfig::fast_test()
    }
}

fn fingerprint(model: &BfModel, report: &TrainReport) -> (Vec<u8>, Vec<u32>) {
    (
        model.params().to_bytes().to_vec(),
        report.epoch_losses.iter().map(|l| l.to_bits()).collect(),
    )
}

/// Parks NaN-filled buffers in every size class training could reuse, so
/// any kernel reading recycled memory before writing it turns the loss
/// into NaN and the fingerprint comparison fails loudly.
fn poison_arena() {
    for c in 6..20u32 {
        let mut bufs = Vec::new();
        for _ in 0..4 {
            let mut v = arena::alloc_raw(1usize << c);
            v.fill(f32::NAN);
            bufs.push(v);
        }
        for v in bufs {
            arena::recycle(v);
        }
    }
}

/// A full training run started on a NaN-poisoned arena matches a run
/// started on a drained arena bitwise, at 1 and 4 threads.
#[test]
fn training_is_bitwise_invariant_to_arena_state() {
    let ds = tiny_ds();
    let windows = ds.windows(2, 1);
    for &threads in &[1usize, 4] {
        par::with_forced_threads(threads, || {
            arena::drain();
            let mut cold_model = fresh_model(11);
            let cold = train(&mut cold_model, &ds, &windows, None, &cfg(11, 2));
            let cold_fp = fingerprint(&cold_model, &cold);

            poison_arena();
            let mut warm_model = fresh_model(11);
            let warm = train(&mut warm_model, &ds, &windows, None, &cfg(11, 2));
            assert_eq!(
                fingerprint(&warm_model, &warm),
                cold_fp,
                "threads={threads}: arena contents leaked into training"
            );
        });
    }
}

/// Checkpoint-restore mid-sequence on a warm, poisoned arena reproduces
/// the uninterrupted run bitwise: buffer reuse cannot smuggle state from
/// the killed run (or anything else) into the resumed one.
#[test]
fn checkpoint_restore_on_poisoned_arena_is_bitwise() {
    let ds = tiny_ds();
    let windows = ds.windows(2, 1);
    let tcfg = cfg(23, 2);
    let path = std::env::temp_dir().join(format!("stod_arena_ckpt_{}.stck", std::process::id()));
    let _ = std::fs::remove_file(&path);

    par::with_forced_threads(1, || {
        arena::drain();
        let mut base_model = fresh_model(23);
        let base = train_robust(
            &mut base_model,
            &ds,
            &windows,
            None,
            &tcfg,
            &RobustConfig::default(),
        )
        .unwrap();
        let base_fp = fingerprint(&base_model, &base);
        assert!(base.steps >= 4, "need a mid-sequence kill point");

        let rcfg = RobustConfig {
            ckpt_path: Some(path.clone()),
            ckpt_every_steps: 1,
            stop_after_steps: Some(base.steps / 2),
            ..RobustConfig::default()
        };
        let mut killed = fresh_model(23);
        match train_robust(&mut killed, &ds, &windows, None, &tcfg, &rcfg) {
            Err(TrainError::Aborted { .. }) => {}
            other => panic!("expected abort, got {other:?}"),
        }

        // Resume on an arena full of the killed run's recycled buffers
        // plus explicit NaN poison.
        poison_arena();
        let rcfg_resume = RobustConfig {
            stop_after_steps: None,
            ..rcfg
        };
        let mut resumed = fresh_model(23);
        let report = train_resume(&mut resumed, &ds, &windows, None, &tcfg, &rcfg_resume).unwrap();
        assert_eq!(
            fingerprint(&resumed, &report),
            base_fp,
            "restore on a warm arena diverged from the uninterrupted run"
        );
    });
    let _ = std::fs::remove_file(&path);
}

/// The arena's high-water mark is set by the first epoch's working set;
/// training five times as long must not push it meaningfully higher, and
/// steady-state epochs must be served overwhelmingly from reuse.
#[test]
fn arena_high_water_is_stable_across_epochs() {
    let ds = tiny_ds();
    let windows = ds.windows(2, 1);
    par::with_forced_threads(1, || {
        arena::reset_stats();
        let mut m1 = fresh_model(31);
        let _ = train(&mut m1, &ds, &windows, None, &cfg(31, 1));
        let one = arena::stats();
        assert!(one.high_water_bytes > 0, "training never parked a buffer?");

        arena::reset_stats();
        let mut m5 = fresh_model(31);
        let _ = train(&mut m5, &ds, &windows, None, &cfg(31, 5));
        let five = arena::stats();
        assert!(
            five.high_water_bytes <= one.high_water_bytes * 3 / 2,
            "high-water grew with epochs: 1-epoch {} bytes, 5-epoch {} bytes",
            one.high_water_bytes,
            five.high_water_bytes
        );
        assert!(
            five.reuses > five.fresh,
            "steady state must reuse more than it allocates: {} reuses, {} fresh",
            five.reuses,
            five.fresh
        );
        arena::reset_stats();
    });
}
