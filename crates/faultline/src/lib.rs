//! # stod-faultline
//!
//! Seeded, deterministic fault injection plus the crash-consistency
//! primitives the rest of the workspace builds on.
//!
//! The paper's system is a long-running train-then-serve pipeline; to hit
//! the ROADMAP's production-scale north star every failure mode we can
//! inject must degrade gracefully, and we must be able to *replay* a fault
//! schedule from a single seed. Three pieces live here:
//!
//! * **The injector** — named [`FaultSite`]s are compiled into the train,
//!   checkpoint-I/O and serve paths. A [`FaultPlan`] (from the
//!   `STOD_FAULTS=seed:spec` environment variable or installed
//!   programmatically via [`install`]) arms a subset of sites with firing
//!   probabilities. Each evaluation of a site hashes
//!   `(seed, site, evaluation-counter)` — no shared RNG stream, no locks on
//!   the hot path — so a fixed seed yields a reproducible fault schedule
//!   per site. When no plan is armed, [`fire`] is a single relaxed atomic
//!   load returning `None`: zero overhead in production.
//! * **[`crc::crc32`]** — the CRC-32 (IEEE) checksum that footers every
//!   checkpoint byte format in the workspace.
//! * **[`io::atomic_write`]** — write-tmp → fsync → rename persistence with
//!   built-in injection points ([`FaultSite::SaveInterrupt`],
//!   [`FaultSite::SaveDiskFull`]), guaranteeing a failed save never damages
//!   the previously persisted file.
//!
//! ## Spec grammar
//!
//! ```text
//! STOD_FAULTS = <seed> ":" <site> "=" <prob> [ "@" <param> ] ( "," ... )*
//! ```
//!
//! e.g. `STOD_FAULTS=7:worker_panic=0.2,slow_worker=0.1@40` arms worker
//! panics at 20% and 40 ms worker stalls at 10%, both replayable from
//! seed 7. Parameters default to 0 and are site-specific (sleep duration in
//! milliseconds for `slow_worker`, corruption mode for `ckpt_corrupt`).

pub mod crc;
pub mod io;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError, RwLock};

/// A named fault-injection point compiled into the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// Panic inside a serve-broker worker while it holds an in-flight job.
    WorkerPanic,
    /// Stall a serve-broker worker (param: sleep milliseconds) so requests
    /// exercise the deadline-miss fallback.
    SlowWorker,
    /// Corrupt checkpoint bytes between disk read and decode (param picks
    /// the corruption mode, see [`CorruptKind`]).
    CkptCorrupt,
    /// Fail an atomic write mid-stream with `ErrorKind::Interrupted`.
    SaveInterrupt,
    /// Fail an atomic write with a disk-full error.
    SaveDiskFull,
    /// Abort the training loop after the current minibatch, simulating a
    /// hard kill without a final checkpoint flush.
    TrainAbort,
    /// Crash the adaptation pipeline between persisting a promotion
    /// decision durably and applying the in-memory hot-swap, simulating a
    /// process kill at the worst possible instant of a promote.
    PromoteCrash,
    /// Tear a write-ahead-log append: only a prefix of the frame reaches
    /// the segment file, then the "process" dies (the WAL handle goes
    /// dead, refusing further appends), so recovery must truncate the
    /// torn tail.
    WalTornWrite,
    /// Corrupt write-ahead-log bytes between disk read and frame decode
    /// during replay (param picks the corruption mode, see
    /// [`CorruptKind`]), so recovery must stop at the longest valid
    /// prefix instead of decoding garbage.
    WalCorrupt,
    /// Crash one serving shard in place: its in-memory ingest window is
    /// wiped and its circuit breaker force-opened, exercising degraded
    /// serving and WAL-backed self-healing.
    ShardCrash,
}

/// Number of distinct sites; array-indexed state below.
const N_SITES: usize = 10;

/// All sites, for iteration/reporting.
pub const ALL_SITES: [FaultSite; N_SITES] = [
    FaultSite::WorkerPanic,
    FaultSite::SlowWorker,
    FaultSite::CkptCorrupt,
    FaultSite::SaveInterrupt,
    FaultSite::SaveDiskFull,
    FaultSite::TrainAbort,
    FaultSite::PromoteCrash,
    FaultSite::WalTornWrite,
    FaultSite::WalCorrupt,
    FaultSite::ShardCrash,
];

impl FaultSite {
    fn index(self) -> usize {
        match self {
            FaultSite::WorkerPanic => 0,
            FaultSite::SlowWorker => 1,
            FaultSite::CkptCorrupt => 2,
            FaultSite::SaveInterrupt => 3,
            FaultSite::SaveDiskFull => 4,
            FaultSite::TrainAbort => 5,
            FaultSite::PromoteCrash => 6,
            FaultSite::WalTornWrite => 7,
            FaultSite::WalCorrupt => 8,
            FaultSite::ShardCrash => 9,
        }
    }

    /// Spec-grammar name of the site.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::WorkerPanic => "worker_panic",
            FaultSite::SlowWorker => "slow_worker",
            FaultSite::CkptCorrupt => "ckpt_corrupt",
            FaultSite::SaveInterrupt => "save_interrupt",
            FaultSite::SaveDiskFull => "save_disk_full",
            FaultSite::TrainAbort => "train_abort",
            FaultSite::PromoteCrash => "promote_crash",
            FaultSite::WalTornWrite => "wal_torn_write",
            FaultSite::WalCorrupt => "wal_corrupt",
            FaultSite::ShardCrash => "shard_crash",
        }
    }

    fn parse(name: &str) -> Option<FaultSite> {
        ALL_SITES.iter().copied().find(|s| s.name() == name)
    }
}

/// How one armed site fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Firing probability per evaluation, in `[0, 1]`.
    pub prob: f64,
    /// Site-specific parameter (e.g. sleep ms); 0 when omitted.
    pub param: u64,
}

/// A seeded set of armed fault sites.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    specs: [Option<FaultSpec>; N_SITES],
}

impl FaultPlan {
    /// An empty plan (no site armed) under the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            specs: [None; N_SITES],
        }
    }

    /// Arms a site (builder style).
    ///
    /// # Panics
    /// Panics if `prob` is not a probability.
    pub fn with(mut self, site: FaultSite, prob: f64, param: u64) -> FaultPlan {
        assert!(
            (0.0..=1.0).contains(&prob),
            "fault probability must be in [0,1], got {prob}"
        );
        self.specs[site.index()] = Some(FaultSpec { prob, param });
        self
    }

    /// Parses the `seed:site=prob[@param],...` grammar of `STOD_FAULTS`.
    pub fn parse(s: &str) -> Result<FaultPlan, String> {
        let (seed_str, spec_str) = s
            .split_once(':')
            .ok_or_else(|| format!("STOD_FAULTS must look like 'seed:spec', got {s:?}"))?;
        let seed: u64 = seed_str
            .trim()
            .parse()
            .map_err(|_| format!("bad fault seed {seed_str:?}"))?;
        let mut plan = FaultPlan::new(seed);
        for part in spec_str.split(',').filter(|p| !p.trim().is_empty()) {
            let (name, rest) = part
                .split_once('=')
                .ok_or_else(|| format!("bad fault spec {part:?} (want site=prob[@param])"))?;
            let site = FaultSite::parse(name.trim())
                .ok_or_else(|| format!("unknown fault site {:?}", name.trim()))?;
            let (prob_str, param_str) = match rest.split_once('@') {
                Some((p, q)) => (p, Some(q)),
                None => (rest, None),
            };
            let prob: f64 = prob_str
                .trim()
                .parse()
                .map_err(|_| format!("bad fault probability {prob_str:?}"))?;
            if !(0.0..=1.0).contains(&prob) {
                return Err(format!("fault probability {prob} out of [0,1]"));
            }
            let param: u64 = match param_str {
                Some(p) => p
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad fault parameter {p:?}"))?,
                None => 0,
            };
            plan.specs[site.index()] = Some(FaultSpec { prob, param });
        }
        Ok(plan)
    }

    /// The plan's replay seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The armed spec of a site, if any.
    pub fn spec(&self, site: FaultSite) -> Option<FaultSpec> {
        self.specs[site.index()]
    }
}

/// SplitMix64 finalizer: a high-quality 64-bit mix used to turn
/// `(seed, site, counter)` into an i.i.d.-looking uniform draw.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An armed plan plus its evaluation/injection ledgers.
struct Injector {
    plan: FaultPlan,
    /// Evaluations per site (the deterministic per-site sequence number).
    evals: [AtomicU64; N_SITES],
    /// Faults actually injected per site.
    injected: [AtomicU64; N_SITES],
}

impl Injector {
    fn new(plan: FaultPlan) -> Injector {
        Injector {
            plan,
            evals: Default::default(),
            injected: Default::default(),
        }
    }

    /// Evaluates one site; returns the spec parameter when the fault fires.
    fn fire(&self, site: FaultSite) -> Option<u64> {
        let spec = self.plan.specs[site.index()]?;
        let n = self.evals[site.index()].fetch_add(1, Ordering::Relaxed);
        let h = mix64(
            self.plan
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(site.index() as u64)
                .rotate_left(17)
                .wrapping_add(n),
        );
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        if u < spec.prob {
            self.injected[site.index()].fetch_add(1, Ordering::Relaxed);
            Some(spec.param)
        } else {
            None
        }
    }
}

/// Fast-path flag: true iff a scoped or env plan may be armed.
static ARMED: AtomicBool = AtomicBool::new(false);
/// The scoped injector installed by [`install`], if any.
static SCOPED: RwLock<Option<Arc<Injector>>> = RwLock::new(None);
/// Serializes [`install`] callers (chaos tests run one at a time).
static INSTALL_LOCK: Mutex<()> = Mutex::new(());
/// The env-derived injector, parsed once from `STOD_FAULTS`.
static FROM_ENV: OnceLock<Option<Arc<Injector>>> = OnceLock::new();

fn env_injector() -> Option<Arc<Injector>> {
    FROM_ENV
        .get_or_init(|| {
            let raw = std::env::var("STOD_FAULTS").ok()?;
            let plan = FaultPlan::parse(&raw)
                .unwrap_or_else(|e| panic!("invalid STOD_FAULTS {raw:?}: {e}"));
            ARMED.store(true, Ordering::Release);
            Some(Arc::new(Injector::new(plan)))
        })
        .clone()
}

fn current() -> Option<Arc<Injector>> {
    if let Some(inj) = SCOPED
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
    {
        return Some(inj);
    }
    env_injector()
}

/// Evaluates a fault site against the armed plan. Returns the site's spec
/// parameter when the fault fires, `None` otherwise — and always `None`
/// (after one relaxed atomic load) when nothing is armed.
#[inline]
pub fn fire(site: FaultSite) -> Option<u64> {
    if !ARMED.load(Ordering::Relaxed) {
        // A plan may exist only in the environment and not be parsed yet;
        // env_injector sets ARMED. Probe once per process.
        if FROM_ENV.get().is_some() {
            return None;
        }
        return env_injector().and_then(|inj| inj.fire(site));
    }
    current().and_then(|inj| inj.fire(site))
}

/// Faults injected so far at a site (over the currently armed plan).
pub fn injected(site: FaultSite) -> u64 {
    current().map_or(0, |inj| inj.injected[site.index()].load(Ordering::Relaxed))
}

/// How [`corrupt`] mangles a byte buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorruptKind {
    /// Flip one bit at a seed-chosen position.
    BitFlip,
    /// Truncate the buffer to half its length.
    Truncate,
    /// Replace the buffer with nothing.
    Empty,
}

impl CorruptKind {
    fn from_param(param: u64) -> CorruptKind {
        match param % 3 {
            0 => CorruptKind::BitFlip,
            1 => CorruptKind::Truncate,
            _ => CorruptKind::Empty,
        }
    }
}

/// Deterministically corrupts `bytes` in the way `kind` describes, using
/// `salt` to pick the bit position for [`CorruptKind::BitFlip`].
pub fn corrupt(bytes: &mut Vec<u8>, kind: CorruptKind, salt: u64) {
    match kind {
        CorruptKind::BitFlip => {
            if bytes.is_empty() {
                return;
            }
            let pos = (mix64(salt) as usize) % bytes.len();
            let bit = (mix64(salt ^ 0xABCD) % 8) as u8;
            bytes[pos] ^= 1 << bit;
        }
        CorruptKind::Truncate => bytes.truncate(bytes.len() / 2),
        CorruptKind::Empty => bytes.clear(),
    }
}

/// Evaluates `site`; when it fires, corrupts `bytes` (mode chosen by the
/// site's spec parameter) and reports what was done.
pub fn maybe_corrupt(site: FaultSite, bytes: &mut Vec<u8>) -> Option<CorruptKind> {
    let param = fire(site)?;
    let kind = CorruptKind::from_param(param);
    let salt = injected(site).wrapping_add(param);
    corrupt(bytes, kind, salt);
    Some(kind)
}

/// Exclusive handle to a programmatically installed [`FaultPlan`].
///
/// Holding the guard keeps the plan armed; dropping it disarms injection
/// (the `STOD_FAULTS` plan, if any, takes over again). Guards serialize:
/// a second [`install`] blocks until the first guard drops, so concurrent
/// chaos tests cannot interleave their schedules.
pub struct FaultGuard {
    injector: Arc<Injector>,
    _lock: std::sync::MutexGuard<'static, ()>,
}

impl FaultGuard {
    /// Faults injected at a site under this guard's plan.
    pub fn injected(&self, site: FaultSite) -> u64 {
        self.injector.injected[site.index()].load(Ordering::Relaxed)
    }

    /// Times a site was evaluated under this guard's plan.
    pub fn evaluations(&self, site: FaultSite) -> u64 {
        self.injector.evals[site.index()].load(Ordering::Relaxed)
    }

    /// Total faults injected across all sites.
    pub fn total_injected(&self) -> u64 {
        ALL_SITES.iter().map(|&s| self.injected(s)).sum()
    }
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        *SCOPED.write().unwrap_or_else(PoisonError::into_inner) = None;
        // Injection stays armed iff the environment plan exists.
        let env_armed = matches!(FROM_ENV.get(), Some(Some(_)));
        ARMED.store(env_armed, Ordering::Release);
    }
}

/// Arms a fault plan for the lifetime of the returned guard. Used by chaos
/// tests; production arms via `STOD_FAULTS` instead.
pub fn install(plan: FaultPlan) -> FaultGuard {
    let lock = INSTALL_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let injector = Arc::new(Injector::new(plan));
    *SCOPED.write().unwrap_or_else(PoisonError::into_inner) = Some(Arc::clone(&injector));
    ARMED.store(true, Ordering::Release);
    FaultGuard {
        injector,
        _lock: lock,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_injector_never_fires() {
        // No guard installed and (in the test environment) no STOD_FAULTS:
        // every site must stay quiet.
        if std::env::var_os("STOD_FAULTS").is_some() {
            return; // environment-armed run; skip
        }
        for &site in &ALL_SITES {
            assert_eq!(fire(site), None);
        }
    }

    #[test]
    fn spec_parsing_roundtrip() {
        let plan = FaultPlan::parse("7:worker_panic=0.25,slow_worker=0.5@40").unwrap();
        assert_eq!(plan.seed(), 7);
        assert_eq!(
            plan.spec(FaultSite::WorkerPanic),
            Some(FaultSpec {
                prob: 0.25,
                param: 0
            })
        );
        assert_eq!(
            plan.spec(FaultSite::SlowWorker),
            Some(FaultSpec {
                prob: 0.5,
                param: 40
            })
        );
        assert_eq!(plan.spec(FaultSite::CkptCorrupt), None);
    }

    #[test]
    fn spec_parsing_rejects_garbage() {
        assert!(FaultPlan::parse("no-colon").is_err());
        assert!(FaultPlan::parse("x:worker_panic=0.5").is_err());
        assert!(FaultPlan::parse("1:unknown_site=0.5").is_err());
        assert!(FaultPlan::parse("1:worker_panic=1.5").is_err());
        assert!(FaultPlan::parse("1:worker_panic=0.5@zz").is_err());
        assert!(FaultPlan::parse("1:worker_panic").is_err());
    }

    #[test]
    fn firing_pattern_is_deterministic_per_seed() {
        let pattern = |seed: u64| -> Vec<bool> {
            let inj = Injector::new(FaultPlan::new(seed).with(FaultSite::WorkerPanic, 0.3, 0));
            (0..200)
                .map(|_| inj.fire(FaultSite::WorkerPanic).is_some())
                .collect()
        };
        assert_eq!(pattern(11), pattern(11), "same seed, same schedule");
        assert_ne!(pattern(11), pattern(12), "different seed, new schedule");
        let hits = pattern(11).iter().filter(|&&b| b).count();
        assert!(
            (30..=90).contains(&hits),
            "30% of 200 evaluations should fire roughly 60 times, got {hits}"
        );
    }

    #[test]
    fn probability_bounds_are_exact() {
        let never = Injector::new(FaultPlan::new(3).with(FaultSite::SlowWorker, 0.0, 10));
        let always = Injector::new(FaultPlan::new(3).with(FaultSite::SlowWorker, 1.0, 10));
        for _ in 0..100 {
            assert_eq!(never.fire(FaultSite::SlowWorker), None);
            assert_eq!(always.fire(FaultSite::SlowWorker), Some(10));
        }
        assert_eq!(
            always.injected[FaultSite::SlowWorker.index()].load(Ordering::Relaxed),
            100
        );
    }

    #[test]
    fn install_scopes_and_counts() {
        {
            let guard = install(FaultPlan::new(5).with(FaultSite::TrainAbort, 1.0, 0));
            assert_eq!(fire(FaultSite::TrainAbort), Some(0));
            assert_eq!(fire(FaultSite::WorkerPanic), None, "unarmed site");
            assert_eq!(guard.injected(FaultSite::TrainAbort), 1);
            assert_eq!(guard.evaluations(FaultSite::TrainAbort), 1);
            assert_eq!(guard.total_injected(), 1);
        }
        if std::env::var_os("STOD_FAULTS").is_none() {
            assert_eq!(fire(FaultSite::TrainAbort), None, "guard dropped, disarmed");
        }
    }

    #[test]
    fn corruption_modes() {
        let mut b = vec![0u8; 64];
        corrupt(&mut b, CorruptKind::BitFlip, 9);
        assert_eq!(b.len(), 64);
        assert_eq!(
            b.iter().map(|&x| x.count_ones()).sum::<u32>(),
            1,
            "one bit flipped"
        );

        let mut b = vec![1u8; 64];
        corrupt(&mut b, CorruptKind::Truncate, 0);
        assert_eq!(b.len(), 32);

        let mut b = vec![1u8; 64];
        corrupt(&mut b, CorruptKind::Empty, 0);
        assert!(b.is_empty());

        // Bit flips on empty buffers are a no-op, not a panic.
        let mut b = Vec::new();
        corrupt(&mut b, CorruptKind::BitFlip, 1);
        assert!(b.is_empty());
    }

    #[test]
    fn maybe_corrupt_respects_plan() {
        let _guard = install(FaultPlan::new(1).with(FaultSite::CkptCorrupt, 1.0, 0));
        let mut bytes = vec![0u8; 16];
        let kind = maybe_corrupt(FaultSite::CkptCorrupt, &mut bytes);
        assert_eq!(kind, Some(CorruptKind::BitFlip));
        assert_eq!(bytes.iter().map(|&x| x.count_ones()).sum::<u32>(), 1);
    }
}
