//! Crash-consistent file persistence: write-tmp → fsync → atomic rename.
//!
//! Every checkpoint writer in the workspace goes through [`atomic_write`],
//! which guarantees the *previous* file contents survive any failure — a
//! crash, a full disk, an interrupted syscall — because the target path is
//! only ever replaced by a single `rename(2)` of a fully-written,
//! fsync'd temporary. The [`FaultSite::SaveInterrupt`] and
//! [`FaultSite::SaveDiskFull`] injection points live here so chaos tests
//! can prove that guarantee byte-for-byte.

use crate::{fire, FaultSite};
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// The temporary sibling a pending write lands in before the rename.
fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Atomically replaces `path` with `bytes`.
///
/// The write sequence is: create `path.tmp` (truncating any stale one),
/// write all bytes, `fsync`, `rename(path.tmp, path)`, then best-effort
/// `fsync` of the parent directory so the rename itself is durable. On any
/// error — real or injected — the temporary is removed (best-effort) and
/// the previous contents of `path`, if any, are untouched.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let _span = stod_obs::span!("io/atomic_write");
    let tmp = tmp_path(path);
    let result = write_tmp(&tmp, bytes).and_then(|()| std::fs::rename(&tmp, path));
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
        return result;
    }
    // Durability of the rename: fsync the parent directory. Failure to do
    // so weakens durability, not atomicity, so it is best-effort.
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

fn write_tmp(tmp: &Path, bytes: &[u8]) -> io::Result<()> {
    if fire(FaultSite::SaveDiskFull).is_some() {
        // Simulate ENOSPC discovered at open/first-write time.
        return Err(io::Error::other("faultline: injected disk full"));
    }
    let mut f = OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(true)
        .open(tmp)?;
    if fire(FaultSite::SaveInterrupt).is_some() {
        // Simulate a kill mid-write: half the payload lands in the tmp
        // file, then the "process" dies with EINTR. The target is never
        // touched because the rename never runs.
        let _ = f.write_all(&bytes[..bytes.len() / 2]);
        return Err(io::Error::new(
            io::ErrorKind::Interrupted,
            "faultline: injected interrupted save",
        ));
    }
    f.write_all(bytes)?;
    f.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{install, FaultPlan};

    fn tmp_dir() -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "stod_faultline_io_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn writes_and_replaces() {
        let path = tmp_dir().join("a.bin");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer payload").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer payload");
        assert!(!tmp_path(&path).exists(), "tmp file must not linger");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn injected_interrupt_leaves_previous_file_intact() {
        let path = tmp_dir().join("b.bin");
        atomic_write(&path, b"durable").unwrap();
        {
            let _guard = install(FaultPlan::new(1).with(FaultSite::SaveInterrupt, 1.0, 0));
            let err = atomic_write(&path, b"never lands").unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        }
        assert_eq!(std::fs::read(&path).unwrap(), b"durable");
        assert!(!tmp_path(&path).exists(), "partial tmp must be cleaned up");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn injected_disk_full_leaves_previous_file_intact() {
        let path = tmp_dir().join("c.bin");
        atomic_write(&path, b"durable").unwrap();
        {
            let _guard = install(FaultPlan::new(2).with(FaultSite::SaveDiskFull, 1.0, 0));
            let err = atomic_write(&path, b"never lands").unwrap_err();
            assert!(err.to_string().contains("disk full"));
        }
        assert_eq!(std::fs::read(&path).unwrap(), b"durable");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn failed_first_write_leaves_no_file() {
        let path = tmp_dir().join("d.bin");
        {
            let _guard = install(FaultPlan::new(3).with(FaultSite::SaveInterrupt, 1.0, 0));
            assert!(atomic_write(&path, b"nope").is_err());
        }
        assert!(!path.exists());
        assert!(!tmp_path(&path).exists());
    }
}
