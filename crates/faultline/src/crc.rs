//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the checksum
//! footer every checkpoint byte format in the workspace appends, so a
//! bit-flip or truncation on disk is detected before any payload is
//! interpreted.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Byte-at-a-time lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of a byte slice (IEEE; matches zlib's `crc32`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The CRC-32 "check" value from the catalogue of parametrized CRCs.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let mut data = vec![0u8; 257];
        data.iter_mut().enumerate().for_each(|(i, b)| *b = i as u8);
        let clean = crc32(&data);
        for pos in [0usize, 1, 128, 256] {
            for bit in 0..8 {
                let mut bad = data.clone();
                bad[pos] ^= 1 << bit;
                assert_ne!(crc32(&bad), clean, "flip at {pos}:{bit} undetected");
            }
        }
    }

    #[test]
    fn detects_truncation() {
        let data: Vec<u8> = (0..100).collect();
        let clean = crc32(&data);
        assert_ne!(crc32(&data[..50]), clean);
        assert_ne!(crc32(&[]), clean);
    }
}
