//! # stod-metrics
//!
//! The paper's evaluation metrics (§VI-A.4): Kullback–Leibler divergence,
//! Jensen–Shannon divergence and the earth mover's distance between
//! forecast and ground-truth speed histograms, the `DisSim` aggregation
//! over non-empty cells, and grouped aggregation (by time of day, by OD
//! distance) for the per-figure analyses.

pub mod divergence;
pub mod emd;
pub mod groups;
pub mod shadow;

pub use divergence::{js_divergence, kl_divergence, KL_DELTA};
pub use emd::emd;
pub use groups::GroupedMean;
pub use shadow::{ShadowDecision, ShadowReport, ShadowScore};

/// The three dissimilarity functions of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metric {
    /// Kullback–Leibler divergence (Eq. 13).
    Kl,
    /// Jensen–Shannon divergence (Eq. 14).
    Js,
    /// Earth mover's distance (Eq. 15).
    Emd,
}

impl Metric {
    /// All three metrics, in the order the paper's tables report them.
    pub const ALL: [Metric; 3] = [Metric::Kl, Metric::Js, Metric::Emd];

    /// Short display name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Metric::Kl => "KL",
            Metric::Js => "JS",
            Metric::Emd => "EMD",
        }
    }

    /// Evaluates the metric between a ground-truth histogram `m` and a
    /// forecast histogram `m_hat`.
    pub fn eval(&self, m: &[f32], m_hat: &[f32]) -> f64 {
        match self {
            Metric::Kl => kl_divergence(m, m_hat),
            Metric::Js => js_divergence(m, m_hat),
            Metric::Emd => emd(m, m_hat),
        }
    }
}

/// Accumulates a masked mean of a metric over forecast cells — the
/// `DisSim` of Eq. 12, normalized by the number of observed cells so that
/// values are comparable across configurations.
#[derive(Debug, Default, Clone)]
pub struct DisSim {
    sum: f64,
    count: usize,
}

impl DisSim {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        DisSim::default()
    }

    /// Adds one observed cell's metric value.
    pub fn add(&mut self, value: f64) {
        self.sum += value;
        self.count += 1;
    }

    /// Adds a cell if `observed`, computing the metric lazily.
    pub fn add_cell(&mut self, observed: bool, metric: Metric, m: &[f32], m_hat: &[f32]) {
        if observed {
            self.add(metric.eval(m, m_hat));
        }
    }

    /// Number of cells accumulated.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Mean metric value; `NaN` when nothing was observed.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &DisSim) {
        self.sum += other.sum;
        self.count += other.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dissim_masked_mean() {
        let mut d = DisSim::new();
        let a = [1.0f32, 0.0];
        let b = [0.5f32, 0.5];
        d.add_cell(true, Metric::Emd, &a, &b);
        d.add_cell(false, Metric::Emd, &a, &b); // masked out
        d.add_cell(true, Metric::Emd, &a, &a);
        assert_eq!(d.count(), 2);
        assert!((d.mean() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn dissim_empty_is_nan() {
        assert!(DisSim::new().mean().is_nan());
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = DisSim::new();
        a.add(1.0);
        let mut b = DisSim::new();
        b.add(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn metric_names() {
        assert_eq!(Metric::Kl.name(), "KL");
        assert_eq!(Metric::Js.name(), "JS");
        assert_eq!(Metric::Emd.name(), "EMD");
    }
}
