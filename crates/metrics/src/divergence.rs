//! KL and JS divergences between speed histograms (Eqs. 13–14).

/// The paper's smoothing constant δ added inside the logarithm "to prevent
/// having a zero when using the log function" (δ = 0.001 in §VI-A.4).
pub const KL_DELTA: f64 = 0.001;

/// Kullback–Leibler divergence with the paper's δ-smoothing:
///
/// ```text
/// KL(m, m̂) = Σ_k m̂_k · log((m̂_k + δ) / (m_k + δ))
/// ```
///
/// Note the paper's Eq. 13 places the *forecast* in front of the log; we
/// follow it verbatim for fidelity.
///
/// # Panics
/// Panics if the histograms have different lengths.
pub fn kl_divergence(m: &[f32], m_hat: &[f32]) -> f64 {
    assert_eq!(m.len(), m_hat.len(), "histogram length mismatch");
    let mut s = 0.0f64;
    for (&mk, &hk) in m.iter().zip(m_hat.iter()) {
        let hk = hk as f64;
        let mk = mk as f64;
        s += hk * ((hk + KL_DELTA) / (mk + KL_DELTA)).ln();
    }
    s
}

/// Jensen–Shannon divergence (Eq. 14): the symmetrized, bounded KL against
/// the midpoint distribution `m̄ = (m + m̂) / 2`.
pub fn js_divergence(m: &[f32], m_hat: &[f32]) -> f64 {
    assert_eq!(m.len(), m_hat.len(), "histogram length mismatch");
    let mid: Vec<f32> = m
        .iter()
        .zip(m_hat.iter())
        .map(|(&a, &b)| 0.5 * (a + b))
        .collect();
    0.5 * (kl_divergence(&mid, m) + kl_divergence(&mid, m_hat))
}

#[cfg(test)]
mod tests {
    use super::*;

    const UNIFORM4: [f32; 4] = [0.25; 4];
    const POINT4: [f32; 4] = [1.0, 0.0, 0.0, 0.0];

    #[test]
    fn kl_identity_is_zero() {
        assert!(kl_divergence(&UNIFORM4, &UNIFORM4).abs() < 1e-12);
        assert!(kl_divergence(&POINT4, &POINT4).abs() < 1e-12);
    }

    #[test]
    fn kl_positive_for_different_distributions() {
        assert!(kl_divergence(&UNIFORM4, &POINT4) > 0.0);
    }

    #[test]
    fn kl_handles_zeros_via_delta() {
        let v = kl_divergence(&POINT4, &[0.0, 1.0, 0.0, 0.0]);
        assert!(v.is_finite() && v > 0.0);
    }

    #[test]
    fn js_symmetric() {
        let a = [0.7f32, 0.2, 0.1];
        let b = [0.1f32, 0.3, 0.6];
        let ab = js_divergence(&a, &b);
        let ba = js_divergence(&b, &a);
        assert!((ab - ba).abs() < 1e-12);
        assert!(ab > 0.0);
    }

    #[test]
    fn js_identity_is_zero() {
        let a = [0.5f32, 0.25, 0.25];
        assert!(js_divergence(&a, &a).abs() < 1e-12);
    }

    #[test]
    fn js_bounded_by_ln2() {
        // JS between maximally different distributions is ≤ ln 2.
        let a = [1.0f32, 0.0];
        let b = [0.0f32, 1.0];
        let v = js_divergence(&a, &b);
        assert!(v <= std::f64::consts::LN_2 + 1e-6, "JS = {v}");
    }

    #[test]
    fn closer_distribution_has_smaller_divergence() {
        let truth = [0.6f32, 0.3, 0.1];
        let close = [0.55f32, 0.35, 0.10];
        let far = [0.1f32, 0.2, 0.7];
        assert!(kl_divergence(&truth, &close) < kl_divergence(&truth, &far));
        assert!(js_divergence(&truth, &close) < js_divergence(&truth, &far));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        kl_divergence(&[0.5, 0.5], &[1.0]);
    }
}
