//! Grouped metric aggregation for the per-figure analyses: accuracy per
//! 3-hour time-of-day bin (Figures 8–10) and per OD-distance group
//! (Figures 11–13).

use crate::DisSim;

/// A set of labelled [`DisSim`] accumulators, one per group.
#[derive(Debug, Clone)]
pub struct GroupedMean {
    labels: Vec<String>,
    groups: Vec<DisSim>,
}

impl GroupedMean {
    /// Creates accumulators for the given group labels.
    pub fn new(labels: Vec<String>) -> Self {
        let groups = vec![DisSim::new(); labels.len()];
        GroupedMean { labels, groups }
    }

    /// The paper's eight 3-hour time-of-day bins (`[0,3)…[21,24)`).
    pub fn time_of_day_bins() -> Self {
        GroupedMean::new(
            (0..8)
                .map(|b| format!("{:02}:00-{:02}:00", 3 * b, 3 * b + 3))
                .collect(),
        )
    }

    /// The paper's six OD-distance groups, 0.5 km wide, up to 3 km
    /// (Figures 11–13 discard pairs above 3 km: < 1 % of the data).
    pub fn distance_bins() -> Self {
        GroupedMean::new(
            (0..6)
                .map(|b| format!("[{:.1},{:.1}) km", 0.5 * b as f64, 0.5 * (b + 1) as f64))
                .collect(),
        )
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when there are no groups.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Adds a value to group `idx`; out-of-range indices are dropped
    /// (mirrors the paper excluding >3 km pairs).
    pub fn add(&mut self, idx: usize, value: f64) {
        if let Some(g) = self.groups.get_mut(idx) {
            g.add(value);
        }
    }

    /// Group index for an interval-of-day (0-based interval id, given
    /// `intervals_per_day`) under 3-hour binning.
    pub fn time_bin(interval_of_day: usize, intervals_per_day: usize) -> usize {
        let per_bin = intervals_per_day / 8;
        (interval_of_day / per_bin.max(1)).min(7)
    }

    /// Group index for an OD distance in km under 0.5 km binning; `None`
    /// for distances ≥ 3 km.
    pub fn distance_bin(dist_km: f64) -> Option<usize> {
        if !(0.0..3.0).contains(&dist_km) {
            return None;
        }
        Some((dist_km / 0.5) as usize)
    }

    /// Iterates `(label, mean, count)` rows.
    pub fn rows(&self) -> impl Iterator<Item = (&str, f64, usize)> {
        self.labels
            .iter()
            .zip(self.groups.iter())
            .map(|(l, g)| (l.as_str(), g.mean(), g.count()))
    }

    /// Share of all accumulated cells that fell into each group (the bar
    /// series of Figures 8–10).
    pub fn data_share(&self) -> Vec<f64> {
        let total: usize = self.groups.iter().map(DisSim::count).sum();
        self.groups
            .iter()
            .map(|g| {
                if total == 0 {
                    0.0
                } else {
                    g.count() as f64 / total as f64
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_bins_cover_day() {
        // 96 15-minute intervals → 12 per 3-hour bin.
        assert_eq!(GroupedMean::time_bin(0, 96), 0);
        assert_eq!(GroupedMean::time_bin(11, 96), 0);
        assert_eq!(GroupedMean::time_bin(12, 96), 1);
        assert_eq!(GroupedMean::time_bin(95, 96), 7);
    }

    #[test]
    fn distance_bins_match_paper_groups() {
        assert_eq!(GroupedMean::distance_bin(0.1), Some(0));
        assert_eq!(GroupedMean::distance_bin(0.5), Some(1));
        assert_eq!(GroupedMean::distance_bin(2.9), Some(5));
        assert_eq!(GroupedMean::distance_bin(3.0), None);
        assert_eq!(GroupedMean::distance_bin(12.0), None);
        assert_eq!(GroupedMean::distance_bin(-1.0), None);
    }

    #[test]
    fn grouped_means_independent() {
        let mut g = GroupedMean::time_of_day_bins();
        g.add(0, 1.0);
        g.add(0, 3.0);
        g.add(7, 10.0);
        let rows: Vec<_> = g.rows().collect();
        assert_eq!(rows.len(), 8);
        assert!((rows[0].1 - 2.0).abs() < 1e-9);
        assert_eq!(rows[0].2, 2);
        assert!((rows[7].1 - 10.0).abs() < 1e-9);
        assert!(rows[1].1.is_nan());
    }

    #[test]
    fn data_share_sums_to_one() {
        let mut g = GroupedMean::distance_bins();
        g.add(0, 1.0);
        g.add(1, 1.0);
        g.add(1, 1.0);
        g.add(9, 1.0); // dropped (out of range)
        let share = g.data_share();
        assert!((share.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((share[1] - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn labels_format() {
        let g = GroupedMean::time_of_day_bins();
        assert_eq!(g.rows().next().unwrap().0, "00:00-03:00");
        let d = GroupedMean::distance_bins();
        assert_eq!(d.rows().next().unwrap().0, "[0.0,0.5) km");
    }
}
