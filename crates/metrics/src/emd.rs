//! Earth mover's distance between histograms on a shared 1-D support
//! (Eq. 15).
//!
//! For histograms over the *same ordered buckets* with ground distance
//! `d_ij = |i − j|`, the optimal transport plan has the closed form
//! `EMD(m, m̂) = Σ_k |CDF_m(k) − CDF_m̂(k)|` — the optimal flow `F` moves
//! mass only between adjacent buckets along the cumulative difference. A
//! general transport solver is unnecessary (and this form *is* the minimum
//! of Eq. 15's `Σ F_ij d_ij`).
//!
//! Histograms with different total mass are compared after normalization
//! by their *actual* sums (no epsilon floor — a floor silently squashes
//! tiny-but-real mass, e.g. a `1e-13` histogram, to nothing). Degenerate
//! cases have explicit conventions: two all-zero histograms are 0 apart;
//! exactly one all-zero histogram is at the grid diameter `K − 1` (the
//! worst possible transport, and symmetric in the arguments); non-finite
//! inputs yield NaN rather than an arbitrary finite distance.

/// Earth mover's distance between two histograms on the same bucket grid,
/// with unit spacing between adjacent buckets.
///
/// ```
/// use stod_metrics::emd;
///
/// // Moving all mass one bucket over costs exactly 1.
/// assert_eq!(emd(&[1.0, 0.0], &[0.0, 1.0]), 1.0);
/// assert_eq!(emd(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
/// ```
///
/// # Panics
/// Panics if the lengths differ.
pub fn emd(m: &[f32], m_hat: &[f32]) -> f64 {
    assert_eq!(m.len(), m_hat.len(), "histogram length mismatch");
    let sum_m: f64 = m.iter().map(|&x| x as f64).sum();
    let sum_h: f64 = m_hat.iter().map(|&x| x as f64).sum();
    if !sum_m.is_finite() || !sum_h.is_finite() {
        return f64::NAN;
    }
    let (nm, nh) = match (sum_m > 0.0, sum_h > 0.0) {
        (false, false) => return 0.0,
        // One side has no mass: every comparison against it is equally
        // uninformative, so report the grid diameter — symmetric, unlike
        // dividing one side by an epsilon floor.
        (true, false) | (false, true) => return (m.len() - 1) as f64,
        (true, true) => (sum_m, sum_h),
    };
    let mut cum = 0.0f64;
    let mut total = 0.0f64;
    // The last CDF difference is 0 by construction; iterating over all
    // buckets but accumulating before the final element is equivalent.
    for k in 0..m.len() - 1 {
        cum += m[k] as f64 / nm - m_hat[k] as f64 / nh;
        total += cum.abs();
    }
    total
}

/// Reference EMD via explicit greedy transport between adjacent buckets —
/// kept for cross-validation in tests (O(K) like the CDF form, but written
/// as actual mass movement).
pub fn emd_reference(m: &[f32], m_hat: &[f32]) -> f64 {
    assert_eq!(m.len(), m_hat.len(), "histogram length mismatch");
    let sum_m: f64 = m.iter().map(|&x| x as f64).sum();
    let sum_h: f64 = m_hat.iter().map(|&x| x as f64).sum();
    if !sum_m.is_finite() || !sum_h.is_finite() {
        return f64::NAN;
    }
    let (nm, nh) = match (sum_m > 0.0, sum_h > 0.0) {
        (false, false) => return 0.0,
        (true, false) | (false, true) => return (m.len() - 1) as f64,
        (true, true) => (sum_m, sum_h),
    };
    let mut carry = 0.0f64; // mass owed to (positive) or by (negative) the next bucket
    let mut cost = 0.0f64;
    for k in 0..m.len() {
        let net = m[k] as f64 / nm - m_hat[k] as f64 / nh + carry;
        // Everything unmatched at bucket k must travel at least to k+1.
        cost += net.abs();
        carry = net;
    }
    // The last bucket's residual is zero for normalized inputs; subtract
    // the spurious final step.
    cost - carry.abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_zero() {
        let a = [0.2f32, 0.5, 0.3];
        assert_eq!(emd(&a, &a), 0.0);
    }

    #[test]
    fn adjacent_bucket_move_costs_its_mass() {
        // Move 1.0 of mass one bucket over → EMD = 1.
        let a = [1.0f32, 0.0];
        let b = [0.0f32, 1.0];
        assert!((emd(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn distance_scales_with_bucket_gap() {
        let a = [1.0f32, 0.0, 0.0, 0.0];
        let near = [0.0f32, 1.0, 0.0, 0.0];
        let far = [0.0f32, 0.0, 0.0, 1.0];
        assert!((emd(&a, &near) - 1.0).abs() < 1e-9);
        assert!((emd(&a, &far) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn symmetric() {
        let a = [0.6f32, 0.1, 0.3];
        let b = [0.2f32, 0.5, 0.3];
        assert!((emd(&a, &b) - emd(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn partial_move() {
        // Half the mass moves one bucket → EMD = 0.5.
        let a = [1.0f32, 0.0];
        let b = [0.5f32, 0.5];
        assert!((emd(&a, &b) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn unnormalized_inputs_are_normalized() {
        let a = [2.0f32, 0.0];
        let b = [0.0f32, 4.0];
        assert!((emd(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn both_empty_is_zero() {
        assert_eq!(emd(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn all_mass_in_one_bucket_degenerate() {
        // Point masses at the two ends of the grid: distance = diameter.
        let first = [1.0f32, 0.0, 0.0, 0.0];
        let last = [0.0f32, 0.0, 0.0, 1.0];
        assert_eq!(emd(&first, &last), 3.0);
        // A point mass against itself is exactly 0, even unnormalized.
        let spike = [0.0f32, 7.5, 0.0];
        assert_eq!(emd(&spike, &spike), 0.0);
    }

    #[test]
    fn one_empty_side_is_grid_diameter_and_symmetric() {
        // The old epsilon-floor normalization made this asymmetric
        // (0 one way, ~1 the other). Both directions must agree now.
        let empty = [0.0f32, 0.0, 0.0];
        let mass = [0.0f32, 1.0, 0.0];
        assert_eq!(emd(&mass, &empty), 2.0);
        assert_eq!(emd(&empty, &mass), 2.0);
        assert_eq!(emd_reference(&mass, &empty), 2.0);
        assert_eq!(emd_reference(&empty, &mass), 2.0);
    }

    #[test]
    fn tiny_total_mass_is_normalized_not_squashed() {
        // With the 1e-12 floor, 1e-13 of mass normalized to ~0.1 and the
        // distance collapsed; real normalization must treat the shape of
        // the mass, not its scale.
        let a = [1e-13f32, 0.0];
        let b = [0.0f32, 1e-13];
        assert!((emd(&a, &b) - 1.0).abs() < 1e-6, "got {}", emd(&a, &b));
        assert_eq!(emd(&a, &a), 0.0);
    }

    #[test]
    fn non_finite_inputs_propagate_nan() {
        assert!(emd(&[f32::NAN, 1.0], &[0.5, 0.5]).is_nan());
        assert!(emd(&[0.5, 0.5], &[f32::INFINITY, 0.0]).is_nan());
        assert!(emd_reference(&[f32::NAN, 1.0], &[0.5, 0.5]).is_nan());
    }

    #[test]
    fn matches_reference_transport() {
        let cases: [(&[f32], &[f32]); 4] = [
            (&[0.5, 0.5, 0.0], &[0.0, 0.5, 0.5]),
            (&[0.1, 0.2, 0.3, 0.4], &[0.4, 0.3, 0.2, 0.1]),
            (&[1.0, 0.0, 0.0], &[0.0, 0.0, 1.0]),
            (&[0.25, 0.25, 0.25, 0.25], &[0.25, 0.25, 0.25, 0.25]),
        ];
        for (a, b) in cases {
            assert!(
                (emd(a, b) - emd_reference(a, b)).abs() < 1e-9,
                "mismatch for {a:?} vs {b:?}"
            );
        }
    }
}
