//! Earth mover's distance between histograms on a shared 1-D support
//! (Eq. 15).
//!
//! For histograms over the *same ordered buckets* with ground distance
//! `d_ij = |i − j|`, the optimal transport plan has the closed form
//! `EMD(m, m̂) = Σ_k |CDF_m(k) − CDF_m̂(k)|` — the optimal flow `F` moves
//! mass only between adjacent buckets along the cumulative difference. A
//! general transport solver is unnecessary (and this form *is* the minimum
//! of Eq. 15's `Σ F_ij d_ij`).
//!
//! Histograms with different total mass are compared after normalization;
//! two all-zero histograms have distance 0.

/// Earth mover's distance between two histograms on the same bucket grid,
/// with unit spacing between adjacent buckets.
///
/// ```
/// use stod_metrics::emd;
///
/// // Moving all mass one bucket over costs exactly 1.
/// assert_eq!(emd(&[1.0, 0.0], &[0.0, 1.0]), 1.0);
/// assert_eq!(emd(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
/// ```
///
/// # Panics
/// Panics if the lengths differ.
pub fn emd(m: &[f32], m_hat: &[f32]) -> f64 {
    assert_eq!(m.len(), m_hat.len(), "histogram length mismatch");
    let sum_m: f64 = m.iter().map(|&x| x as f64).sum();
    let sum_h: f64 = m_hat.iter().map(|&x| x as f64).sum();
    let (nm, nh) = (sum_m.max(1e-12), sum_h.max(1e-12));
    if sum_m <= 0.0 && sum_h <= 0.0 {
        return 0.0;
    }
    let mut cum = 0.0f64;
    let mut total = 0.0f64;
    // The last CDF difference is 0 by construction; iterating over all
    // buckets but accumulating before the final element is equivalent.
    for k in 0..m.len() - 1 {
        cum += m[k] as f64 / nm - m_hat[k] as f64 / nh;
        total += cum.abs();
    }
    total
}

/// Reference EMD via explicit greedy transport between adjacent buckets —
/// kept for cross-validation in tests (O(K) like the CDF form, but written
/// as actual mass movement).
pub fn emd_reference(m: &[f32], m_hat: &[f32]) -> f64 {
    assert_eq!(m.len(), m_hat.len(), "histogram length mismatch");
    let sum_m: f64 = m.iter().map(|&x| x as f64).sum();
    let sum_h: f64 = m_hat.iter().map(|&x| x as f64).sum();
    if sum_m <= 0.0 && sum_h <= 0.0 {
        return 0.0;
    }
    let (nm, nh) = (sum_m.max(1e-12), sum_h.max(1e-12));
    let mut carry = 0.0f64; // mass owed to (positive) or by (negative) the next bucket
    let mut cost = 0.0f64;
    for k in 0..m.len() {
        let net = m[k] as f64 / nm - m_hat[k] as f64 / nh + carry;
        // Everything unmatched at bucket k must travel at least to k+1.
        cost += net.abs();
        carry = net;
    }
    // The last bucket's residual is zero for normalized inputs; subtract
    // the spurious final step.
    cost - carry.abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_zero() {
        let a = [0.2f32, 0.5, 0.3];
        assert_eq!(emd(&a, &a), 0.0);
    }

    #[test]
    fn adjacent_bucket_move_costs_its_mass() {
        // Move 1.0 of mass one bucket over → EMD = 1.
        let a = [1.0f32, 0.0];
        let b = [0.0f32, 1.0];
        assert!((emd(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn distance_scales_with_bucket_gap() {
        let a = [1.0f32, 0.0, 0.0, 0.0];
        let near = [0.0f32, 1.0, 0.0, 0.0];
        let far = [0.0f32, 0.0, 0.0, 1.0];
        assert!((emd(&a, &near) - 1.0).abs() < 1e-9);
        assert!((emd(&a, &far) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn symmetric() {
        let a = [0.6f32, 0.1, 0.3];
        let b = [0.2f32, 0.5, 0.3];
        assert!((emd(&a, &b) - emd(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn partial_move() {
        // Half the mass moves one bucket → EMD = 0.5.
        let a = [1.0f32, 0.0];
        let b = [0.5f32, 0.5];
        assert!((emd(&a, &b) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn unnormalized_inputs_are_normalized() {
        let a = [2.0f32, 0.0];
        let b = [0.0f32, 4.0];
        assert!((emd(&a, &b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn both_empty_is_zero() {
        assert_eq!(emd(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn matches_reference_transport() {
        let cases: [(&[f32], &[f32]); 4] = [
            (&[0.5, 0.5, 0.0], &[0.0, 0.5, 0.5]),
            (&[0.1, 0.2, 0.3, 0.4], &[0.4, 0.3, 0.2, 0.1]),
            (&[1.0, 0.0, 0.0], &[0.0, 0.0, 1.0]),
            (&[0.25, 0.25, 0.25, 0.25], &[0.25, 0.25, 0.25, 0.25]),
        ];
        for (a, b) in cases {
            assert!(
                (emd(a, b) - emd_reference(a, b)).abs() < 1e-9,
                "mismatch for {a:?} vs {b:?}"
            );
        }
    }
}
