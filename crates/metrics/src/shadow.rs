//! Shadow-evaluation report: candidate vs. incumbent vs. online corrector
//! on held-out recent intervals, and the promotion decision derived from
//! it.
//!
//! The continual-adaptation pipeline fine-tunes a candidate from the live
//! incumbent's weights, then scores all three contenders on the *same*
//! held-out cells (observed `(o, d)` pairs of the shadow intervals) with
//! the paper's EMD/JS metrics before touching the serving registry. The
//! decision rule is conservative by construction: a promotion needs the
//! candidate to beat the incumbent by a relative margin *and* to beat the
//! cheap always-on corrector outright — a fine-tune that cannot beat a
//! Kalman-corrected historical average is not worth a hot-swap.

/// One contender's masked-mean scores over the shadow cells.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShadowScore {
    /// Mean earth mover's distance (the decision metric).
    pub emd: f64,
    /// Mean Jensen–Shannon divergence (reported, not decided on).
    pub js: f64,
    /// Observed cells scored.
    pub cells: usize,
}

impl ShadowScore {
    /// A score over zero cells (NaN means, count 0).
    pub fn empty() -> ShadowScore {
        ShadowScore {
            emd: f64::NAN,
            js: f64::NAN,
            cells: 0,
        }
    }
}

/// What the shadow evaluation concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShadowDecision {
    /// The candidate beat the incumbent by the margin and the corrector
    /// outright: promote it.
    Promote,
    /// The candidate did not clear the bar: keep the incumbent.
    Hold,
    /// Nothing was scored (no observed cells in the shadow slice): keep
    /// the incumbent — never promote on no evidence.
    NoEvidence,
}

/// The full shadow-evaluation report for one adaptation cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct ShadowReport {
    /// Fine-tuned candidate.
    pub candidate: ShadowScore,
    /// Currently serving model.
    pub incumbent: ShadowScore,
    /// Always-on online corrector baseline.
    pub corrector: ShadowScore,
    /// Shadow intervals scored.
    pub intervals: usize,
    /// Relative improvement margin the candidate must clear against the
    /// incumbent (e.g. `0.02` = 2 % lower EMD).
    pub margin: f64,
}

impl ShadowReport {
    /// Applies the promotion rule: candidate EMD strictly below
    /// `incumbent · (1 − margin)` *and* strictly below the corrector's.
    /// Any NaN (unscored contender) yields [`ShadowDecision::NoEvidence`].
    pub fn decision(&self) -> ShadowDecision {
        let (c, i, k) = (self.candidate.emd, self.incumbent.emd, self.corrector.emd);
        if !c.is_finite() || !i.is_finite() || !k.is_finite() {
            return ShadowDecision::NoEvidence;
        }
        if c < i * (1.0 - self.margin) && c < k {
            ShadowDecision::Promote
        } else {
            ShadowDecision::Hold
        }
    }

    /// Whether the candidate regressed past the margin against the
    /// incumbent — the rollback trigger on the post-promotion confirm
    /// slice (NaNs count as regression: a promoted model that cannot be
    /// confirmed must not stay promoted).
    pub fn regressed(&self) -> bool {
        let (c, i) = (self.candidate.emd, self.incumbent.emd);
        if !c.is_finite() || !i.is_finite() {
            return true;
        }
        c > i * (1.0 + self.margin)
    }

    /// Compact single-line JSON (hand-built like the bench artifacts; no
    /// serializer dependency).
    pub fn to_json(&self) -> String {
        let f = |x: f64| {
            if x.is_finite() {
                format!("{x:.6}")
            } else {
                "null".into()
            }
        };
        format!(
            concat!(
                "{{\"candidate_emd\":{},\"incumbent_emd\":{},\"corrector_emd\":{},",
                "\"candidate_js\":{},\"incumbent_js\":{},\"corrector_js\":{},",
                "\"cells\":{},\"intervals\":{},\"margin\":{},\"decision\":\"{:?}\"}}"
            ),
            f(self.candidate.emd),
            f(self.incumbent.emd),
            f(self.corrector.emd),
            f(self.candidate.js),
            f(self.incumbent.js),
            f(self.corrector.js),
            self.candidate.cells,
            self.intervals,
            self.margin,
            self.decision(),
        )
    }
}

impl std::fmt::Display for ShadowReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shadow[{} intervals, {} cells]: candidate EMD {:.4} vs incumbent {:.4} vs corrector {:.4} → {:?}",
            self.intervals,
            self.candidate.cells,
            self.candidate.emd,
            self.incumbent.emd,
            self.corrector.emd,
            self.decision()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(c: f64, i: f64, k: f64, margin: f64) -> ShadowReport {
        let score = |emd| ShadowScore {
            emd,
            js: emd * 0.5,
            cells: 10,
        };
        ShadowReport {
            candidate: score(c),
            incumbent: score(i),
            corrector: score(k),
            intervals: 4,
            margin,
        }
    }

    #[test]
    fn promote_needs_margin_and_corrector_win() {
        assert_eq!(
            report(0.8, 1.0, 0.9, 0.05).decision(),
            ShadowDecision::Promote
        );
        // Beats incumbent but not by the margin.
        assert_eq!(
            report(0.97, 1.0, 2.0, 0.05).decision(),
            ShadowDecision::Hold
        );
        // Beats incumbent but loses to the corrector.
        assert_eq!(report(0.8, 1.0, 0.7, 0.05).decision(), ShadowDecision::Hold);
        // Worse than incumbent.
        assert_eq!(report(1.2, 1.0, 2.0, 0.05).decision(), ShadowDecision::Hold);
    }

    #[test]
    fn nan_scores_are_no_evidence() {
        assert_eq!(
            report(f64::NAN, 1.0, 1.0, 0.05).decision(),
            ShadowDecision::NoEvidence
        );
        assert_eq!(
            report(0.5, f64::NAN, 1.0, 0.05).decision(),
            ShadowDecision::NoEvidence
        );
    }

    #[test]
    fn regression_trigger() {
        assert!(!report(1.0, 1.0, 1.0, 0.05).regressed());
        assert!(!report(1.04, 1.0, 1.0, 0.05).regressed());
        assert!(report(1.06, 1.0, 1.0, 0.05).regressed());
        assert!(report(f64::NAN, 1.0, 1.0, 0.05).regressed());
    }

    #[test]
    fn json_is_well_formed_ish() {
        let j = report(0.8, 1.0, 0.9, 0.05).to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"decision\":\"Promote\""));
        let j = report(f64::NAN, 1.0, 0.9, 0.05).to_json();
        assert!(j.contains("\"candidate_emd\":null"));
    }
}
