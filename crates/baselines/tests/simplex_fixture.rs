//! Shared-fixture conformance check: all five baselines of the paper's
//! evaluation (§VI-A.3) emit valid probability histograms on the same
//! small synthetic city — length `K`, non-negative, summing to 1. A
//! baseline that leaks raw counts, unnormalized scores, or NaNs out of
//! its fallback path fails here before it can poison an experiment table.

use stod_baselines::fc::FcConfig;
use stod_baselines::gp::GpParams;
use stod_baselines::mr::MrParams;
use stod_baselines::var::VarParams;
use stod_baselines::{
    FcModel, GpRegression, HistogramPredictor, MrModel, NaiveHistograms, VarModel,
};
use stod_core::{Mode, OdForecaster};
use stod_nn::Tape;
use stod_tensor::rng::Rng64;
use stod_tensor::{stack, Tensor};
use stod_traffic::{CityModel, OdDataset, SimConfig, Window};

const S: usize = 3;
const H: usize = 2;

fn fixture() -> (OdDataset, Vec<Window>, usize) {
    let cfg = SimConfig {
        num_days: 2,
        intervals_per_day: 16,
        trips_per_interval: 80.0,
        ..SimConfig::small(11)
    };
    let ds = OdDataset::generate(CityModel::small(5), &cfg);
    let windows = ds.windows(S, H);
    assert!(!windows.is_empty(), "fixture produced no windows");
    let train_end = ds.num_intervals() * 3 / 4;
    (ds, windows, train_end)
}

fn assert_histogram(h: &[f32], k: usize, what: &str) {
    assert_eq!(h.len(), k, "{what}: histogram length");
    let mut sum = 0.0f64;
    for &v in h {
        assert!(v.is_finite() && v >= 0.0, "{what}: bucket value {v}");
        sum += v as f64;
    }
    assert!((sum - 1.0).abs() < 1e-4, "{what}: histogram sums to {sum}");
}

fn check_predictor(pred: &dyn HistogramPredictor, ds: &OdDataset, windows: &[Window]) {
    let n = ds.num_regions();
    let k = ds.spec.num_buckets;
    for w in windows.iter().take(4) {
        for step in 0..H {
            for o in 0..n {
                for d in 0..n {
                    let h = pred.predict(ds, o, d, w, step);
                    assert_histogram(&h, k, &format!("{} ({o},{d}) step {step}", pred.name()));
                }
            }
        }
    }
}

#[test]
fn naive_histograms_emit_simplices() {
    let (ds, windows, train_end) = fixture();
    check_predictor(&NaiveHistograms::fit(&ds, train_end), &ds, &windows);
}

#[test]
fn gp_regression_emits_simplices() {
    let (ds, windows, train_end) = fixture();
    let gp = GpRegression::fit(
        &ds,
        train_end,
        GpParams {
            length_scale: 8.0,
            noise: 0.05,
            max_points: 48,
            min_points: 4,
        },
    );
    check_predictor(&gp, &ds, &windows);
}

#[test]
fn var_model_emits_simplices() {
    let (ds, windows, train_end) = fixture();
    let var = VarModel::fit(
        &ds,
        train_end,
        VarParams {
            top_pairs: 24,
            lags: 3,
            ridge: 1.0,
        },
    );
    check_predictor(&var, &ds, &windows);
}

#[test]
fn mr_model_emits_simplices() {
    let (ds, windows, train_end) = fixture();
    let mr = MrModel::fit(
        &ds,
        train_end,
        MrParams {
            embed_dim: 8,
            hidden: 32,
            tod_slots: 24,
            epochs: 8,
            batch_size: 256,
            lr: 5e-3,
            aux_weight: 0.3,
        },
        7,
    );
    check_predictor(&mr, &ds, &windows);
}

#[test]
fn fc_model_emits_simplices() {
    let (ds, windows, _) = fixture();
    let n = ds.num_regions();
    let k = ds.spec.num_buckets;
    let fc = FcModel::new(
        n,
        k,
        FcConfig {
            encode_dim: 32,
            gru_hidden: 48,
        },
        7,
    );
    // The deep baseline goes through the OdForecaster path on the same
    // fixture windows.
    for w in windows.iter().take(2) {
        let inputs: Vec<Tensor> = w
            .input_indices()
            .iter()
            .map(|&t| stack(&[&ds.tensors[t].data], 0))
            .collect();
        let mut tape = Tape::new();
        let mut rng = Rng64::new(0);
        let out = fc.forward(&mut tape, &inputs, H, Mode::Eval, &mut rng);
        assert_eq!(out.predictions.len(), H);
        for (step, &p) in out.predictions.iter().enumerate() {
            let pred = tape.value(p);
            assert_eq!(pred.dims(), &[1, n, n, k]);
            for (cell, chunk) in pred.data().chunks(k).enumerate() {
                assert_histogram(chunk, k, &format!("FC cell {cell} step {step}"));
            }
        }
    }
}
