//! # stod-baselines
//!
//! The five reference methods of the paper's evaluation (§VI-A.3):
//!
//! * [`nh::NaiveHistograms`] — per-OD-pair histogram over all training
//!   data, used as a constant forecast.
//! * [`gp::GpRegression`] — Gaussian-process regression per OD pair,
//!   treating each pair's histogram sequence as independent time series.
//! * [`var::VarModel`] — ridge-regularized vector autoregression capturing
//!   linear correlations among the densest OD pairs.
//! * [`fc::FcModel`] — the deep "RNN [30]" baseline (called FC in
//!   Table I): flatten → FC encoder → seq2seq GRU → FC decoder → softmax.
//! * [`mr::MrModel`] — multi-task representation learning in the spirit of
//!   [2]: region/calendar embeddings through a shared trunk with histogram
//!   and mean-speed heads; captures daily/weekly patterns but (by design,
//!   like the original) no near-history.
//!
//! Classical methods implement [`HistogramPredictor`] and are scored with
//! [`evaluate_predictor`], which produces the same [`stod_core::EvalReport`]
//! as the deep models so every method lands in one table.

pub mod fc;
pub mod gp;
pub mod mr;
pub mod nh;
pub mod var;

pub use fc::FcModel;
pub use gp::GpRegression;
pub use mr::MrModel;
pub use nh::NaiveHistograms;
pub use var::VarModel;

use stod_core::EvalReport;
use stod_metrics::{DisSim, GroupedMean, Metric};
use stod_traffic::{OdDataset, Window};

/// A per-cell histogram forecaster (the classical baselines).
///
/// `Send + Sync` is part of the contract: [`evaluate_predictor`] fans
/// windows across the [`stod_tensor::par`] pool, sharing the predictor
/// between worker threads. `predict` takes `&self`, so plain-data
/// implementations (all of the bundled ones) satisfy this for free.
pub trait HistogramPredictor: Send + Sync {
    /// Display name used in experiment tables.
    fn name(&self) -> &str;

    /// Predicts the `(o, d)` histogram for forecast step `step` (0-based)
    /// of `window`. Implementations may read the window's *input*
    /// intervals from `ds` but never its targets.
    fn predict(&self, ds: &OdDataset, o: usize, d: usize, window: &Window, step: usize)
        -> Vec<f32>;
}

/// Evaluates a classical predictor with the same protocol as
/// [`stod_core::evaluate`]: `DisSim` over observed target cells per step,
/// plus first-step groupings by time of day and OD distance.
pub fn evaluate_predictor(
    pred: &dyn HistogramPredictor,
    ds: &OdDataset,
    windows: &[Window],
) -> EvalReport {
    assert!(!windows.is_empty(), "cannot evaluate on zero windows");
    let h = windows[0].h;
    let mut per_step: Vec<[DisSim; 3]> = (0..h).map(|_| Default::default()).collect();
    let mut by_time = [
        GroupedMean::time_of_day_bins(),
        GroupedMean::time_of_day_bins(),
        GroupedMean::time_of_day_bins(),
    ];
    let mut by_distance = [
        GroupedMean::distance_bins(),
        GroupedMean::distance_bins(),
        GroupedMean::distance_bins(),
    ];
    let n = ds.num_regions();

    // One window's cell scores, in the exact order the serial loop would
    // visit them. `groups` is `Some((time_bin, distance_bin))` for
    // first-step cells, which additionally feed the grouped means.
    struct CellScore {
        step: usize,
        metric: usize,
        value: f64,
        groups: Option<(usize, Option<usize>)>,
    }
    let score_window = |w: &Window| -> Vec<CellScore> {
        let mut out = Vec::new();
        for (j, &target_t) in w.target_indices().iter().enumerate() {
            let tensor = &ds.tensors[target_t];
            let tod_bin = GroupedMean::time_bin(ds.interval_of_day(target_t), ds.intervals_per_day);
            for o in 0..n {
                for d in 0..n {
                    let Some(gt) = tensor.histogram(o, d) else {
                        continue;
                    };
                    let fc = pred.predict(ds, o, d, w, j);
                    let groups = (j == 0).then(|| {
                        (
                            tod_bin,
                            GroupedMean::distance_bin(ds.city.distance_km(o, d)),
                        )
                    });
                    for (m, metric) in Metric::ALL.iter().enumerate() {
                        out.push(CellScore {
                            step: j,
                            metric: m,
                            value: metric.eval(&gt, &fc),
                            groups,
                        });
                    }
                }
            }
        }
        out
    };

    // Fan windows across the pool (window scoring is read-only and
    // independent), then fold the scores in window order on this thread —
    // the accumulators see contributions in the same order as the serial
    // loop, so the report is bitwise identical at any thread count.
    let work = windows.len() * h * n * n;
    let window_scores: Vec<Vec<CellScore>> =
        if windows.len() > 1 && stod_tensor::par::should_parallelize(work) {
            stod_tensor::par::map(windows.len(), |i| score_window(&windows[i]))
        } else {
            windows.iter().map(score_window).collect()
        };
    for s in window_scores.iter().flatten() {
        per_step[s.step][s.metric].add(s.value);
        if let Some((tod_bin, dist_bin)) = s.groups {
            by_time[s.metric].add(tod_bin, s.value);
            if let Some(db) = dist_bin {
                by_distance[s.metric].add(db, s.value);
            }
        }
    }
    EvalReport {
        model: pred.name().to_string(),
        cells_per_step: per_step.iter().map(|s| s[0].count()).collect(),
        per_step: per_step
            .iter()
            .map(|s| [s[0].mean(), s[1].mean(), s[2].mean()])
            .collect(),
        by_time,
        by_distance,
    }
}

/// Uniform histogram — the last-resort fallback every baseline shares.
pub(crate) fn uniform_hist(k: usize) -> Vec<f32> {
    vec![1.0 / k as f32; k]
}

#[cfg(test)]
mod tests {
    use super::*;
    use stod_traffic::{CityModel, SimConfig};

    struct Uniform(usize);
    impl HistogramPredictor for Uniform {
        fn name(&self) -> &str {
            "uniform"
        }
        fn predict(&self, _: &OdDataset, _: usize, _: usize, _: &Window, _: usize) -> Vec<f32> {
            uniform_hist(self.0)
        }
    }

    #[test]
    fn evaluate_predictor_produces_full_report() {
        let cfg = SimConfig {
            num_days: 1,
            intervals_per_day: 16,
            trips_per_interval: 80.0,
            ..SimConfig::small(3)
        };
        let ds = OdDataset::generate(CityModel::small(5), &cfg);
        let ws = ds.windows(3, 2);
        let r = evaluate_predictor(&Uniform(7), &ds, &ws);
        assert_eq!(r.model, "uniform");
        assert_eq!(r.per_step.len(), 2);
        assert!(r.cells_per_step[0] > 0);
        for s in &r.per_step {
            for &v in s {
                assert!(v.is_finite() && v >= 0.0);
            }
        }
    }
}
