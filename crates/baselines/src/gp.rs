//! Gaussian Process Regression (baseline 4 of §VI-A.3): each OD pair's
//! histogram sequence is modeled as independent per-bucket time series
//! over the interval index, with an RBF kernel.
//!
//! For each pair we keep the most recent `max_points` training
//! observations, precompute `α = (K + σ²I)⁻¹ Y` once via Cholesky, and
//! predict any future interval as `k(t, X)·α`, clipping negatives and
//! renormalizing so the output is a valid histogram. Pairs with too few
//! observations fall back to Naive Histograms.

use crate::nh::NaiveHistograms;
use crate::HistogramPredictor;
use stod_tensor::linalg::{cholesky, cholesky_solve};
use stod_tensor::Tensor;
use stod_traffic::{OdDataset, Window};

/// Hyper-parameters of the GP baseline.
#[derive(Debug, Clone, Copy)]
pub struct GpParams {
    /// RBF kernel length-scale, in intervals.
    pub length_scale: f64,
    /// Observation noise variance σ².
    pub noise: f64,
    /// Maximum training observations per pair (most recent kept).
    pub max_points: usize,
    /// Minimum observations to fit a pair's GP.
    pub min_points: usize,
}

impl Default for GpParams {
    fn default() -> Self {
        GpParams {
            length_scale: 8.0,
            noise: 0.05,
            max_points: 48,
            min_points: 4,
        }
    }
}

/// One fitted pair GP: observation times plus the precomputed α matrix.
struct PairGp {
    times: Vec<f64>,
    /// `alpha[i][b]`, row per observation, column per bucket.
    alpha: Tensor,
}

/// The GP baseline.
pub struct GpRegression {
    n: usize,
    k: usize,
    params: GpParams,
    pairs: Vec<Option<PairGp>>,
    fallback: NaiveHistograms,
}

fn rbf(a: f64, b: f64, ls: f64) -> f32 {
    (-((a - b) * (a - b)) / (2.0 * ls * ls)).exp() as f32
}

impl GpRegression {
    /// Fits per-pair GPs on intervals `[0, train_end)`.
    pub fn fit(ds: &OdDataset, train_end: usize, params: GpParams) -> GpRegression {
        let n = ds.num_regions();
        let k = ds.spec.num_buckets;
        let fallback = NaiveHistograms::fit(ds, train_end);
        let mut pairs: Vec<Option<PairGp>> = Vec::with_capacity(n * n);
        for o in 0..n {
            for d in 0..n {
                // Collect the pair's (time, histogram) training points.
                let mut times = Vec::new();
                let mut ys = Vec::new();
                for t in 0..train_end.min(ds.num_intervals()) {
                    if let Some(h) = ds.tensors[t].histogram(o, d) {
                        times.push(t as f64);
                        ys.push(h);
                    }
                }
                if times.len() > params.max_points {
                    let cut = times.len() - params.max_points;
                    times.drain(..cut);
                    ys.drain(..cut);
                }
                if times.len() < params.min_points {
                    pairs.push(None);
                    continue;
                }
                let m = times.len();
                // Gram matrix with noise on the diagonal.
                let mut gram = Tensor::zeros(&[m, m]);
                for i in 0..m {
                    for j in 0..m {
                        let mut v = rbf(times[i], times[j], params.length_scale);
                        if i == j {
                            v += params.noise as f32;
                        }
                        gram.set(&[i, j], v);
                    }
                }
                // Center targets around the pair mean so the GP prior mean
                // matches the empirical histogram.
                let mean: Vec<f32> = (0..k)
                    .map(|b| ys.iter().map(|h| h[b]).sum::<f32>() / m as f32)
                    .collect();
                let mut y = Tensor::zeros(&[m, k]);
                for (i, h) in ys.iter().enumerate() {
                    for b in 0..k {
                        y.set(&[i, b], h[b] - mean[b]);
                    }
                }
                let Ok(l) = cholesky(&gram) else {
                    pairs.push(None);
                    continue;
                };
                let Ok(mut alpha) = cholesky_solve(&l, &y) else {
                    pairs.push(None);
                    continue;
                };
                // Stash the mean in an extra row for prediction-time re-add.
                alpha = stod_tensor::concat(&[&alpha, &Tensor::from_vec(&[1, k], mean)], 0);
                pairs.push(Some(PairGp { times, alpha }));
            }
        }
        GpRegression {
            n,
            k,
            params,
            pairs,
            fallback,
        }
    }

    /// Fraction of pairs with a fitted GP.
    pub fn fitted_fraction(&self) -> f64 {
        self.pairs.iter().filter(|p| p.is_some()).count() as f64 / self.pairs.len() as f64
    }

    /// Predicts the histogram of pair `(o, d)` at global interval `t`.
    pub fn predict_at(&self, o: usize, d: usize, t: usize) -> Option<Vec<f32>> {
        let gp = self.pairs[o * self.n + d].as_ref()?;
        let m = gp.times.len();
        let mut out = vec![0.0f32; self.k];
        for (b, slot) in out.iter_mut().enumerate() {
            // k(t, X)·α + mean_b
            let mut v = gp.alpha.at(&[m, b]); // stored mean row
            for (i, &ti) in gp.times.iter().enumerate() {
                v += rbf(t as f64, ti, self.params.length_scale) * gp.alpha.at(&[i, b]);
            }
            *slot = v.max(0.0);
        }
        let s: f32 = out.iter().sum();
        if s <= 1e-6 {
            return None;
        }
        for x in &mut out {
            *x /= s;
        }
        Some(out)
    }
}

impl HistogramPredictor for GpRegression {
    fn name(&self) -> &str {
        "GP"
    }

    fn predict(&self, _: &OdDataset, o: usize, d: usize, w: &Window, step: usize) -> Vec<f32> {
        let t = w.target_indices()[step];
        self.predict_at(o, d, t)
            .unwrap_or_else(|| self.fallback.pair_histogram(o, d).to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stod_traffic::{CityModel, SimConfig};

    fn ds() -> OdDataset {
        let cfg = SimConfig {
            num_days: 2,
            intervals_per_day: 24,
            trips_per_interval: 200.0,
            ..SimConfig::small(21)
        };
        OdDataset::generate(CityModel::small(5), &cfg)
    }

    #[test]
    fn fit_produces_some_gps() {
        let d = ds();
        let gp = GpRegression::fit(&d, 36, GpParams::default());
        assert!(gp.fitted_fraction() > 0.0, "no pair had enough data");
    }

    #[test]
    fn predictions_are_distributions() {
        let d = ds();
        let gp = GpRegression::fit(&d, 36, GpParams::default());
        let w = Window {
            t_end: 40,
            s: 3,
            h: 1,
        };
        for o in 0..5 {
            for dd in 0..5 {
                let h = gp.predict(&d, o, dd, &w, 0);
                let s: f32 = h.iter().sum();
                assert!((s - 1.0).abs() < 1e-4, "({o},{dd}) sums to {s}");
                assert!(h.iter().all(|&x| x >= 0.0));
            }
        }
    }

    #[test]
    fn interpolation_recovers_training_points() {
        // A GP with small noise must reproduce its own training data at the
        // training time points.
        let d = ds();
        let gp = GpRegression::fit(
            &d,
            36,
            GpParams {
                noise: 1e-4,
                length_scale: 1.0,
                ..GpParams::default()
            },
        );
        let mut checked = 0;
        for o in 0..5 {
            for dd in 0..5 {
                let Some(pair) = gp.pairs[o * 5 + dd].as_ref() else {
                    continue;
                };
                let t = pair.times[pair.times.len() / 2] as usize;
                let Some(pred) = gp.predict_at(o, dd, t) else {
                    continue;
                };
                let truth = d.tensors[t].histogram(o, dd).unwrap();
                let err: f32 = pred
                    .iter()
                    .zip(truth.iter())
                    .map(|(a, b)| (a - b).abs())
                    .sum();
                assert!(err < 0.45, "interpolation error {err} at pair ({o},{dd})");
                checked += 1;
            }
        }
        assert!(checked > 0, "no pair checked");
    }

    #[test]
    fn sparse_pairs_fall_back_to_nh() {
        let d = ds();
        let gp = GpRegression::fit(
            &d,
            36,
            GpParams {
                min_points: 10_000,
                ..GpParams::default()
            }, // force fallback
        );
        assert_eq!(gp.fitted_fraction(), 0.0);
        let w = Window {
            t_end: 40,
            s: 3,
            h: 1,
        };
        let h = gp.predict(&d, 0, 1, &w, 0);
        assert_eq!(h, gp.fallback.pair_histogram(0, 1).to_vec());
    }
}
