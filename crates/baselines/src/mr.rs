//! Multi-task Representation learning (baseline 2 of §VI-A.3), in the
//! spirit of the paper's reference [2] (DeepOD-style multi-task learning
//! for OD travel cost estimation).
//!
//! Region and calendar embeddings (origin, destination, time-of-day slot,
//! day-of-week) feed a shared trunk with two heads: the main histogram
//! head and an auxiliary mean-speed head (the multi-task part). As in the
//! original — and as the paper critiques — the model sees only
//! daily/weekly *patterns*, never the near-history of the last `s`
//! intervals, which is why it cannot react to short-term dynamics.

use crate::{uniform_hist, HistogramPredictor};
use stod_nn::layers::Linear;
use stod_nn::optim::Adam;
use stod_nn::{ParamId, ParamStore, Tape};
use stod_tensor::rng::Rng64;
use stod_tensor::Tensor;
use stod_traffic::{OdDataset, Window};

/// Hyper-parameters of the MR baseline.
#[derive(Debug, Clone, Copy)]
pub struct MrParams {
    /// Embedding width per feature.
    pub embed_dim: usize,
    /// Trunk hidden width.
    pub hidden: usize,
    /// Time-of-day slots (e.g. 24 = hourly).
    pub tod_slots: usize,
    /// Training epochs over the observed cells.
    pub epochs: usize,
    /// Minibatch size in cells.
    pub batch_size: usize,
    /// Learning rate.
    pub lr: f32,
    /// Weight of the auxiliary mean-speed task.
    pub aux_weight: f32,
}

impl Default for MrParams {
    fn default() -> Self {
        MrParams {
            embed_dim: 8,
            hidden: 32,
            tod_slots: 24,
            epochs: 8,
            batch_size: 256,
            lr: 5e-3,
            aux_weight: 0.3,
        }
    }
}

/// One observed training cell.
struct Cell {
    origin: usize,
    dest: usize,
    tod: usize,
    dow: usize,
    hist: Vec<f32>,
    mean_speed: f32,
}

/// The MR baseline.
pub struct MrModel {
    store: ParamStore,
    params: MrParams,
    k: usize,
    emb_o: ParamId,
    emb_d: ParamId,
    emb_t: ParamId,
    emb_w: ParamId,
    trunk: Linear,
    head_hist: Linear,
    head_speed: Linear,
    intervals_per_day: usize,
}

impl MrModel {
    /// Builds and trains MR on intervals `[0, train_end)`.
    pub fn fit(ds: &OdDataset, train_end: usize, params: MrParams, seed: u64) -> MrModel {
        let n = ds.num_regions();
        let k = ds.spec.num_buckets;
        let mut store = ParamStore::new();
        let mut rng = Rng64::new(seed);
        let e = params.embed_dim;
        let emb_o = store.register("mr.emb_origin", Tensor::randn(&[n, e], 0.1, &mut rng));
        let emb_d = store.register("mr.emb_dest", Tensor::randn(&[n, e], 0.1, &mut rng));
        let emb_t = store.register(
            "mr.emb_tod",
            Tensor::randn(&[params.tod_slots, e], 0.1, &mut rng),
        );
        let emb_w = store.register("mr.emb_dow", Tensor::randn(&[7, e], 0.1, &mut rng));
        let trunk = Linear::new(&mut store, "mr.trunk", 4 * e, params.hidden, &mut rng);
        let head_hist = Linear::new(&mut store, "mr.head_hist", params.hidden, k, &mut rng);
        let head_speed = Linear::new(&mut store, "mr.head_speed", params.hidden, 1, &mut rng);
        let mut model = MrModel {
            store,
            params,
            k,
            emb_o,
            emb_d,
            emb_t,
            emb_w,
            trunk,
            head_hist,
            head_speed,
            intervals_per_day: ds.intervals_per_day,
        };
        model.train(ds, train_end, seed ^ 0x3737);
        model
    }

    fn tod_slot(&self, interval_of_day: usize) -> usize {
        let per = self
            .intervals_per_day
            .div_ceil(self.params.tod_slots)
            .max(1);
        (interval_of_day / per).min(self.params.tod_slots - 1)
    }

    /// Collects observed cells as the training corpus.
    fn cells(&self, ds: &OdDataset, train_end: usize) -> Vec<Cell> {
        let n = ds.num_regions();
        let mut cells = Vec::new();
        for t in 0..train_end.min(ds.num_intervals()) {
            let tod = self.tod_slot(ds.interval_of_day(t));
            let dow = (t / ds.intervals_per_day) % 7;
            for o in 0..n {
                for d in 0..n {
                    if let Some(hist) = ds.tensors[t].histogram(o, d) {
                        let mean_speed = ds.spec.mean_speed(&hist) as f32;
                        cells.push(Cell {
                            origin: o,
                            dest: d,
                            tod,
                            dow,
                            hist,
                            mean_speed,
                        });
                    }
                }
            }
        }
        cells
    }

    fn train(&mut self, ds: &OdDataset, train_end: usize, seed: u64) {
        let cells = self.cells(ds, train_end);
        if cells.is_empty() {
            return;
        }
        let mut rng = Rng64::new(seed);
        let mut adam = Adam::new(self.params.lr);
        let mut order: Vec<usize> = (0..cells.len()).collect();
        for _ in 0..self.params.epochs {
            rng.shuffle(&mut order);
            for chunk in order.chunks(self.params.batch_size) {
                let batch: Vec<&Cell> = chunk.iter().map(|&i| &cells[i]).collect();
                let mut tape = Tape::new();
                let (hist, speed) = self.forward_batch(&mut tape, &batch);
                let b = batch.len();
                let mut target_h = Tensor::zeros(&[b, self.k]);
                let mut target_s = Tensor::zeros(&[b, 1]);
                for (i, c) in batch.iter().enumerate() {
                    for (j, &p) in c.hist.iter().enumerate() {
                        target_h.set(&[i, j], p);
                    }
                    // Normalize speeds to O(1) for a balanced loss.
                    target_s.set(&[i, 0], c.mean_speed / 10.0);
                }
                let ones_h = Tensor::ones(&[b, self.k]);
                let ones_s = Tensor::ones(&[b, 1]);
                let lh = tape.masked_sq_err(hist, &target_h, &ones_h);
                let ls = tape.masked_sq_err(speed, &target_s, &ones_s);
                let ls = tape.scale(ls, self.params.aux_weight);
                let sum = tape.add(lh, ls);
                let loss = tape.scale(sum, 1.0 / b as f32);
                let grads = tape.backward(loss);
                adam.step(&mut self.store, &grads);
            }
        }
    }

    /// Shared trunk forward for a batch of cells; returns (histograms
    /// `[B, K]` softmaxed, speeds `[B, 1]`).
    fn forward_batch(&self, tape: &mut Tape, batch: &[&Cell]) -> (stod_nn::Var, stod_nn::Var) {
        let o_ids: Vec<usize> = batch.iter().map(|c| c.origin).collect();
        let d_ids: Vec<usize> = batch.iter().map(|c| c.dest).collect();
        let t_ids: Vec<usize> = batch.iter().map(|c| c.tod).collect();
        let w_ids: Vec<usize> = batch.iter().map(|c| c.dow).collect();
        let eo = tape.param(&self.store, self.emb_o);
        let ed = tape.param(&self.store, self.emb_d);
        let et = tape.param(&self.store, self.emb_t);
        let ew = tape.param(&self.store, self.emb_w);
        let go = tape.index_select(eo, 0, &o_ids);
        let gd = tape.index_select(ed, 0, &d_ids);
        let gt = tape.index_select(et, 0, &t_ids);
        let gw = tape.index_select(ew, 0, &w_ids);
        let x = tape.concat(&[go, gd, gt, gw], 1);
        let hpre = self.trunk.apply(tape, &self.store, x);
        let h = tape.relu(hpre);
        let logits = self.head_hist.apply(tape, &self.store, h);
        let hist = tape.softmax(logits, 1);
        let speed = self.head_speed.apply(tape, &self.store, h);
        (hist, speed)
    }

    /// Predicts the histogram for `(o, d)` at global interval `t`.
    pub fn predict_at(&self, ds: &OdDataset, o: usize, d: usize, t: usize) -> Vec<f32> {
        let cell = Cell {
            origin: o,
            dest: d,
            tod: self.tod_slot(ds.interval_of_day(t)),
            dow: (t / ds.intervals_per_day) % 7,
            hist: uniform_hist(self.k),
            mean_speed: 0.0,
        };
        let mut tape = Tape::new();
        let (hist, _) = self.forward_batch(&mut tape, &[&cell]);
        let v = tape.value(hist);
        (0..self.k).map(|j| v.at(&[0, j])).collect()
    }

    /// Total weight count (for Table I style reporting).
    pub fn num_weights(&self) -> usize {
        self.store.num_weights()
    }
}

impl HistogramPredictor for MrModel {
    fn name(&self) -> &str {
        "MR"
    }

    fn predict(&self, ds: &OdDataset, o: usize, d: usize, w: &Window, step: usize) -> Vec<f32> {
        self.predict_at(ds, o, d, w.target_indices()[step])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stod_traffic::{CityModel, SimConfig};

    fn ds() -> OdDataset {
        let cfg = SimConfig {
            num_days: 2,
            intervals_per_day: 24,
            trips_per_interval: 150.0,
            ..SimConfig::small(41)
        };
        OdDataset::generate(CityModel::small(5), &cfg)
    }

    #[test]
    fn fit_and_predict_distribution() {
        let d = ds();
        let mr = MrModel::fit(
            &d,
            36,
            MrParams {
                epochs: 2,
                ..MrParams::default()
            },
            1,
        );
        let h = mr.predict_at(&d, 0, 1, 40);
        assert_eq!(h.len(), 7);
        let s: f32 = h.iter().sum();
        assert!((s - 1.0).abs() < 1e-4);
        assert!(h.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn captures_time_of_day_patterns() {
        // After training, rush-hour predictions should differ from night
        // predictions for a well-observed pair.
        let d = ds();
        let mr = MrModel::fit(&d, 42, MrParams::default(), 2);
        // Find the densest pair.
        let n = d.num_regions();
        let mut best = (0, 1, 0usize);
        for o in 0..n {
            for dd in 0..n {
                let c = (0..42).filter(|&t| d.tensors[t].observed(o, dd)).count();
                if c > best.2 {
                    best = (o, dd, c);
                }
            }
        }
        let (o, dd, _) = best;
        let ipd = d.intervals_per_day;
        let rush = 42 / ipd * ipd + ipd * 8 / 24;
        let night = 42 / ipd * ipd + ipd * 3 / 24;
        let h_rush = mr.predict_at(&d, o, dd, rush);
        let h_night = mr.predict_at(&d, o, dd, night);
        let diff: f32 = h_rush
            .iter()
            .zip(h_night.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(
            diff > 1e-3,
            "MR learned no time-of-day structure (diff {diff})"
        );
    }

    #[test]
    fn empty_training_is_harmless() {
        let d = ds();
        let mr = MrModel::fit(
            &d,
            0,
            MrParams {
                epochs: 1,
                ..MrParams::default()
            },
            3,
        );
        let h = mr.predict_at(&d, 0, 1, 10);
        assert!((h.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }
}
