//! Multi-variate Vector Autoregression (baseline 5 of §VI-A.3), "which
//! takes into account the linear correlations among different OD pairs."
//!
//! A full VAR over all `N²·K` series is intractable and badly conditioned
//! under sparseness, so the model is fitted over the `top_pairs` densest
//! OD pairs: their per-interval histograms are forward-filled into a state
//! vector `x_t`, and a lag-`p` ridge VAR `x_{t+1} = Σ_l A_l x_{t−l} + b`
//! is solved via regularized least squares. Pairs outside the selection
//! (and steps where the state cannot be formed) fall back to NH.

use crate::nh::NaiveHistograms;
use crate::HistogramPredictor;
use stod_tensor::linalg::ridge_regression;
use stod_tensor::Tensor;
use stod_traffic::{OdDataset, Window};

/// Hyper-parameters of the VAR baseline.
#[derive(Debug, Clone, Copy)]
pub struct VarParams {
    /// Number of densest pairs modeled jointly.
    pub top_pairs: usize,
    /// Autoregressive order (lags).
    pub lags: usize,
    /// Ridge regularization λ.
    pub ridge: f32,
}

impl Default for VarParams {
    fn default() -> Self {
        VarParams {
            top_pairs: 24,
            lags: 3,
            ridge: 1.0,
        }
    }
}

/// The VAR baseline.
pub struct VarModel {
    k: usize,
    params: VarParams,
    /// Modeled pairs, ordered; `pair_slot[o·n+d]` indexes into them.
    pairs: Vec<(usize, usize)>,
    pair_slot: Vec<Option<usize>>,
    /// Coefficients: `[lags·D + 1, D]` with intercept row, `D = pairs·K`.
    coef: Option<Tensor>,
    /// Per-pair training-mean histograms for forward-filling.
    fill: Vec<Vec<f32>>,
    fallback: NaiveHistograms,
}

impl VarModel {
    /// Fits the VAR on intervals `[0, train_end)`.
    pub fn fit(ds: &OdDataset, train_end: usize, params: VarParams) -> VarModel {
        let n = ds.num_regions();
        let k = ds.spec.num_buckets;
        let fallback = NaiveHistograms::fit(ds, train_end);
        let train_end = train_end.min(ds.num_intervals());

        // Rank pairs by observation count.
        let mut counts = vec![0usize; n * n];
        for t in 0..train_end {
            for o in 0..n {
                for d in 0..n {
                    if ds.tensors[t].observed(o, d) {
                        counts[o * n + d] += 1;
                    }
                }
            }
        }
        let mut ranked: Vec<usize> = (0..n * n).collect();
        ranked.sort_by_key(|&i| std::cmp::Reverse(counts[i]));
        let pairs: Vec<(usize, usize)> = ranked
            .into_iter()
            .take(params.top_pairs)
            .filter(|&i| counts[i] >= params.lags + 2)
            .map(|i| (i / n, i % n))
            .collect();
        let mut pair_slot = vec![None; n * n];
        for (slot, &(o, d)) in pairs.iter().enumerate() {
            pair_slot[o * n + d] = Some(slot);
        }
        let fill: Vec<Vec<f32>> = pairs
            .iter()
            .map(|&(o, d)| fallback.pair_histogram(o, d).to_vec())
            .collect();

        let dim = pairs.len() * k;
        if dim == 0 || train_end <= params.lags + 1 {
            return VarModel {
                k,
                params,
                pairs,
                pair_slot,
                coef: None,
                fill,
                fallback,
            };
        }

        // Forward-filled state sequence over the training range.
        let states = Self::build_states(ds, &pairs, &fill, 0, train_end, k);

        // Design matrix: [x_{t−1} ‖ … ‖ x_{t−p} ‖ 1] → x_t.
        let rows = train_end - params.lags;
        let feat = params.lags * dim + 1;
        let mut x = Tensor::zeros(&[rows, feat]);
        let mut y = Tensor::zeros(&[rows, dim]);
        for r in 0..rows {
            let t = r + params.lags;
            for l in 0..params.lags {
                for (j, &v) in states[t - 1 - l].iter().enumerate() {
                    x.set(&[r, l * dim + j], v);
                }
            }
            x.set(&[r, feat - 1], 1.0);
            for (j, &v) in states[t].iter().enumerate() {
                y.set(&[r, j], v);
            }
        }
        let coef = ridge_regression(&x, &y, params.ridge).ok();
        VarModel {
            k,
            params,
            pairs,
            pair_slot,
            coef,
            fill,
            fallback,
        }
    }

    /// Builds forward-filled state vectors for intervals `[from, to)`.
    fn build_states(
        ds: &OdDataset,
        pairs: &[(usize, usize)],
        fill: &[Vec<f32>],
        from: usize,
        to: usize,
        k: usize,
    ) -> Vec<Vec<f32>> {
        let dim = pairs.len() * k;
        let mut states = Vec::with_capacity(to - from);
        let mut last: Vec<f32> = fill
            .iter()
            .flat_map(|h| h.iter().copied())
            .collect::<Vec<f32>>();
        debug_assert_eq!(last.len(), dim);
        for t in from..to {
            for (slot, &(o, d)) in pairs.iter().enumerate() {
                if let Some(h) = ds.tensors[t].histogram(o, d) {
                    last[slot * k..(slot + 1) * k].copy_from_slice(&h);
                }
            }
            states.push(last.clone());
        }
        states
    }

    /// Number of jointly modeled pairs.
    pub fn num_modeled_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Rolls the VAR forward from the window's input intervals and returns
    /// the full predicted state at forecast step `step`.
    fn predict_state(&self, ds: &OdDataset, w: &Window, step: usize) -> Option<Vec<f32>> {
        let coef = self.coef.as_ref()?;
        let p = self.params.lags;
        let dim = self.pairs.len() * self.k;
        // Build lag states from the window's inputs (never its targets).
        let start = (w.t_end + 1).saturating_sub(p.max(w.s));
        let states = Self::build_states(ds, &self.pairs, &self.fill, start, w.t_end + 1, self.k);
        if states.len() < p {
            return None;
        }
        let mut history: Vec<Vec<f32>> = states;
        for _ in 0..=step {
            let feat = p * dim + 1;
            let mut x = vec![0.0f32; feat];
            for l in 0..p {
                let h = &history[history.len() - 1 - l];
                x[l * dim..(l + 1) * dim].copy_from_slice(h);
            }
            x[feat - 1] = 1.0;
            // x · coef → next state.
            let mut next = vec![0.0f32; dim];
            for (j, nx) in next.iter_mut().enumerate() {
                let mut v = 0.0f64;
                for (i, &xi) in x.iter().enumerate() {
                    if xi != 0.0 {
                        v += xi as f64 * coef.at(&[i, j]) as f64;
                    }
                }
                *nx = v as f32;
            }
            history.push(next);
        }
        history.pop()
    }
}

impl HistogramPredictor for VarModel {
    fn name(&self) -> &str {
        "VAR"
    }

    fn predict(&self, ds: &OdDataset, o: usize, d: usize, w: &Window, step: usize) -> Vec<f32> {
        let n = ds.num_regions();
        if let Some(slot) = self.pair_slot[o * n + d] {
            if let Some(state) = self.predict_state(ds, w, step) {
                let mut h: Vec<f32> = state[slot * self.k..(slot + 1) * self.k]
                    .iter()
                    .map(|&x| x.max(0.0))
                    .collect();
                let s: f32 = h.iter().sum();
                if s > 1e-6 {
                    for x in &mut h {
                        *x /= s;
                    }
                    return h;
                }
            }
        }
        self.fallback.pair_histogram(o, d).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stod_traffic::{CityModel, SimConfig};

    fn ds() -> OdDataset {
        let cfg = SimConfig {
            num_days: 2,
            intervals_per_day: 24,
            trips_per_interval: 200.0,
            ..SimConfig::small(31)
        };
        OdDataset::generate(CityModel::small(5), &cfg)
    }

    #[test]
    fn fit_selects_dense_pairs() {
        let d = ds();
        let var = VarModel::fit(&d, 36, VarParams::default());
        assert!(var.num_modeled_pairs() > 0);
        assert!(var.num_modeled_pairs() <= 24);
        assert!(var.coef.is_some());
    }

    #[test]
    fn predictions_are_distributions() {
        let d = ds();
        let var = VarModel::fit(&d, 36, VarParams::default());
        let w = Window {
            t_end: 40,
            s: 4,
            h: 2,
        };
        for o in 0..5 {
            for dd in 0..5 {
                for step in 0..2 {
                    let h = var.predict(&d, o, dd, &w, step);
                    let s: f32 = h.iter().sum();
                    assert!((s - 1.0).abs() < 1e-4);
                    assert!(h.iter().all(|&x| x >= 0.0));
                }
            }
        }
    }

    #[test]
    fn degenerate_training_falls_back() {
        let d = ds();
        let var = VarModel::fit(
            &d,
            2,
            VarParams {
                lags: 5,
                ..VarParams::default()
            },
        );
        assert!(var.coef.is_none());
        let w = Window {
            t_end: 40,
            s: 3,
            h: 1,
        };
        let h = var.predict(&d, 0, 1, &w, 0);
        assert_eq!(h, var.fallback.pair_histogram(0, 1).to_vec());
    }

    #[test]
    fn unmodeled_pair_uses_fallback() {
        let d = ds();
        let var = VarModel::fit(
            &d,
            36,
            VarParams {
                top_pairs: 1,
                ..VarParams::default()
            },
        );
        // Find a pair that is not the single modeled one.
        let n = d.num_regions();
        let mut other = None;
        for o in 0..n {
            for dd in 0..n {
                if var.pair_slot[o * n + dd].is_none() {
                    other = Some((o, dd));
                }
            }
        }
        let (o, dd) = other.unwrap();
        let w = Window {
            t_end: 40,
            s: 3,
            h: 1,
        };
        assert_eq!(
            var.predict(&d, o, dd, &w, 0),
            var.fallback.pair_histogram(o, dd).to_vec()
        );
    }
}
