//! The deep "FC" baseline — the paper's RNN [30] extended to stochastic
//! weights (§VI-A.3 baseline 1, the `FC₁ → GRU → FC_{N·N'·K}` row of
//! Table I): the sparse tensor is flattened, encoded by a fully-connected
//! layer, pushed through a sequence-to-sequence GRU, decoded back to a
//! full tensor and normalized per cell with a softmax.
//!
//! Unlike BF/AF there is **no factorization**: the decoder predicts all
//! `N·N'·K` logits directly, which is exactly why the paper's Figures 8–13
//! show it trailing both frameworks under sparseness.

use stod_core::{Mode, ModelOutput, OdForecaster};
use stod_nn::layers::{GruSeq2Seq, Linear};
use stod_nn::{ParamStore, Tape};
use stod_tensor::rng::Rng64;
use stod_tensor::Tensor;

/// Configuration of the FC baseline.
#[derive(Debug, Clone, Copy)]
pub struct FcConfig {
    /// Width of the FC encoder (the paper's tiny `FC₁` bottleneck).
    pub encode_dim: usize,
    /// GRU hidden size.
    pub gru_hidden: usize,
}

impl Default for FcConfig {
    fn default() -> Self {
        FcConfig {
            encode_dim: 32,
            gru_hidden: 48,
        }
    }
}

/// The FC/RNN deep baseline.
pub struct FcModel {
    store: ParamStore,
    num_regions: usize,
    num_buckets: usize,
    enc: Linear,
    seq: GruSeq2Seq,
    dec: Linear,
}

impl FcModel {
    /// Builds the baseline for square `N×N×K` tensors.
    pub fn new(num_regions: usize, num_buckets: usize, cfg: FcConfig, seed: u64) -> FcModel {
        let mut store = ParamStore::new();
        let mut rng = Rng64::new(seed);
        let l = num_regions * num_regions * num_buckets;
        let enc = Linear::new(&mut store, "fc.enc", l, cfg.encode_dim, &mut rng);
        let seq = GruSeq2Seq::new(
            &mut store,
            "fc.seq",
            cfg.encode_dim,
            cfg.gru_hidden,
            &mut rng,
        );
        let dec = Linear::new(&mut store, "fc.dec", cfg.encode_dim, l, &mut rng);
        FcModel {
            store,
            num_regions,
            num_buckets,
            enc,
            seq,
            dec,
        }
    }
}

impl OdForecaster for FcModel {
    fn name(&self) -> &str {
        "FC"
    }

    fn params(&self) -> &ParamStore {
        &self.store
    }

    fn params_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    fn forward(
        &self,
        tape: &mut Tape,
        inputs: &[Tensor],
        horizon: usize,
        mode: Mode,
        rng: &mut Rng64,
    ) -> ModelOutput {
        assert!(!inputs.is_empty(), "FC needs at least one input step");
        let dims = inputs[0].dims().to_vec();
        let (b, n, nd, k) = (dims[0], dims[1], dims[2], dims[3]);
        assert_eq!(n, self.num_regions, "region count mismatch");
        assert_eq!(k, self.num_buckets, "bucket count mismatch");
        let l = n * nd * k;

        let mut codes = Vec::with_capacity(inputs.len());
        for t in inputs {
            let x = tape.constant(t.clone());
            let flat = tape.reshape(x, &[b, l]);
            let e = self.enc.apply(tape, &self.store, flat);
            let e = tape.tanh(e);
            let e = tape.dropout(e, mode.dropout(), mode.is_train(), rng);
            codes.push(e);
        }
        let future = self.seq.forward(tape, &self.store, &codes, horizon);
        let predictions = future
            .into_iter()
            .map(|code| {
                let logits = self.dec.apply(tape, &self.store, code);
                let shaped = tape.reshape(logits, &[b, n, nd, k]);
                tape.softmax(shaped, 3)
            })
            .collect();
        ModelOutput {
            predictions,
            regularizer: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stod_core::{evaluate, train, TrainConfig};
    use stod_traffic::{CityModel, OdDataset, SimConfig};

    #[test]
    fn forward_shapes() {
        let model = FcModel::new(4, 7, FcConfig::default(), 1);
        let mut tape = Tape::new();
        let mut rng = Rng64::new(0);
        let inputs = vec![Tensor::zeros(&[2, 4, 4, 7]); 3];
        let out = model.forward(&mut tape, &inputs, 2, Mode::Eval, &mut rng);
        assert_eq!(out.predictions.len(), 2);
        let v = tape.value(out.predictions[0]);
        assert_eq!(v.dims(), &[2, 4, 4, 7]);
        let sums = stod_tensor::sum_axis(v, 3, false);
        for &s in sums.data() {
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn trains_through_core_trainer() {
        let cfg = SimConfig {
            num_days: 2,
            intervals_per_day: 16,
            trips_per_interval: 120.0,
            ..SimConfig::small(17)
        };
        let ds = OdDataset::generate(CityModel::small(5), &cfg);
        let ws = ds.windows(3, 1);
        let mut model = FcModel::new(5, 7, FcConfig::default(), 2);
        let report = train(
            &mut model,
            &ds,
            &ws,
            None,
            &TrainConfig {
                epochs: 5,
                ..TrainConfig::fast_test()
            },
        );
        assert!(report.improved(), "losses: {:?}", report.epoch_losses);
        let eval = evaluate(&model, &ds, &ws[..6.min(ws.len())], 8);
        assert_eq!(eval.model, "FC");
        assert!(eval.per_step[0][2].is_finite());
    }
}
