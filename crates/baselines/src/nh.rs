//! Naive Histograms (baseline 3 of §VI-A.3): "for each OD pair, we use all
//! travel speed records for the OD pair in the training data set to
//! construct a histogram and use the histogram for predicting the future
//! stochastic speeds."
//!
//! The dataset keeps per-interval histograms rather than raw records, so
//! the pair histogram is the average of the pair's observed interval
//! histograms over the training range — identical in expectation. Pairs
//! never observed during training fall back to the global mean histogram.

use crate::{uniform_hist, HistogramPredictor};
use stod_traffic::{OdDataset, Window};

/// The NH baseline.
///
/// `Clone` so a serving shard can keep its own copy for admission-control
/// shed answers next to the one owned by its broker.
#[derive(Clone)]
pub struct NaiveHistograms {
    n: usize,
    k: usize,
    /// Mean training histogram per pair (`None` for never-observed pairs).
    pair_hists: Vec<Option<Vec<f32>>>,
    /// Global mean histogram (fallback).
    global: Vec<f32>,
}

impl NaiveHistograms {
    /// Fits NH on intervals `[0, train_end)` of the dataset.
    pub fn fit(ds: &OdDataset, train_end: usize) -> NaiveHistograms {
        let n = ds.num_regions();
        let k = ds.spec.num_buckets;
        let mut sums = vec![vec![0.0f64; k]; n * n];
        let mut counts = vec![0usize; n * n];
        let mut gsum = vec![0.0f64; k];
        let mut gcount = 0usize;
        for t in 0..train_end.min(ds.num_intervals()) {
            let tensor = &ds.tensors[t];
            for o in 0..n {
                for d in 0..n {
                    if let Some(h) = tensor.histogram(o, d) {
                        for (b, &p) in h.iter().enumerate() {
                            sums[o * n + d][b] += p as f64;
                            gsum[b] += p as f64;
                        }
                        counts[o * n + d] += 1;
                        gcount += 1;
                    }
                }
            }
        }
        let pair_hists = sums
            .into_iter()
            .zip(counts.iter())
            .map(|(s, &c)| (c > 0).then(|| s.into_iter().map(|x| (x / c as f64) as f32).collect()))
            .collect();
        let global = if gcount > 0 {
            gsum.into_iter()
                .map(|x| (x / gcount as f64) as f32)
                .collect()
        } else {
            uniform_hist(k)
        };
        NaiveHistograms {
            n,
            k,
            pair_hists,
            global,
        }
    }

    /// The learned histogram for a pair (global fallback applied).
    pub fn pair_histogram(&self, o: usize, d: usize) -> &[f32] {
        self.pair_hists[o * self.n + d]
            .as_deref()
            .unwrap_or(&self.global)
    }

    /// Fraction of pairs with their own histogram.
    pub fn pair_coverage(&self) -> f64 {
        self.pair_hists.iter().filter(|h| h.is_some()).count() as f64 / self.pair_hists.len() as f64
    }

    /// Histogram bucket count.
    pub fn num_buckets(&self) -> usize {
        self.k
    }
}

impl HistogramPredictor for NaiveHistograms {
    fn name(&self) -> &str {
        "NH"
    }

    fn predict(&self, _: &OdDataset, o: usize, d: usize, _: &Window, _: usize) -> Vec<f32> {
        self.pair_histogram(o, d).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate_predictor;
    use stod_metrics::Metric;
    use stod_traffic::{CityModel, SimConfig};

    fn ds() -> OdDataset {
        let cfg = SimConfig {
            num_days: 2,
            intervals_per_day: 16,
            trips_per_interval: 120.0,
            ..SimConfig::small(13)
        };
        OdDataset::generate(CityModel::small(6), &cfg)
    }

    #[test]
    fn histograms_are_valid_distributions() {
        let d = ds();
        let nh = NaiveHistograms::fit(&d, 20);
        for o in 0..6 {
            for dd in 0..6 {
                let h = nh.pair_histogram(o, dd);
                let s: f32 = h.iter().sum();
                assert!((s - 1.0).abs() < 1e-4, "pair ({o},{dd}) sums to {s}");
                assert!(h.iter().all(|&x| x >= 0.0));
            }
        }
    }

    #[test]
    fn fallback_used_for_unseen_pairs() {
        let d = ds();
        // Fit on zero intervals → everything falls back to uniform global.
        let nh = NaiveHistograms::fit(&d, 0);
        assert_eq!(nh.pair_coverage(), 0.0);
        assert_eq!(nh.pair_histogram(0, 1), uniform_hist(7).as_slice());
    }

    #[test]
    fn more_training_data_more_coverage() {
        let d = ds();
        let early = NaiveHistograms::fit(&d, 4);
        let late = NaiveHistograms::fit(&d, 32);
        assert!(late.pair_coverage() >= early.pair_coverage());
        assert!(late.pair_coverage() > 0.0);
    }

    #[test]
    fn nh_beats_uniform_on_average() {
        // The whole point of NH: historical pair histograms are closer to
        // the truth than an uninformed uniform guess.
        let d = ds();
        let split_at = 24;
        let nh = NaiveHistograms::fit(&d, split_at);
        let windows: Vec<Window> = d
            .windows(2, 1)
            .into_iter()
            .filter(|w| w.t_end + 1 >= split_at)
            .collect();
        struct U;
        impl HistogramPredictor for U {
            fn name(&self) -> &str {
                "U"
            }
            fn predict(&self, _: &OdDataset, _: usize, _: usize, _: &Window, _: usize) -> Vec<f32> {
                uniform_hist(7)
            }
        }
        let nh_score = evaluate_predictor(&nh, &d, &windows).step_mean(0, Metric::Emd);
        let u_score = evaluate_predictor(&U, &d, &windows).step_mean(0, Metric::Emd);
        assert!(
            nh_score < u_score,
            "NH (EMD {nh_score:.4}) must beat uniform (EMD {u_score:.4})"
        );
    }
}
